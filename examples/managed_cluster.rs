//! A self-healing replicated service: the Proteus-style dependability
//! manager (§2) keeps the replication level at 3 through a cascade of
//! crashes, while a time-critical client holds its QoS spec throughout.
//!
//! Run with: `cargo run --example managed_cluster`

use aqua::core::qos::QosSpec;
use aqua::core::time::{Duration, Instant};
use aqua::prelude::*;
use aqua::workload::{ClientSpec, ManagerSpec, NetworkSpec, ServerSpec};

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

fn scenario(managed: bool) -> ExperimentConfig {
    let server = |mean: u64, crash: CrashPlan| ServerSpec {
        service: ServiceTimeModel::Normal {
            mean: ms(mean),
            std_dev: ms(mean / 4),
            min: Duration::ZERO,
        },
        crash,
        ..ServerSpec::paper()
    };
    let mut client = ClientSpec::paper(QosSpec::new(ms(250), 0.9).expect("valid"));
    client.num_requests = 100;
    client.think_time = ms(250);

    ExperimentConfig {
        seed: 2026,
        network: NetworkSpec::paper(),
        // Two fast replicas die in sequence, stranding the slow one.
        servers: vec![
            server(70, CrashPlan::AtTime(Instant::from_secs(5))),
            server(70, CrashPlan::AtTime(Instant::from_secs(12))),
            server(230, CrashPlan::Never),
        ],
        standby_servers: if managed {
            vec![server(70, CrashPlan::Never), server(70, CrashPlan::Never)]
        } else {
            Vec::new()
        },
        manager: managed.then_some(ManagerSpec {
            target_replication: 3,
            check_interval: ms(200),
            supervision: None,
        }),
        clients: vec![client],
        faults: aqua::workload::FaultPlan::new(),
        max_virtual_time: Duration::from_secs(120),
    }
}

fn main() {
    println!("a 3-replica service loses its two fast replicas at t=5s and");
    println!("t=12s, stranding a slow straggler (230 ms vs a 250 ms deadline).");
    println!("client spec: 250 ms with Pc ≥ 0.9 over 100 requests.\n");

    for managed in [false, true] {
        let report = run_experiment(&scenario(managed));
        let c = report.client_under_test();
        let phase = |lo: usize, hi: usize| {
            let slice = &c.records[lo..hi.min(c.records.len())];
            let fails = slice.iter().filter(|r| !r.timely).count();
            let red: f64 =
                slice.iter().map(|r| r.redundancy).sum::<usize>() as f64 / slice.len() as f64;
            (fails, red)
        };
        let (early_f, early_r) = phase(0, 20);
        let (late_f, late_r) = phase(60, 100);
        println!(
            "{}:",
            if managed {
                "WITH dependability manager (2 standbys)"
            } else {
                "WITHOUT manager"
            }
        );
        println!(
            "  overall P(timing failure) = {:.3} (budget 0.10) → {}",
            c.failure_probability,
            if c.failure_probability <= 0.1 {
                "spec held ✓"
            } else {
                "spec VIOLATED ✗"
            }
        );
        println!("  early phase: {early_f} failures, {early_r:.1} replicas/request");
        println!("  late phase : {late_f} failures, {late_r:.1} replicas/request\n");
    }
    println!("the selection algorithm is only as good as its pool: Proteus");
    println!("keeps the pool healthy, Algorithm 1 spends it wisely.");
}
