//! Search engine over real sockets: the other workload class the paper
//! names (§1). Replica servers run as threads on localhost TCP; the client
//! gateway runs the timing fault handler against wall-clock measurements.
//!
//! Run with: `cargo run --example search_engine`

use aqua::core::qos::{QosSpec, ReplicaId};
use aqua::core::repository::MethodId;
use aqua::core::time::Duration;
use aqua::runtime::{AquaClient, AquaClientConfig, ReplicaServer, ReplicaServerConfig};
use aqua::strategies::ModelBased;
use aqua_replica::ServiceTimeModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ms = Duration::from_millis;

    // Four index shards replicas with different speeds; the slowest one
    // also jitters a lot (log-normal tail).
    println!("spawning 4 replica servers on localhost…");
    let mut servers = Vec::new();
    for i in 0..4u64 {
        let service = if i == 3 {
            ServiceTimeModel::LogNormal {
                median: ms(25),
                sigma: 0.8,
            }
        } else {
            ServiceTimeModel::Normal {
                mean: ms(8 + 4 * i),
                std_dev: ms(3),
                min: Duration::ZERO,
            }
        };
        servers.push(ReplicaServer::spawn(ReplicaServerConfig {
            replica: ReplicaId::new(i),
            service,
            seed: 100 + i,
            crash_after: None,
            faults: None,
            obs: None,
        })?);
    }
    let replicas: Vec<_> = servers.iter().map(|s| (s.replica(), s.addr())).collect();

    // "answer within 60 ms, 90% of the time".
    let qos = QosSpec::new(ms(60), 0.9)?;
    let client = AquaClient::connect(
        &replicas,
        AquaClientConfig::new(qos),
        Box::new(ModelBased::default()),
    )?;

    println!("issuing 30 queries with a 60 ms / 90% QoS spec…\n");
    let mut timely = 0u32;
    let mut min_tr = Duration::MAX;
    for i in 0..30 {
        let query = format!("q{i:02} site:example.com");
        let outcome = client.call(MethodId::DEFAULT, query.as_bytes())?;
        min_tr = min_tr.min(outcome.response_time);
        if outcome.timely {
            timely += 1;
        }
        if i % 6 == 0 {
            println!(
                "  query {i:>2}: {} from {} via {} replica(s){}",
                outcome.response_time,
                outcome.replica,
                outcome.redundancy,
                if outcome.timely { "" } else { "  ← LATE" }
            );
        }
    }
    println!("\ntimely: {timely}/30 (budget allows 3 misses)");
    println!("fastest observed response: {min_tr} (the paper's testbed floor was ~3.5 ms)");
    client.with_handler(|h| {
        println!(
            "handler stats: {} delivered, {} redundant replies mined, mean redundancy {:.2}",
            h.stats().delivered,
            h.stats().redundant,
            h.stats().mean_redundancy()
        );
    });
    Ok(())
}
