//! The single-crash guarantee (Eq. 3), live on real sockets.
//!
//! Algorithm 1 reserves the most promising replica `m0` outside its
//! acceptance test, so the selected set still meets the client's QoS if
//! any one member crashes. Here we crash the fastest replica *while the
//! client is mid-workload* and watch the calls keep succeeding; then we
//! crash everything and watch the handler fail cleanly.
//!
//! Run with: `cargo run --example crash_failover`

use aqua::core::qos::{QosSpec, ReplicaId};
use aqua::core::repository::MethodId;
use aqua::core::time::Duration;
use aqua::runtime::{AquaClient, AquaClientConfig, ReplicaServer, ReplicaServerConfig};
use aqua::strategies::ModelBased;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ms = Duration::from_millis;

    // r0 is clearly fastest → it will be m0, the reserved best replica.
    let profiles = [5u64, 20, 20, 25];
    let servers: Vec<ReplicaServer> = profiles
        .iter()
        .enumerate()
        .map(|(i, s)| {
            ReplicaServer::spawn(ReplicaServerConfig::quick(ReplicaId::new(i as u64), *s))
        })
        .collect::<Result<_, _>>()?;
    let replicas: Vec<_> = servers.iter().map(|s| (s.replica(), s.addr())).collect();

    let qos = QosSpec::new(ms(150), 0.9)?;
    let mut config = AquaClientConfig::new(qos);
    config.give_up_after = ms(600);
    let client = AquaClient::connect(&replicas, config, Box::new(ModelBased::default()))?;

    println!("phase 1: warm up (5 calls)…");
    for _ in 0..5 {
        let out = client.call(MethodId::DEFAULT, b"tick")?;
        assert!(out.timely);
    }

    println!("phase 2: CRASHING the fastest replica (r0) mid-workload…");
    servers[0].crash();
    let mut ok = 0;
    for i in 0..10 {
        match client.call(MethodId::DEFAULT, b"tick") {
            Ok(out) => {
                ok += 1;
                if i < 3 {
                    println!(
                        "  call after crash: {} from {} ({} selected)",
                        out.response_time, out.replica, out.redundancy
                    );
                }
            }
            Err(e) => println!("  call failed: {e}"),
        }
    }
    println!("  {ok}/10 calls succeeded despite losing the best replica");
    client.with_handler(|h| {
        assert!(!h.repository().contains(ReplicaId::new(0)));
        println!("  r0 evicted from the information repository ✓");
    });

    println!("phase 3: crashing everything…");
    for s in &servers {
        s.crash();
    }
    std::thread::sleep(std::time::Duration::from_millis(150));
    match client.call(MethodId::DEFAULT, b"tick") {
        Err(e) => println!("  expected failure: {e} ✓"),
        Ok(_) => println!("  (a straggler reply still made it)"),
    }
    match client.call(MethodId::DEFAULT, b"tick") {
        Err(e) => println!("  and again, fail-fast now: {e} ✓"),
        Ok(_) => unreachable!("no replicas are left"),
    }
    Ok(())
}
