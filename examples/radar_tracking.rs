//! Radar tracking: a time-critical client of a stateless compute service.
//!
//! The paper motivates its work with "stateless applications such as search
//! engines and radar-tracking applications" (§1). A radar correlator must
//! fuse each sweep's contacts within a hard 120 ms budget, at least 95% of
//! the time, or the track quality degrades. The compute replicas are
//! heterogeneous and two of them suffer bursty background load.
//!
//! The example runs the same scenario twice — once with the paper's
//! model-based handler, once with the classic "fastest historical mean,
//! single replica" selector — and compares the miss rates.
//!
//! Run with: `cargo run --example radar_tracking`

use aqua::prelude::*;
use aqua::workload::{ClientSpec, NetworkSpec, ServerSpec, StrategySpec};

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

fn scenario(strategy: StrategySpec, seed: u64) -> ExperimentConfig {
    let qos = QosSpec::new(ms(120), 0.95).expect("valid spec");
    let mut tracker = ClientSpec::paper(qos);
    tracker.strategy = strategy;
    tracker.num_requests = 150;
    // A sweep every 250 ms.
    tracker.think_time = ms(250);

    // Five correlator replicas: means 45–85 ms; hosts 3 and 4 are shared
    // with another workload and periodically slow down 6×.
    let servers = (0..5)
        .map(|i| ServerSpec {
            service: ServiceTimeModel::Normal {
                mean: ms(45 + 10 * i as u64),
                std_dev: ms(12),
                min: Duration::ZERO,
            },
            method_services: Vec::new(),
            load: if i >= 3 {
                LoadModel::bursty(Duration::from_secs(5), Duration::from_secs(2), 6.0)
            } else {
                LoadModel::nominal()
            },
            crash: CrashPlan::Never,
            recover_after: None,
        })
        .collect();

    ExperimentConfig {
        seed,
        network: NetworkSpec::paper(),
        servers,
        standby_servers: Vec::new(),
        manager: None,
        clients: vec![tracker],
        faults: aqua::workload::FaultPlan::new(),
        max_virtual_time: Duration::from_secs(180),
    }
}

fn main() {
    println!("radar correlator: 120 ms budget, ≥95% of sweeps, 150 sweeps");
    println!("5 replicas (45-85 ms), two with 6x load bursts\n");
    for (name, strategy) in [
        ("model-based (paper)", StrategySpec::paper()),
        ("fastest-mean, k=1", StrategySpec::FastestMean { k: 1 }),
        ("fastest-mean, k=2", StrategySpec::FastestMean { k: 2 }),
    ] {
        let mut misses = 0.0;
        let mut red = 0.0;
        let seeds = 3;
        for seed in 1..=seeds {
            let report = run_experiment(&scenario(strategy.clone(), seed));
            let c = report.client_under_test();
            misses += c.failure_probability;
            red += c.mean_redundancy();
        }
        println!(
            "  {name:<22} miss rate {:>5.1}%  mean replicas/sweep {:.2}",
            100.0 * misses / seeds as f64,
            red / seeds as f64
        );
    }
    println!("\nthe model-based handler buys the budget with extra replicas");
    println!("only when the bursty hosts look risky — the k=1 baseline");
    println!("misses whenever its favourite host is in a burst.");
}
