//! Quickstart: the paper's algorithm in three acts.
//!
//! 1. Run Algorithm 1 by hand on a set of per-replica probabilities.
//! 2. Let the full model (pmf convolution over measured history) produce
//!    those probabilities.
//! 3. Run a complete simulated cluster and watch the handler adapt.
//!
//! Run with: `cargo run --example quickstart`

use aqua::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ms = Duration::from_millis;

    // ---- Act 1: Algorithm 1 in isolation -------------------------------
    println!("== Act 1: Algorithm 1 on known probabilities ==");
    let candidates: Vec<Candidate> = [0.97f64, 0.9, 0.62, 0.4, 0.1]
        .iter()
        .enumerate()
        .map(|(i, p)| Candidate::new(ReplicaId::new(i as u64), *p))
        .collect();
    for pc in [0.0, 0.5, 0.9, 0.999] {
        let s = select_replicas(&candidates, pc);
        println!(
            "  Pc = {pc:<5} → {} (crash-tolerant probability {:.3})",
            s,
            s.crash_tolerant_probability()
        );
    }

    // ---- Act 2: probabilities from measured history --------------------
    println!("\n== Act 2: the response-time model over measurements ==");
    let mut selector = ReplicaSelector::new(5, SelectorConfig::default());
    // Three replicas: fast-and-steady, fast-but-queued, slow.
    let profiles: [(&str, u64, u64); 3] = [("fast", 40, 0), ("queued", 40, 120), ("slow", 170, 0)];
    for (i, (_, service, queue)) in profiles.iter().enumerate() {
        let id = ReplicaId::new(i as u64);
        selector.repository_mut().insert_replica(id);
        for k in 0..5u64 {
            selector.repository_mut().record_perf(
                id,
                PerfReport::new(ms(service + 5 * k), ms(*queue), 1),
                Instant::EPOCH,
            );
        }
        selector
            .repository_mut()
            .record_gateway_delay(id, ms(3), Instant::EPOCH);
    }
    let qos = QosSpec::new(ms(150), 0.9)?;
    let decision = selector.select(&qos);
    for c in &decision.candidates {
        let name = profiles[c.id.index() as usize].0;
        println!("  F_R({name})({}) = {:.3}", qos.deadline(), c.probability);
    }
    println!(
        "  selected: {} in {} (model {}, Algorithm 1 {})",
        decision.selection,
        decision.overhead(),
        decision.model_time,
        decision.select_time
    );

    // ---- Act 3: a live simulated cluster --------------------------------
    println!("\n== Act 3: a simulated 5-replica cluster, 20 requests ==");
    let mut config = ExperimentConfig::paper(QosSpec::new(ms(140), 0.9)?, 7);
    config.servers.truncate(5);
    for c in &mut config.clients {
        c.num_requests = 20;
        c.think_time = ms(200);
    }
    let report = run_experiment(&config);
    let client = report.client_under_test();
    println!(
        "  {} requests, mean redundancy {:.2}, observed P(timing failure) {:.2}",
        client.records.len(),
        client.mean_redundancy(),
        client.failure_probability
    );
    println!(
        "  median latency {:.1} ms over {} network messages",
        client
            .latency_quantile(0.5)
            .map(|d| d.as_millis_f64())
            .unwrap_or(f64::NAN),
        report.messages
    );
    assert!(
        client.failure_probability <= 0.1 + 1e-9,
        "the Pc = 0.9 budget held"
    );
    println!("  ✓ the QoS budget held");
    Ok(())
}
