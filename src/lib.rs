//! # aqua — dynamic replica selection for tolerating timing faults
//!
//! A full reproduction of *"A Dynamic Replica Selection Algorithm for
//! Tolerating Timing Faults"* (Krishnamurthy, Sanders, Cukier — DSN 2001):
//! the probabilistic response-time model, the crash-tolerant selection
//! algorithm (Algorithm 1), and the AQuA-style middleware around it —
//! group communication, gateways, replica hosts — on both a deterministic
//! discrete-event simulator and real localhost sockets.
//!
//! This umbrella crate re-exports the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `aqua-core` | pmfs, repository, model, Algorithm 1, QoS, failure detection |
//! | [`sim`] | `lan-sim` | deterministic discrete-event LAN simulator |
//! | [`group`] | `aqua-group` | views, multicast, heartbeat failure detector |
//! | [`replica`] | `aqua-replica` | service-time models, load processes, crash plans, FIFO queue |
//! | [`gateway`] | `aqua-gateway` | the timing fault handler + client/server gateway nodes |
//! | [`strategies`] | `aqua-strategies` | the paper's strategy and classic baselines |
//! | [`workload`] | `aqua-workload` | experiment configs, runner, figure formatting |
//! | [`faults`] | `aqua-faults` | composable seeded fault plans shared by both runtimes |
//! | [`runtime`] | `aqua-runtime` | the handler over real TCP sockets |
//!
//! ## Where to start
//!
//! * `examples/quickstart.rs` — the selection algorithm in isolation, then
//!   a small simulated cluster.
//! * `examples/radar_tracking.rs` — a time-critical client on bursty
//!   replicas (the paper's motivating scenario class).
//! * `examples/search_engine.rs` — the real-socket runtime.
//! * `examples/crash_failover.rs` — the single-crash guarantee (Eq. 3)
//!   live.
//! * `examples/managed_cluster.rs` — the dependability manager holding the
//!   replication level through cascading crashes.
//! * `crates/bench/src/bin/` — one binary per paper figure (see
//!   DESIGN.md and EXPERIMENTS.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use aqua_core as core;
pub use aqua_faults as faults;
pub use aqua_gateway as gateway;
pub use aqua_group as group;
pub use aqua_replica as replica;
pub use aqua_runtime as runtime;
pub use aqua_strategies as strategies;
pub use aqua_workload as workload;
pub use lan_sim as sim;

/// The most commonly used items across the workspace.
pub mod prelude {
    pub use aqua_core::prelude::*;
    pub use aqua_gateway::{
        ClientConfig, ClientGateway, ServerConfig, ServerGateway, TimingFaultHandler,
    };
    pub use aqua_group::{FailureDetectorConfig, GroupCoordinator, Member, Role, View};
    pub use aqua_replica::{CrashPlan, LoadModel, ServiceTimeModel};
    pub use aqua_strategies::{ModelBased, SelectionStrategy};
    pub use aqua_workload::{run_experiment, ExperimentConfig};
    pub use lan_sim::Simulation;
}
