//! Offline stand-in for the `bytes` crate.
//!
//! `Bytes` is a cheaply-cloneable view into a shared, immutable byte
//! buffer; `BytesMut` is a growable builder that `freeze`s into `Bytes`.
//! The `Buf`/`BufMut` traits carry the cursor-style big-endian accessors
//! the wire protocol uses. Only the subset exercised by this workspace is
//! implemented; zero-copy behaviour is preserved for `clone`/`split_to`
//! (`Arc`-shared storage), though `from_static` copies.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// Read-side cursor over a byte buffer, mirroring `bytes::Buf`.
pub trait Buf {
    /// Bytes left between the cursor and the end.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor by `cnt` bytes. Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(raw)
    }

    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(raw)
    }
}

/// Write-side sink for big-endian values, mirroring `bytes::BufMut`.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// Shared immutable byte buffer with a read cursor.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    pub fn from_static(slice: &'static [u8]) -> Self {
        Bytes::copy_from_slice(slice)
    }

    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Bytes::from(slice.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Splits off and returns the first `at` bytes; `self` keeps the rest.
    /// Both halves share the same underlying allocation.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(slice: &'static [u8]) -> Self {
        Bytes::from_static(slice)
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// Growable byte builder mirroring `bytes::BytesMut`.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Converts the accumulated bytes into an immutable `Bytes`.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        Bytes::copy_from_slice(&self.data).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_big_endian() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u8(0xAB);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(0x0123_4567_89AB_CDEF);
        w.put_slice(b"xy");
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 15);
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 0x0123_4567_89AB_CDEF);
        assert_eq!(&r[..], b"xy");
    }

    #[test]
    fn split_to_shares_storage() {
        let mut b = Bytes::from(b"hello world".to_vec());
        let head = b.split_to(5);
        assert_eq!(&head[..], b"hello");
        assert_eq!(&b[..], b" world");
        assert_eq!(head.len() + b.len(), 11);
    }

    #[test]
    fn equality_ignores_provenance() {
        let a = Bytes::from_static(b"ping");
        let b = Bytes::copy_from_slice(b"ping");
        assert_eq!(a, b);
        assert_ne!(a, Bytes::new());
    }

    #[test]
    #[should_panic(expected = "split_to out of bounds")]
    fn split_past_end_panics() {
        let mut b = Bytes::from_static(b"ab");
        let _ = b.split_to(3);
    }
}
