//! Deterministic single-threaded stand-ins for the concurrency primitives
//! used by the AQuA runtime, in the spirit of `loom`'s shadow types.
//!
//! The build environment is air-gapped, so instead of the real `loom` the
//! workspace ships this minimal shim. A model under test replaces its
//! `AtomicU64`s with [`ShadowAtomicU64`] and its `Mutex`es with
//! [`ShadowLock`]; the interleaving explorer in `aqua-lint` then runs every
//! schedule of the model's per-thread step sequences in a single real
//! thread, cloning the whole shadow state at each branch point.
//!
//! Because everything executes on one thread, the shim does not need (and
//! deliberately does not use) any real synchronisation: `Clone` + plain
//! field access is enough, and every schedule is exactly reproducible.
//!
//! What the shim checks for the explorer:
//!
//! * [`ShadowLock::acquire`] panics on re-entrant acquisition by the same
//!   thread (a guaranteed self-deadlock in the real program). Cross-thread
//!   contention is modelled by [`ShadowLock::is_free`]: the explorer must
//!   only schedule a lock-acquiring step when the lock is free, so an
//!   all-threads-blocked state surfaces as a deadlock in the explorer.
//! * [`ShadowAtomicU64`] mirrors the `fetch_add`/`load`/`store` subset the
//!   obs metrics registry uses. Each operation is one indivisible model
//!   step, exactly like a relaxed atomic RMW.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Shadow stand-in for `std::sync::atomic::AtomicU64` (relaxed ordering).
///
/// One `load`/`store`/`fetch_add` call corresponds to one indivisible step
/// of the modelled thread.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShadowAtomicU64 {
    value: u64,
}

impl ShadowAtomicU64 {
    /// Creates an atomic with the given initial value.
    pub fn new(value: u64) -> Self {
        ShadowAtomicU64 { value }
    }

    /// Atomically loads the value.
    pub fn load(&self) -> u64 {
        self.value
    }

    /// Atomically stores `value`.
    pub fn store(&mut self, value: u64) {
        self.value = value;
    }

    /// Atomically adds `delta`, returning the previous value.
    pub fn fetch_add(&mut self, delta: u64) -> u64 {
        let prev = self.value;
        self.value = self.value.wrapping_add(delta);
        prev
    }
}

/// Shadow stand-in for a mutex, tracking which model thread holds it.
///
/// The explorer consults [`ShadowLock::is_free`] (or
/// [`ShadowLock::can_acquire`]) before scheduling an acquiring step, so a
/// blocked thread is simply never scheduled; if no thread can run, the
/// explorer reports a deadlock.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShadowLock {
    holder: Option<usize>,
}

impl ShadowLock {
    /// Creates an unlocked lock.
    pub fn new() -> Self {
        ShadowLock { holder: None }
    }

    /// `true` if no thread holds the lock.
    pub fn is_free(&self) -> bool {
        self.holder.is_none()
    }

    /// `true` if model thread `tid` could acquire the lock right now
    /// (it is free — re-entrant acquisition is never allowed).
    pub fn can_acquire(&self, tid: usize) -> bool {
        match self.holder {
            None => true,
            Some(holder) => {
                // Re-entrant acquisition would self-deadlock in the real
                // program; report it as un-runnable rather than panicking
                // here so the explorer flags the schedule as deadlocked.
                debug_assert_ne!(holder, tid, "re-entrant shadow lock acquisition");
                false
            }
        }
    }

    /// Acquires the lock for model thread `tid`.
    ///
    /// # Panics
    ///
    /// Panics if the lock is already held (the explorer must gate on
    /// [`ShadowLock::can_acquire`] first).
    pub fn acquire(&mut self, tid: usize) {
        assert!(
            self.holder.is_none(),
            "shadow lock acquired while held by thread {:?}",
            self.holder
        );
        self.holder = Some(tid);
    }

    /// Releases the lock held by model thread `tid`.
    ///
    /// # Panics
    ///
    /// Panics if `tid` does not hold the lock.
    pub fn release(&mut self, tid: usize) {
        assert_eq!(
            self.holder,
            Some(tid),
            "shadow lock released by a thread that does not hold it"
        );
        self.holder = None;
    }

    /// The model thread currently holding the lock, if any.
    pub fn holder(&self) -> Option<usize> {
        self.holder
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_ops() {
        let mut a = ShadowAtomicU64::new(1);
        assert_eq!(a.load(), 1);
        assert_eq!(a.fetch_add(2), 1);
        assert_eq!(a.load(), 3);
        a.store(7);
        assert_eq!(a.load(), 7);
    }

    #[test]
    fn lock_tracks_holder() {
        let mut l = ShadowLock::new();
        assert!(l.is_free());
        assert!(l.can_acquire(0));
        l.acquire(0);
        assert_eq!(l.holder(), Some(0));
        assert!(!l.can_acquire(1));
        l.release(0);
        assert!(l.is_free());
    }

    #[test]
    #[should_panic(expected = "acquired while held")]
    fn double_acquire_panics() {
        let mut l = ShadowLock::new();
        l.acquire(0);
        l.acquire(1);
    }

    #[test]
    #[should_panic(expected = "does not hold it")]
    fn foreign_release_panics() {
        let mut l = ShadowLock::new();
        l.acquire(0);
        l.release(1);
    }
}
