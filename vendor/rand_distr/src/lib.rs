//! Offline stand-in for the `rand_distr` crate.
//!
//! Provides the distributions this workspace samples — `Exp`, `Normal`,
//! `LogNormal`, `Pareto` — behind the same fallible-constructor API as
//! upstream. Sampling uses inverse-transform (Exp, Pareto) and Box–Muller
//! (Normal, LogNormal); statistically standard, if not bit-identical to
//! upstream's ziggurat tables.

use rand::Rng;

/// A distribution over values of type `T`, mirroring
/// `rand_distr::Distribution`.
pub trait Distribution<T> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Construction error shared by all distributions in this stub.
///
/// Upstream has one error enum per distribution; the workspace only ever
/// `expect`s them, so a single type with a message preserves behaviour.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Error(&'static str);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for Error {}

/// Draws a uniform value in the open interval `(0, 1)`.
///
/// Inverse transforms divide by or take logs of this value, so both
/// endpoints must be excluded.
fn open01<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen();
        if u > 0.0 {
            return u;
        }
    }
}

/// Exponential distribution with rate `lambda`.
#[derive(Clone, Copy, Debug)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    pub fn new(lambda: f64) -> Result<Self, Error> {
        if lambda > 0.0 && lambda.is_finite() {
            Ok(Exp { lambda })
        } else {
            Err(Error("Exp: lambda must be positive and finite"))
        }
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        -open01(rng).ln() / self.lambda
    }
}

/// Normal (Gaussian) distribution.
#[derive(Clone, Copy, Debug)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, Error> {
        if std_dev.is_finite() && std_dev >= 0.0 && mean.is_finite() {
            Ok(Normal { mean, std_dev })
        } else {
            Err(Error(
                "Normal: mean and std_dev must be finite, std_dev >= 0",
            ))
        }
    }

    /// One standard-normal draw via Box–Muller.
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        let u1 = open01(rng);
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * Self::standard(rng)
    }
}

/// Log-normal distribution: `exp(Normal(mu, sigma))`.
#[derive(Clone, Copy, Debug)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    pub fn new(mu: f64, sigma: f64) -> Result<Self, Error> {
        if sigma.is_finite() && sigma >= 0.0 && mu.is_finite() {
            Ok(LogNormal { mu, sigma })
        } else {
            Err(Error("LogNormal: mu and sigma must be finite, sigma >= 0"))
        }
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * Normal::standard(rng)).exp()
    }
}

/// Pareto distribution with minimum `scale` and tail index `shape`.
#[derive(Clone, Copy, Debug)]
pub struct Pareto {
    scale: f64,
    inv_shape: f64,
}

impl Pareto {
    pub fn new(scale: f64, shape: f64) -> Result<Self, Error> {
        if scale > 0.0 && scale.is_finite() && shape > 0.0 && shape.is_finite() {
            Ok(Pareto {
                scale,
                inv_shape: 1.0 / shape,
            })
        } else {
            Err(Error("Pareto: scale and shape must be positive and finite"))
        }
    }
}

impl Distribution<f64> for Pareto {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.scale * open01(rng).powf(-self.inv_shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn mean_of(dist: &impl Distribution<f64>, n: usize) -> f64 {
        let mut rng = SmallRng::seed_from_u64(11);
        (0..n).map(|_| dist.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn exp_mean_matches_rate() {
        let d = Exp::new(2.0).unwrap();
        let m = mean_of(&d, 50_000);
        assert!((m - 0.5).abs() < 0.02, "mean {m}");
    }

    #[test]
    fn normal_mean_and_spread() {
        let d = Normal::new(100.0, 15.0).unwrap();
        let m = mean_of(&d, 50_000);
        assert!((m - 100.0).abs() < 0.5, "mean {m}");
    }

    #[test]
    fn lognormal_is_positive() {
        let d = LogNormal::new(0.0, 0.5).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        assert!((0..1_000).all(|_| d.sample(&mut rng) > 0.0));
    }

    #[test]
    fn pareto_respects_scale() {
        let d = Pareto::new(3.0, 2.5).unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        assert!((0..1_000).all(|_| d.sample(&mut rng) >= 3.0));
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Exp::new(0.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(LogNormal::new(0.0, -1.0).is_err());
        assert!(Pareto::new(0.0, 1.0).is_err());
    }
}
