//! Offline stand-in for `serde`.
//!
//! Declares the `Serialize`/`Deserialize` trait names and re-exports the
//! no-op derive macros from the stub `serde_derive`. The traits carry no
//! methods because nothing in this workspace serializes through serde —
//! structured output is produced by `aqua-obs`'s hand-rolled JSON writer.
//! (A derive macro and a trait may share a name; they live in different
//! namespaces.)

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
