//! Offline stand-in for `crossbeam` (only the `channel` module).
//!
//! Implements MPMC channels over `Mutex<VecDeque> + Condvar`. Slower than
//! crossbeam's lock-free queues but semantically equivalent for the
//! workspace's needs: cloneable senders *and* receivers, bounded
//! back-pressure, `recv_timeout`, and `Receiver::len()` (which `std::sync::
//! mpsc` lacks — that is why this is hand-rolled rather than delegated).

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        /// Signalled when a message is pushed or all senders drop.
        not_empty: Condvar,
        /// Signalled when a message is popped or all receivers drop.
        not_full: Condvar,
        capacity: Option<usize>,
    }

    impl<T> Chan<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.state
                .lock()
                .unwrap_or_else(|poison| poison.into_inner())
        }
    }

    fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    /// Unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }

    /// Bounded MPMC channel; `send` blocks when full.
    ///
    /// Crossbeam's zero-capacity rendezvous is not reproduced; a capacity
    /// of 0 behaves as 1 (the workspace only uses `bounded(1)`).
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        channel(Some(capacity.max(1)))
    }

    /// Error returned by [`Sender::send`] when all receivers have dropped.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Sending half; clone freely.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Sender<T> {
        /// Sends, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.chan.lock();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.chan.capacity {
                    Some(cap) if state.queue.len() >= cap => {
                        state = self
                            .chan
                            .not_full
                            .wait(state)
                            .unwrap_or_else(|poison| poison.into_inner());
                    }
                    _ => break,
                }
            }
            state.queue.push_back(value);
            drop(state);
            self.chan.not_empty.notify_one();
            Ok(())
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.chan.lock().queue.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.lock().senders += 1;
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.chan.lock();
            state.senders -= 1;
            let last = state.senders == 0;
            drop(state);
            if last {
                self.chan.not_empty.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    /// Receiving half; clone freely (each message is delivered to exactly
    /// one receiver).
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders drop.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.chan.lock();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    drop(state);
                    self.chan.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .chan
                    .not_empty
                    .wait(state)
                    .unwrap_or_else(|poison| poison.into_inner());
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.chan.lock();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    drop(state);
                    self.chan.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .chan
                    .not_empty
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(|poison| poison.into_inner());
                state = guard;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.chan.lock();
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.chan.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.chan.lock().queue.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.lock().receivers += 1;
            Receiver {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.chan.lock();
            state.receivers -= 1;
            let last = state.receivers == 0;
            drop(state);
            if last {
                self.chan.not_full.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn unbounded_fifo() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            assert_eq!(rx.len(), 10);
            assert_eq!(
                (0..10).map(|_| rx.recv().unwrap()).collect::<Vec<_>>(),
                (0..10).collect::<Vec<_>>()
            );
        }

        #[test]
        fn recv_timeout_times_out() {
            let (tx, rx) = unbounded::<u8>();
            let err = rx.recv_timeout(Duration::from_millis(20)).unwrap_err();
            assert_eq!(err, RecvTimeoutError::Timeout);
            drop(tx);
            let err = rx.recv_timeout(Duration::from_millis(20)).unwrap_err();
            assert_eq!(err, RecvTimeoutError::Disconnected);
        }

        #[test]
        fn disconnect_wakes_blocked_recv() {
            let (tx, rx) = unbounded::<u8>();
            let h = thread::spawn(move || rx.recv());
            thread::sleep(Duration::from_millis(10));
            drop(tx);
            assert_eq!(h.join().unwrap(), Err(RecvError));
        }

        #[test]
        fn bounded_applies_backpressure() {
            let (tx, rx) = bounded(1);
            tx.send(1u8).unwrap();
            let t = {
                let tx = tx.clone();
                thread::spawn(move || {
                    tx.send(2).unwrap();
                })
            };
            thread::sleep(Duration::from_millis(10));
            assert_eq!(rx.recv().unwrap(), 1);
            t.join().unwrap();
            assert_eq!(rx.recv().unwrap(), 2);
        }

        #[test]
        fn cloned_receivers_share_messages() {
            let (tx, rx1) = unbounded();
            let rx2 = rx1.clone();
            tx.send(1u32).unwrap();
            tx.send(2).unwrap();
            let a = rx1.recv().unwrap();
            let b = rx2.recv().unwrap();
            let mut got = [a, b];
            got.sort_unstable();
            assert_eq!(got, [1, 2]);
        }

        #[test]
        fn send_fails_after_receivers_drop() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(1u8).is_err());
        }
    }
}
