//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in air-gapped environments with no crates.io
//! access, so the external `rand` dependency is replaced by this minimal,
//! API-compatible subset: `SmallRng`, `SeedableRng::seed_from_u64`, the
//! `Rng` extension methods used by the workspace (`gen_range`, `gen_bool`,
//! `gen`), and `seq::SliceRandom::shuffle`.
//!
//! The generator is a xorshift64* stream seeded through splitmix64: fast,
//! deterministic, and statistically adequate for simulation workloads. It
//! intentionally does not match upstream `SmallRng`'s exact stream; the
//! workspace only relies on determinism for a fixed seed, not on specific
//! values.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a 64-bit generator.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// Panics on an empty range, like upstream `rand`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        let mut src = |_: ()| self.next_u64();
        range.sample_from(&mut src)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }

    /// Samples a value from the "standard" distribution of `T`
    /// (uniform `[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::from_bits64(self.next_u64())
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable by [`Rng::gen`].
pub trait StandardSample {
    fn from_bits64(bits: u64) -> Self;
}

impl StandardSample for f64 {
    fn from_bits64(bits: u64) -> Self {
        unit_f64(bits)
    }
}

impl StandardSample for f32 {
    fn from_bits64(bits: u64) -> Self {
        unit_f64(bits) as f32
    }
}

impl StandardSample for bool {
    fn from_bits64(bits: u64) -> Self {
        bits & 1 == 1
    }
}

impl StandardSample for u64 {
    fn from_bits64(bits: u64) -> Self {
        bits
    }
}

impl StandardSample for u32 {
    fn from_bits64(bits: u64) -> Self {
        (bits >> 32) as u32
    }
}

/// Types with a uniform sampler over ranges, mirroring
/// `rand::distributions::uniform::SampleUniform`.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_uniform(src: &mut dyn FnMut(()) -> u64, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform(
                src: &mut dyn FnMut(()) -> u64,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let lo_w = lo as i128;
                let hi_w = hi as i128;
                let span = if inclusive { hi_w - lo_w + 1 } else { hi_w - lo_w };
                assert!(span > 0, "cannot sample empty range");
                let offset = (src(()) as u128 % span as u128) as i128;
                (lo_w + offset) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform(
                src: &mut dyn FnMut(()) -> u64,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                assert!(
                    if inclusive { lo <= hi } else { lo < hi },
                    "cannot sample empty range"
                );
                let u = unit_f64(src(())) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`], mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    fn sample_from(self, src: &mut dyn FnMut(()) -> u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from(self, src: &mut dyn FnMut(()) -> u64) -> T {
        T::sample_uniform(src, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from(self, src: &mut dyn FnMut(()) -> u64) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_uniform(src, lo, hi, true)
    }
}

pub mod rngs {
    //! Concrete generators (only `SmallRng` is provided).

    /// Small, fast, non-cryptographic generator (xorshift64*).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl crate::SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 scrambles low-entropy seeds (0, 1, 2, ...) into
            // well-distributed initial states.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            SmallRng {
                state: if z == 0 { 0x853C_49E6_748F_EA9B } else { z },
            }
        }
    }

    impl crate::RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

pub mod seq {
    //! Sequence helpers (only `SliceRandom::shuffle` is provided).

    use crate::Rng;

    /// Slice extension mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_distinct_streams() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 16);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let g: f64 = rng.gen_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&g));
            let i: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            lo = lo.min(u);
            hi = hi.max(u);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }
}
