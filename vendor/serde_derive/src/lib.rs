//! Offline no-op stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on a handful of types
//! but never actually serializes through serde (JSON output is hand-built
//! in `aqua-obs`). These derives therefore expand to nothing; they exist so
//! the `#[derive(serde::Serialize, serde::Deserialize)]` attributes and
//! `#[serde(...)]` helper attributes keep compiling without crates.io
//! access.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
