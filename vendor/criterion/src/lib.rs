//! Offline stand-in for `criterion`.
//!
//! Provides the handful of types the workspace's benches use —
//! `Criterion`, `benchmark_group`/`bench_with_input`/`bench_function`,
//! `BenchmarkId`, `Bencher::iter`, and the `criterion_group!`/
//! `criterion_main!` macros. Measurement is a simple calibrated loop
//! reporting mean ns/iter on stdout; there is no statistical analysis,
//! HTML report, or comparison against saved baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Drives the timed closure of one benchmark.
pub struct Bencher {
    name: String,
}

impl Bencher {
    /// Calibrates an iteration count, times the closure, and prints the
    /// mean time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm up and find an iteration count that runs ~20ms total.
        let mut iters: u64 = 1;
        loop {
            let started = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = started.elapsed();
            if elapsed >= Duration::from_millis(20) || iters >= 1 << 20 {
                let per_iter = elapsed.as_nanos() / u128::from(iters.max(1));
                println!("{:<50} {:>12} ns/iter", self.name, per_iter);
                return;
            }
            iters = iters.saturating_mul(if elapsed.is_zero() {
                64
            } else {
                let target = Duration::from_millis(25).as_nanos() / elapsed.as_nanos().max(1);
                (target as u64).clamp(2, 64)
            });
        }
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { name: name.into() };
        routine(&mut bencher);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            name: format!("{}/{}", self.name, id.label),
        };
        routine(&mut bencher, input);
        self
    }

    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            name: format!("{}/{}", self.name, id.label),
        };
        routine(&mut bencher);
        self
    }

    pub fn finish(self) {}
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, n| {
            b.iter(|| n * 2)
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_runs_targets() {
        benches();
    }
}
