//! Offline stand-in for `proptest`.
//!
//! Re-implements the subset of proptest's API this workspace uses:
//! the `proptest!` macro (with optional `#![proptest_config(...)]`),
//! `prop_assert!`/`prop_assert_eq!`, `prop_oneof!` (weighted and
//! unweighted), `Strategy` + `prop_map`, `Just`, `any::<T>()`, numeric
//! range strategies, tuple strategies, and `prop::collection::vec`.
//!
//! Differences from upstream, deliberately accepted:
//! - **No shrinking.** A failing case reports its inputs via the panic
//!   message but is not minimised.
//! - **Deterministic seeding.** Each test derives its RNG seed from its
//!   module path and name, so runs are reproducible without a persistence
//!   file; there is no `PROPTEST_*` environment handling.

pub mod test_runner {
    //! Config, error type, and the deterministic RNG driving each test.

    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};

    /// Per-test configuration; only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property is checked against.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 128 keeps the heavier simulation
            // properties fast while still exercising a wide input space.
            ProptestConfig { cases: 128 }
        }
    }

    /// Failure raised by `prop_assert!` and friends inside a property.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The property is false for this input.
        Fail(String),
        /// The input should be skipped (not counted as a failure).
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(reason) => write!(f, "test case failed: {reason}"),
                TestCaseError::Reject(reason) => write!(f, "test case rejected: {reason}"),
            }
        }
    }

    /// Shorthand used by helper functions inside properties.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic RNG handed to strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng(SmallRng);

    impl TestRng {
        /// Seeds from an arbitrary label (the macro passes the test's
        /// module path + name) so every test draws a distinct, stable
        /// stream.
        pub fn deterministic(label: &str) -> Self {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in label.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(SmallRng::seed_from_u64(hash))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait and the combinators used by the workspace.

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike upstream there is no `ValueTree`/shrinking layer: a strategy
    /// simply samples a value from the test RNG.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.sample(rng))
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted union of same-valued strategies; built by `prop_oneof!`.
    pub struct Union<V> {
        arms: Vec<(f64, BoxedSampler<V>)>,
        total_weight: f64,
    }

    /// Type-erased sampler; what `prop_oneof!` arms become.
    pub type BoxedSampler<V> = Box<dyn Fn(&mut TestRng) -> V>;

    /// Erases a concrete strategy into a sampler closure so arms of
    /// different types can share one `Union`. (A free function, not an
    /// associated one: `Union::<V>::boxed` would leave `V` unconstrained
    /// at the call site since the return type only mentions `S::Value`.)
    pub fn boxed_sampler<S>(strategy: S) -> BoxedSampler<S::Value>
    where
        S: Strategy + 'static,
    {
        Box::new(move |rng| strategy.sample(rng))
    }

    impl<V> Union<V> {
        pub fn new(arms: Vec<(f64, BoxedSampler<V>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total_weight = arms.iter().map(|(w, _)| *w).sum();
            Union { arms, total_weight }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn sample(&self, rng: &mut TestRng) -> V {
            let mut pick: f64 = rng.gen::<f64>() * self.total_weight;
            for (weight, sampler) in &self.arms {
                if pick < *weight {
                    return sampler(rng);
                }
                pick -= weight;
            }
            (self.arms[self.arms.len() - 1].1)(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.start..self.end)
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);

    /// Types with a canonical full-range strategy, mirroring
    /// `proptest::arbitrary::Arbitrary`.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rand::RngCore::next_u64(rng) as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rand::RngCore::next_u64(rng) & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen()
        }
    }

    /// Strategy produced by [`any`].
    #[derive(Clone, Debug)]
    pub struct Any<T> {
        _marker: PhantomData<T>,
    }

    /// Full-range strategy for `T`, mirroring `proptest::prelude::any`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: PhantomData,
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Accepted size specifications for [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange {
                min: len,
                max_exclusive: len + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(range: std::ops::Range<usize>) -> Self {
            assert!(range.start < range.end, "empty vec size range");
            SizeRange {
                min: range.start,
                max_exclusive: range.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(range: std::ops::RangeInclusive<usize>) -> Self {
            let (lo, hi) = range.into_inner();
            assert!(lo <= hi, "empty vec size range");
            SizeRange {
                min: lo,
                max_exclusive: hi + 1,
            }
        }
    }

    /// Strategy for vectors with element strategy `S`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length falls in `size`, mirroring
    /// `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.min + 1 >= self.size.max_exclusive {
                self.size.min
            } else {
                rng.gen_range(self.size.min..self.size.max_exclusive)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests. Supports the forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u64..100, v in prop::collection::vec(any::<u8>(), 0..16)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { @config ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! {
            @config ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (@config ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        #[allow(unreachable_code, clippy::redundant_closure_call)]
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut rng);)+
                let outcome = (move || -> ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    Ok(()) => {}
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err($crate::test_runner::TestCaseError::Fail(message)) => panic!(
                        "property '{}' failed on case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        message
                    ),
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property, failing the current case
/// (without panicking the generator loop directly).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`: {}\n  left: `{:?}`\n right: `{:?}`",
            format!($($fmt)+),
            left,
            right
        );
    }};
}

/// Picks among strategies producing the same value type, optionally
/// weighted (`weight => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as f64, $crate::strategy::boxed_sampler($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1.0_f64, $crate::strategy::boxed_sampler($strategy))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn helper(x: u64) -> Result<(), TestCaseError> {
        prop_assert!(x < 1_000, "x was {}", x);
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in 0.0f64..=1.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((0.0..=1.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(any::<u8>(), 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
        }

        #[test]
        fn prop_map_applies(x in (0u64..100).prop_map(|v| v * 2)) {
            prop_assert!(x % 2 == 0);
            prop_assert!(x < 200);
        }

        #[test]
        fn oneof_weighted_and_tuples(pair in (0u32..5, 5u32..10), pick in prop_oneof![
            3 => Just(1u8),
            1 => Just(2u8),
        ]) {
            let (a, b) = pair;
            prop_assert!(a < 5 && b >= 5);
            prop_assert!(pick == 1 || pick == 2);
            helper(u64::from(a))?;
        }

        #[test]
        fn early_return_ok_is_accepted(x in 0u64..10) {
            if x < 10 {
                return Ok(());
            }
            prop_assert!(false, "unreachable");
        }
    }

    #[test]
    #[should_panic(expected = "property 'always_fails' failed")]
    fn failures_panic_with_context() {
        proptest! {
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x is small: {}", x);
            }
        }
        always_fails();
    }
}
