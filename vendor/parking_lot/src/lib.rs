//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::Mutex` behind `parking_lot`'s panic-free `lock()`
//! signature (no poisoning: a poisoned std mutex is recovered via
//! `into_inner`, matching parking_lot's behaviour of simply continuing).

use std::fmt;
use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Mutual exclusion primitive mirroring `parking_lot::Mutex`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self
                .inner
                .lock()
                .unwrap_or_else(|poison| poison.into_inner()),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard mirroring `parking_lot::MutexGuard`.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: StdMutexGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn contended_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8_000);
    }
}
