//! Integration tests for crash handling across the stack: silent crashes,
//! view changes, Equation 3 masking, and the give-up path.

use aqua::core::qos::QosSpec;
use aqua::core::time::{Duration, Instant};
use aqua::replica::{CrashPlan, ServiceTimeModel};
use aqua::workload::{
    run_experiment, ClientSpec, ExperimentConfig, NetworkSpec, ServerSpec, StrategySpec,
};

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

fn base_config(seed: u64) -> ExperimentConfig {
    let qos = QosSpec::new(ms(250), 0.9).unwrap();
    let mut client = ClientSpec::paper(qos);
    client.num_requests = 40;
    client.think_time = ms(200);
    ExperimentConfig {
        seed,
        network: NetworkSpec::paper(),
        servers: (0..5)
            .map(|_| ServerSpec {
                service: ServiceTimeModel::Normal {
                    mean: ms(70),
                    std_dev: ms(15),
                    min: Duration::ZERO,
                },
                ..ServerSpec::paper()
            })
            .collect(),
        standby_servers: Vec::new(),
        manager: None,
        clients: vec![client],
        faults: aqua::faults::FaultPlan::new(),
        max_virtual_time: Duration::from_secs(120),
    }
}

#[test]
fn single_crash_is_masked() {
    let mut config = base_config(11);
    config.servers[0].crash = CrashPlan::AtTime(Instant::from_secs(4));
    let report = run_experiment(&config);
    let c = report.client_under_test();
    assert_eq!(c.records.len(), 40);
    assert!(
        c.failure_probability <= 0.1,
        "Eq. 3: one crash must not break the 0.9 spec: {}",
        c.failure_probability
    );
    assert_eq!(c.stats.gave_up, 0, "the backup always answered");
}

#[test]
fn two_staggered_crashes_are_survived() {
    // The formal guarantee covers one crash per request, but staggered
    // crashes (view change in between) must also be absorbed.
    let mut config = base_config(12);
    config.servers[1].crash = CrashPlan::AtTime(Instant::from_secs(3));
    config.servers[3].crash = CrashPlan::AtTime(Instant::from_secs(6));
    let report = run_experiment(&config);
    let c = report.client_under_test();
    assert!(
        c.failure_probability <= 0.15,
        "staggered crashes: {}",
        c.failure_probability
    );
}

#[test]
fn crash_after_requests_trigger_views() {
    let mut config = base_config(13);
    config.servers[2].crash = CrashPlan::AfterRequests(5);
    let report = run_experiment(&config);
    let c = report.client_under_test();
    assert!(c.failure_probability <= 0.1, "{}", c.failure_probability);
}

#[test]
fn mtbf_crashes_are_deterministic_per_seed() {
    let mk = |seed| {
        let mut config = base_config(seed);
        for s in &mut config.servers {
            s.crash = CrashPlan::Mtbf(Duration::from_secs(60));
        }
        let report = run_experiment(&config);
        let c = report.client_under_test();
        (
            c.records
                .iter()
                .map(|r| (r.seq, r.timely))
                .collect::<Vec<_>>(),
            c.failure_probability,
        )
    };
    assert_eq!(mk(14), mk(14), "same seed, same history");
}

#[test]
fn losing_every_replica_fails_cleanly() {
    let mut config = base_config(15);
    for s in &mut config.servers {
        s.crash = CrashPlan::AtTime(Instant::from_secs(3));
    }
    let report = run_experiment(&config);
    let c = report.client_under_test();
    let late = c.records.iter().filter(|r| !r.timely).count();
    assert!(
        late > 0,
        "after total loss, requests must fail rather than hang"
    );
    // The run still terminated (the harness did not dead-lock waiting).
    assert!(report.ended_at < Instant::EPOCH + Duration::from_secs(130));
}

#[test]
fn unreplicated_baseline_suffers_from_the_same_crash() {
    // Control for single_crash_is_masked: with k = 1 and no reserve, the
    // crash costs at least the requests in flight.
    let mut masked = base_config(16);
    masked.servers[0].crash = CrashPlan::AtTime(Instant::from_secs(4));
    let mut exposed = masked.clone();
    exposed.clients[0].strategy = StrategySpec::StaticK { k: 1 };

    let masked_report = run_experiment(&masked);
    let exposed_report = run_experiment(&exposed);
    let masked_fail = masked_report.client_under_test().failure_probability;
    let exposed_gave_up = exposed_report.client_under_test().stats.gave_up;
    assert!(masked_fail <= 0.1);
    assert!(
        exposed_gave_up >= 1,
        "static-k=1 on the crashing replica must lose at least the request in flight"
    );
}
