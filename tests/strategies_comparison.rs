//! Integration tests comparing the paper's strategy against the baselines
//! from §1/§7 on scenarios where adaptivity matters.

use aqua::core::qos::QosSpec;
use aqua::core::time::Duration;
use aqua::replica::{LoadModel, ServiceTimeModel};
use aqua::workload::{
    run_experiment, ClientReport, ClientSpec, ExperimentConfig, NetworkSpec, ServerSpec,
    StrategySpec,
};

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

/// Heterogeneous, partially bursty pool — the environment §8 calls
/// "compute-bound service providers that display variability in their
/// response times".
fn bursty_scenario(strategy: StrategySpec, seed: u64, deadline_ms: u64) -> ExperimentConfig {
    let qos = QosSpec::new(ms(deadline_ms), 0.9).unwrap();
    let mut client = ClientSpec::paper(qos);
    client.strategy = strategy;
    client.num_requests = 80;
    client.think_time = ms(200);
    let servers = (0..6)
        .map(|i| ServerSpec {
            service: ServiceTimeModel::Normal {
                mean: ms(50 + 12 * i as u64),
                std_dev: ms(15),
                min: Duration::ZERO,
            },
            method_services: Vec::new(),
            load: if i % 2 == 0 {
                LoadModel::bursty(Duration::from_secs(4), Duration::from_secs(2), 7.0)
            } else {
                LoadModel::nominal()
            },
            crash: aqua::replica::CrashPlan::Never,
            recover_after: None,
        })
        .collect();
    ExperimentConfig {
        seed,
        network: NetworkSpec::paper(),
        servers,
        standby_servers: Vec::new(),
        manager: None,
        clients: vec![client],
        faults: aqua::workload::FaultPlan::new(),
        max_virtual_time: Duration::from_secs(120),
    }
}

fn run_avg(
    strategy: StrategySpec,
    seeds: std::ops::RangeInclusive<u64>,
    deadline_ms: u64,
) -> (f64, f64) {
    let mut fail = 0.0;
    let mut red = 0.0;
    let n = seeds.clone().count() as f64;
    for seed in seeds {
        let report = run_experiment(&bursty_scenario(strategy.clone(), seed, deadline_ms));
        let c: &ClientReport = report.client_under_test();
        fail += c.failure_probability;
        red += c.mean_redundancy();
    }
    (fail / n, red / n)
}

#[test]
fn model_based_meets_budget_where_round_robin_does_not() {
    // A tight 100 ms deadline: the model dodges bursty/slow hosts, a
    // blind rotation cannot.
    let (model_fail, _) = run_avg(StrategySpec::paper(), 1..=3, 100);
    let (rr_fail, _) = run_avg(StrategySpec::RoundRobin { k: 2 }, 1..=3, 100);
    assert!(
        model_fail <= 0.1,
        "model-based holds the 0.9 spec: {model_fail}"
    );
    assert!(
        rr_fail > model_fail + 0.05,
        "blind rotation hits bursty/slow hosts: {rr_fail} vs {model_fail}"
    );
}

#[test]
fn model_based_is_cheaper_than_full_replication() {
    let (model_fail, model_red) = run_avg(StrategySpec::paper(), 4..=6, 150);
    let (all_fail, all_red) = run_avg(StrategySpec::AllReplicas, 4..=6, 150);
    assert!(model_fail <= 0.1 + 0.02);
    assert!(all_fail <= 0.05, "all-replicas is the gold standard");
    assert!(
        model_red < all_red / 1.5,
        "the paper's point: comparable protection at a fraction of the load \
         ({model_red:.2} vs {all_red:.2} replicas per request)"
    );
}

#[test]
fn model_based_beats_random_at_equal_cost() {
    let (model_fail, model_red) = run_avg(StrategySpec::paper(), 7..=9, 120);
    let (rand_fail, rand_red) = run_avg(StrategySpec::Random { k: 2 }, 7..=9, 120);
    // Similar redundancy…
    assert!(
        (model_red - rand_red).abs() < 1.0,
        "{model_red} vs {rand_red}"
    );
    // …but informed choice fails less.
    assert!(
        model_fail <= rand_fail,
        "informed {model_fail} ≤ random {rand_fail}"
    );
}

#[test]
fn every_strategy_completes_the_workload() {
    for strategy in [
        StrategySpec::paper(),
        StrategySpec::Random { k: 2 },
        StrategySpec::FastestMean { k: 2 },
        StrategySpec::LeastLoaded { k: 2 },
        StrategySpec::Nearest { k: 2 },
        StrategySpec::RoundRobin { k: 2 },
        StrategySpec::StaticK { k: 2 },
        StrategySpec::AllReplicas,
    ] {
        let report = run_experiment(&bursty_scenario(strategy.clone(), 42, 150));
        let c = report.client_under_test();
        assert_eq!(
            c.records.len(),
            80,
            "{} finished its 80 requests",
            strategy.name()
        );
        assert_eq!(c.strategy, strategy.name());
    }
}
