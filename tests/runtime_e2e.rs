//! End-to-end tests of the socket runtime beyond the crate's unit tests:
//! multiple clients sharing replicas, cross-client performance updates,
//! strategy plumbing, and renegotiation on real connections.

use std::net::SocketAddr;

use aqua::core::qos::{QosSpec, ReplicaId};
use aqua::core::repository::MethodId;
use aqua::core::time::Duration;
use aqua::runtime::{AquaClient, AquaClientConfig, ReplicaServer, ReplicaServerConfig};
use aqua::strategies::{ModelBased, RoundRobin};

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

fn spawn(service_ms: &[u64]) -> (Vec<ReplicaServer>, Vec<(ReplicaId, SocketAddr)>) {
    let servers: Vec<ReplicaServer> = service_ms
        .iter()
        .enumerate()
        .map(|(i, s)| {
            ReplicaServer::spawn(ReplicaServerConfig::quick(ReplicaId::new(i as u64), *s))
                .expect("spawn server")
        })
        .collect();
    let addrs = servers.iter().map(|s| (s.replica(), s.addr())).collect();
    (servers, addrs)
}

#[test]
fn two_clients_share_replicas_and_updates() {
    let (_servers, addrs) = spawn(&[5, 8, 12]);
    let qos = QosSpec::new(ms(300), 0.9).unwrap();
    let a = AquaClient::connect(
        &addrs,
        AquaClientConfig::new(qos),
        Box::new(ModelBased::default()),
    )
    .unwrap();
    let b = AquaClient::connect(
        &addrs,
        AquaClientConfig::new(qos),
        Box::new(ModelBased::default()),
    )
    .unwrap();

    // Only client A issues requests…
    for _ in 0..5 {
        a.call(MethodId::DEFAULT, b"from-a").expect("a ok");
    }
    // …but B's repository fills via the pushed PerfUpdates. B's first call
    // still multicasts to everyone (no gateway delays measured yet), but
    // the perf histories must already be populated.
    std::thread::sleep(std::time::Duration::from_millis(100));
    let out = b.call(MethodId::DEFAULT, b"from-b").expect("b ok");
    assert_eq!(
        out.redundancy, 3,
        "B's first call is a cold-start multicast"
    );
    b.with_handler(|h| {
        for (_, stats) in h.repository().iter() {
            assert!(
                stats.histories().count() > 0,
                "A's traffic warmed B's perf histories"
            );
        }
    });
    // After one own call — and once the redundant replies (which carry the
    // remaining replicas' gateway delays) have landed — B selects the
    // minimal set.
    std::thread::sleep(std::time::Duration::from_millis(100));
    let out = b.call(MethodId::DEFAULT, b"from-b").expect("b ok");
    assert_eq!(out.redundancy, 2);
}

#[test]
fn alternate_strategies_run_over_sockets() {
    let (_servers, addrs) = spawn(&[5, 5, 5]);
    let qos = QosSpec::new(ms(300), 0.0).unwrap();
    let client = AquaClient::connect(
        &addrs,
        AquaClientConfig::new(qos),
        Box::new(RoundRobin::new(1)),
    )
    .unwrap();
    let mut seen = std::collections::BTreeSet::new();
    for _ in 0..6 {
        let out = client.call(MethodId::DEFAULT, b"x").expect("ok");
        assert_eq!(out.redundancy, 1);
        seen.insert(out.replica);
    }
    assert_eq!(seen.len(), 3, "round-robin visited every replica: {seen:?}");
}

#[test]
fn renegotiation_resets_the_detector_live() {
    let (_servers, addrs) = spawn(&[50]);
    // Impossible 5 ms deadline → every reply late.
    let qos = QosSpec::new(ms(5), 0.9).unwrap();
    let client = AquaClient::connect(
        &addrs,
        AquaClientConfig::new(qos),
        Box::new(ModelBased::default()),
    )
    .unwrap();
    let out = client.call(MethodId::DEFAULT, b"x").expect("reply arrives");
    assert!(!out.timely);
    assert!(out.callback, "first late reply already violates Pc = 0.9");

    client.renegotiate(QosSpec::new(ms(500), 0.9).unwrap());
    let out = client.call(MethodId::DEFAULT, b"x").expect("ok");
    assert!(out.timely, "the renegotiated spec is holdable");
    client.with_handler(|h| {
        assert!(!h.detector().is_violating());
        assert_eq!(h.qos().deadline(), ms(500));
    });
}

#[test]
fn per_method_histories_over_sockets() {
    let (_servers, addrs) = spawn(&[10, 10]);
    let qos = QosSpec::new(ms(300), 0.5).unwrap();
    let client = AquaClient::connect(
        &addrs,
        AquaClientConfig::new(qos),
        Box::new(ModelBased::default()),
    )
    .unwrap();
    let fast = MethodId::new(1);
    let slow = MethodId::new(2);
    for _ in 0..3 {
        client.call(fast, b"f").expect("ok");
        client.call(slow, b"s").expect("ok");
    }
    client.with_handler(|h| {
        let repo = h.repository();
        let (_, stats) = repo.iter().next().expect("has replicas");
        assert!(stats.history(fast).is_some(), "method 1 classified");
        assert!(stats.history(slow).is_some(), "method 2 classified");
    });
}

#[test]
fn replicas_can_join_at_runtime() {
    let (mut servers, addrs) = spawn(&[30]);
    let qos = QosSpec::new(ms(300), 0.9).unwrap();
    let client = AquaClient::connect(
        &addrs,
        AquaClientConfig::new(qos),
        Box::new(ModelBased::default()),
    )
    .unwrap();
    for _ in 0..3 {
        let out = client.call(MethodId::DEFAULT, b"x").expect("ok");
        assert_eq!(out.redundancy, 1, "only one replica exists");
    }
    // A faster replica joins the service group.
    let newcomer = ReplicaServer::spawn(ReplicaServerConfig::quick(ReplicaId::new(9), 5)).unwrap();
    client
        .add_replica(newcomer.replica(), newcomer.addr())
        .expect("connects");
    servers.push(newcomer);

    // Next call: cold newcomer → full multicast, which warms it.
    let out = client.call(MethodId::DEFAULT, b"x").expect("ok");
    assert_eq!(out.redundancy, 2);
    std::thread::sleep(std::time::Duration::from_millis(100));
    // Once warm, the 5 ms newcomer becomes the preferred (first) replica.
    let out = client.call(MethodId::DEFAULT, b"x").expect("ok");
    assert_eq!(out.redundancy, 2, "Pc=0.9 with 2 replicas selects both");
    assert_eq!(
        out.replica,
        ReplicaId::new(9),
        "the faster newcomer answers first"
    );
}

#[test]
fn queue_buildup_is_reported() {
    // A slow replica with several queued requests reports non-zero queue
    // lengths, which flow into the repository's outstanding counts.
    let (servers, addrs) = spawn(&[40]);
    let qos = QosSpec::new(ms(2_000), 0.0).unwrap();
    let client = std::sync::Arc::new(
        AquaClient::connect(
            &addrs,
            AquaClientConfig::new(qos),
            Box::new(ModelBased::default()),
        )
        .unwrap(),
    );
    // Fire 4 calls from parallel threads so they pile up in the FIFO.
    let mut handles = Vec::new();
    for _ in 0..4 {
        let c = std::sync::Arc::clone(&client);
        handles.push(std::thread::spawn(move || {
            c.call(MethodId::DEFAULT, b"q").map(|o| o.response_time)
        }));
    }
    let latencies: Vec<Duration> = handles
        .into_iter()
        .map(|h| h.join().unwrap().expect("ok"))
        .collect();
    assert_eq!(servers[0].serviced(), 4);
    // FIFO service: the slowest call waited behind the other three.
    let max = latencies.iter().max().unwrap();
    assert!(
        *max >= ms(120),
        "4 × 40 ms FIFO service must delay the last call: {max}"
    );
}
