//! Reproducibility guarantees: identical seeds replay identical histories
//! through every layer of the simulated stack, including congested
//! networks, load processes, and crash schedules.

use aqua::core::qos::QosSpec;
use aqua::core::time::Duration;
use aqua::replica::{CrashPlan, LoadModel, ServiceTimeModel};
use aqua::workload::{run_experiment, ClientSpec, ExperimentConfig, NetworkSpec, ServerSpec};
use lan_sim::UniformLan;

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

fn chaotic_config(seed: u64) -> ExperimentConfig {
    // Every stochastic element at once: noisy service, bursty load, MTBF
    // crashes, congested network, two clients.
    let servers = (0..5)
        .map(|i| ServerSpec {
            service: ServiceTimeModel::LogNormal {
                median: ms(60 + 10 * i as u64),
                sigma: 0.6,
            },
            method_services: Vec::new(),
            load: LoadModel::bursty(Duration::from_secs(3), Duration::from_secs(1), 4.0),
            crash: CrashPlan::Mtbf(Duration::from_secs(90)),
            recover_after: None,
        })
        .collect();
    let mut c1 = ClientSpec::paper(QosSpec::new(ms(200), 0.9).unwrap());
    c1.num_requests = 30;
    c1.think_time = ms(150);
    let mut c2 = ClientSpec::paper(QosSpec::new(ms(120), 0.5).unwrap());
    c2.num_requests = 30;
    c2.think_time = ms(100);
    ExperimentConfig {
        seed,
        network: NetworkSpec::Congested {
            lan: UniformLan::aqua_testbed(),
            spike_prob: 0.01,
            spike_scale: 10.0,
            spike_duration: ms(300),
        },
        servers,
        standby_servers: Vec::new(),
        manager: None,
        clients: vec![c1, c2],
        faults: aqua::workload::FaultPlan::new(),
        max_virtual_time: Duration::from_secs(60),
    }
}

type History = Vec<Vec<(u64, bool, usize, Option<u64>)>>;

fn history(seed: u64) -> History {
    let report = run_experiment(&chaotic_config(seed));
    report
        .clients
        .iter()
        .map(|c| {
            c.records
                .iter()
                .map(|r| {
                    (
                        r.seq,
                        r.timely,
                        r.redundancy,
                        r.response_time.map(|d| d.as_nanos()),
                    )
                })
                .collect()
        })
        .collect()
}

#[test]
fn identical_seeds_replay_identically() {
    assert_eq!(history(1234), history(1234));
}

#[test]
fn different_seeds_diverge() {
    assert_ne!(
        history(1),
        history(2),
        "with this much randomness, different seeds must differ"
    );
}

#[test]
fn message_and_event_counts_are_reproducible() {
    let a = run_experiment(&chaotic_config(77));
    let b = run_experiment(&chaotic_config(77));
    assert_eq!(a.messages, b.messages);
    assert_eq!(a.events, b.events);
    assert_eq!(a.ended_at, b.ended_at);
}
