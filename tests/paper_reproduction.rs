//! Integration tests asserting the paper's §6 claims hold qualitatively on
//! the full simulated stack (Figures 4 and 5, scaled down for CI speed).

use aqua::core::qos::QosSpec;
use aqua::core::time::Duration;
use aqua::workload::{run_experiment, ExperimentConfig};

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

/// Runs one (deadline, Pc) cell of the paper's experiment with fewer
/// requests than the full figure regenerators use.
fn cell(deadline_ms: u64, pc: f64, seed: u64, requests: u64) -> (f64, f64) {
    let qos = QosSpec::new(ms(deadline_ms), pc).unwrap();
    let mut config = ExperimentConfig::paper(qos, seed);
    for c in &mut config.clients {
        c.num_requests = requests;
        c.think_time = ms(200);
    }
    let report = run_experiment(&config);
    let c = report.client_under_test();
    (c.mean_redundancy(), c.failure_probability)
}

#[test]
fn figure4_redundancy_decreases_with_deadline() {
    let (tight, _) = cell(100, 0.9, 1, 40);
    let (mid, _) = cell(150, 0.9, 1, 40);
    let (loose, _) = cell(200, 0.9, 1, 40);
    assert!(
        tight > mid && mid > loose,
        "Pc=0.9 redundancy must fall with the deadline: {tight} > {mid} > {loose}"
    );
    assert!(
        tight >= 3.5,
        "tight deadlines demand heavy fan-out: {tight}"
    );
    assert!(
        loose < 3.0,
        "loose deadlines need little redundancy: {loose}"
    );
}

#[test]
fn figure4_redundancy_decreases_with_requested_probability() {
    let (strict, _) = cell(120, 0.9, 2, 40);
    let (medium, _) = cell(120, 0.5, 2, 40);
    let (loose, _) = cell(120, 0.0, 2, 40);
    assert!(
        strict > medium && medium >= loose,
        "redundancy must be monotone in Pc: {strict} ≥ {medium} ≥ {loose}"
    );
}

#[test]
fn figure4_pc_zero_selects_the_minimum_two() {
    // "the algorithm chooses only a redundancy level of 2, which is the
    // minimum number of replicas selected by Algorithm 1" — plus the
    // cold-start multicast on the very first request.
    let (mean, _) = cell(200, 0.0, 3, 50);
    let cold_start_share = (7.0 - 2.0) / 50.0;
    assert!(
        (mean - (2.0 + cold_start_share)).abs() < 0.2,
        "Pc=0 mean redundancy ≈ 2 (+cold start): {mean}"
    );
}

#[test]
fn figure5_failure_probability_stays_within_budget() {
    for (pc, budget) in [(0.9, 0.1), (0.5, 0.5), (0.0, 1.0)] {
        for deadline in [110, 150, 190] {
            let (_, failures) = cell(deadline, pc, 4, 40);
            assert!(
                failures <= budget + 0.05,
                "Pc={pc} deadline={deadline}: observed {failures} vs budget {budget}"
            );
        }
    }
}

#[test]
fn figure5_failures_decrease_with_deadline() {
    let (_, tight) = cell(100, 0.0, 5, 50);
    let (_, loose) = cell(200, 0.0, 5, 50);
    assert!(
        tight >= loose,
        "failures cannot increase with a looser deadline: {tight} vs {loose}"
    );
    assert!(
        loose < 0.05,
        "at 200 ms vs N(100, 50) service, failures are rare: {loose}"
    );
}

#[test]
fn background_client_is_unaffected_by_the_sweep() {
    // Client 1 always requests (200 ms, Pc ≥ 0); its outcome should be
    // stable regardless of what client 2 asks for.
    let qos = QosSpec::new(ms(100), 0.9).unwrap();
    let mut config = ExperimentConfig::paper(qos, 6);
    for c in &mut config.clients {
        c.num_requests = 40;
        c.think_time = ms(200);
    }
    let report = run_experiment(&config);
    let background = &report.clients[0];
    assert!(
        background.failure_probability < 0.15,
        "the 200 ms background client rarely fails: {}",
        background.failure_probability
    );
}
