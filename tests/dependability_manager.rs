//! Integration tests for the Proteus-style dependability manager (§2):
//! maintaining the replication level through crashes by activating
//! standbys, end-to-end with a client holding a QoS spec.

use aqua::core::qos::QosSpec;
use aqua::core::time::{Duration, Instant};
use aqua::replica::{CrashPlan, ServiceTimeModel};
use aqua::workload::{
    run_experiment, ClientSpec, ExperimentConfig, ManagerSpec, NetworkSpec, ServerSpec,
};

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

fn managed_config(
    crashes: &[(usize, u64)],
    standbys: usize,
    target: usize,
    seed: u64,
) -> ExperimentConfig {
    let qos = QosSpec::new(ms(250), 0.9).unwrap();
    let mut client = ClientSpec::paper(qos);
    client.num_requests = 60;
    client.think_time = ms(250);
    let server = |crash: CrashPlan| ServerSpec {
        service: ServiceTimeModel::Normal {
            mean: ms(70),
            std_dev: ms(15),
            min: Duration::ZERO,
        },
        crash,
        ..ServerSpec::paper()
    };
    ExperimentConfig {
        seed,
        network: NetworkSpec::paper(),
        servers: (0..target)
            .map(|i| {
                server(
                    crashes
                        .iter()
                        .find(|(idx, _)| *idx == i)
                        .map(|(_, at)| CrashPlan::AtTime(Instant::from_secs(*at)))
                        .unwrap_or(CrashPlan::Never),
                )
            })
            .collect(),
        standby_servers: (0..standbys).map(|_| server(CrashPlan::Never)).collect(),
        manager: Some(ManagerSpec {
            target_replication: target,
            check_interval: ms(200),
            supervision: None,
        }),
        clients: vec![client],
        faults: aqua::workload::FaultPlan::new(),
        max_virtual_time: Duration::from_secs(120),
    }
}

#[test]
fn managed_pool_survives_serial_crashes() {
    // Three replicas, two crash at 4 s and 8 s; two standbys fill in.
    let config = managed_config(&[(0, 4), (1, 8)], 2, 3, 61);
    let report = run_experiment(&config);
    let c = report.client_under_test();
    assert_eq!(c.records.len(), 60);
    assert!(
        c.failure_probability <= 0.1,
        "managed replication holds the spec through serial crashes: {}",
        c.failure_probability
    );
    // The standby replicas were discovered and used: requests late in the
    // run still select ≥2 replicas.
    let tail = &c.records[c.records.len() - 10..];
    assert!(tail.iter().all(|r| r.redundancy >= 2), "{tail:?}");
}

#[test]
fn unmanaged_pool_shrinks_instead() {
    // The same crashes with no manager: the pool drops to 1 replica and
    // Algorithm 1 can only fall back to "all" (= that single replica).
    let mut config = managed_config(&[(0, 4), (1, 8)], 0, 3, 62);
    config.manager = None;
    let report = run_experiment(&config);
    let c = report.client_under_test();
    let tail = &c.records[c.records.len() - 5..];
    assert!(
        tail.iter().all(|r| r.redundancy == 1),
        "only one replica remains without a manager: {tail:?}"
    );
}

#[test]
fn managed_and_unmanaged_are_both_deterministic() {
    let a = run_experiment(&managed_config(&[(0, 4)], 1, 3, 63));
    let b = run_experiment(&managed_config(&[(0, 4)], 1, 3, 63));
    let ra: Vec<_> = a
        .client_under_test()
        .records
        .iter()
        .map(|r| (r.seq, r.timely, r.redundancy))
        .collect();
    let rb: Vec<_> = b
        .client_under_test()
        .records
        .iter()
        .map(|r| (r.seq, r.timely, r.redundancy))
        .collect();
    assert_eq!(ra, rb);
}
