//! Data-driven geo-scale scenarios.
//!
//! A scenario is a JSON file (in the spirit of Elvis's NDL: the experiment
//! is a data file, not a bench binary) describing a WAN topology plus an
//! open-loop fleet workload:
//!
//! ```json
//! {
//!   "name": "smoke_2region",
//!   "seed": 7,
//!   "workers": 2,
//!   "duration_ms": 400,
//!   "topology": {
//!     "regions": ["east", "west"],
//!     "rtt_ms": [[0, 20], [20, 0]],
//!     "jitter": 0.05,
//!     "loss": 0.0
//!   },
//!   "replicas": { "per_region": 2, "service_us": 300 },
//!   "clients": {
//!     "per_region": 4, "rate_per_sec": 100,
//!     "fanout": 1, "request_bytes": 256, "reply_bytes": 512,
//!     "nearest_k": 4
//!   }
//! }
//! ```
//!
//! `topology` either names a built-in dataset (`"dataset":
//! "aws_5region"` / `"aws_10region"`, the geo-SMR paper's inter-region
//! RTT matrices) or spells out `regions` + a symmetric `rtt_ms` matrix.
//! The same scenario builds on the sharded engine (any worker count, same
//! merged history) or the classic sequential engine via
//! [`lan_sim::GeoNetwork`].

use aqua_core::time::{Duration, Instant};
use aqua_faults::FaultSchedule;
use aqua_obs::json::JsonValue;
use lan_sim::topology::RegionSpec;
use lan_sim::{
    GeoNetwork, GeoTopology, LinkFaultHook, LinkOutcome, NodeId, ShardedSimulation, Simulation,
};

use crate::scale::{ScaleClient, ScaleMsg, ScaleReplica};

/// Adapts a [`FaultSchedule`] to the topology's [`LinkFaultHook`] seam:
/// fault specs are interpreted at the *region* level — a spec targeting
/// "replica `i`" applies to region `i`'s links, and network-wide specs
/// apply to every link. Delay spikes stretch deliveries (factors below 1
/// are clamped to 1, honoring the hook contract that delays only grow);
/// drops and one-way partitions become lost messages.
#[derive(Debug, Clone)]
pub struct ScheduleLinkHook {
    schedule: FaultSchedule,
}

impl ScheduleLinkHook {
    /// Wraps a schedule.
    pub fn new(schedule: FaultSchedule) -> Self {
        ScheduleLinkHook { schedule }
    }
}

impl LinkFaultHook for ScheduleLinkHook {
    fn apply(
        &self,
        from_region: usize,
        to_region: usize,
        now: Instant,
        delay: Duration,
    ) -> LinkOutcome {
        let from = Some(aqua_core::qos::ReplicaId::new(from_region as u64));
        let to = Some(aqua_core::qos::ReplicaId::new(to_region as u64));
        if self.schedule.should_drop(from, to, now) {
            return LinkOutcome::Drop;
        }
        let (factor, pad) = self.schedule.delay_mod(from, to, now);
        LinkOutcome::Deliver(delay.mul_f64(factor.max(1.0)).saturating_add(pad))
    }
}

/// A parsed scenario: topology + fleet shape + run length.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (reported in benches and obs).
    pub name: String,
    /// RNG seed.
    pub seed: u64,
    /// Default worker count for [`Scenario::run`]-style entry points.
    pub workers: usize,
    /// Virtual-time run length.
    pub duration: Duration,
    /// The WAN topology.
    pub topology: GeoTopology,
    /// Server replicas per region.
    pub replicas_per_region: usize,
    /// Mean per-request service time.
    pub service: Duration,
    /// Open-loop clients per region.
    pub clients_per_region: usize,
    /// Mean request rate per client, requests/second.
    pub rate_per_sec: f64,
    /// Destinations per request.
    pub fanout: usize,
    /// Request wire size (bytes).
    pub request_bytes: u32,
    /// Reply wire size (bytes).
    pub reply_bytes: u32,
    /// Size of each client's nearest-replica target set.
    pub nearest_k: usize,
}

fn req<'a>(v: &'a JsonValue, key: &str) -> Result<&'a JsonValue, String> {
    v.get(key).ok_or_else(|| format!("missing field `{key}`"))
}

fn opt_u64(v: &JsonValue, key: &str, default: u64) -> u64 {
    v.get(key).and_then(JsonValue::as_u64).unwrap_or(default)
}

fn opt_f64(v: &JsonValue, key: &str, default: f64) -> f64 {
    v.get(key).and_then(JsonValue::as_f64).unwrap_or(default)
}

impl Scenario {
    /// Parses a scenario from JSON text.
    pub fn from_json(text: &str) -> Result<Scenario, String> {
        let root = aqua_obs::parse::parse(text).map_err(|e| format!("scenario JSON: {e:?}"))?;
        let topo_spec = req(&root, "topology")?;
        let mut topology = if let Some(dataset) =
            topo_spec.get("dataset").and_then(JsonValue::as_str)
        {
            GeoTopology::dataset(dataset).ok_or_else(|| format!("unknown dataset `{dataset}`"))?
        } else {
            let names = req(topo_spec, "regions")?
                .as_array()
                .ok_or("`regions` must be an array")?
                .iter()
                .map(|n| {
                    n.as_str()
                        .map(RegionSpec::named)
                        .ok_or("region names must be strings")
                })
                .collect::<Result<Vec<_>, _>>()?;
            let rtt = req(topo_spec, "rtt_ms")?
                .as_array()
                .ok_or("`rtt_ms` must be a matrix")?
                .iter()
                .map(|row| {
                    row.as_array()
                        .ok_or("`rtt_ms` rows must be arrays")?
                        .iter()
                        .map(|x| x.as_f64().ok_or("`rtt_ms` entries must be numbers"))
                        .collect::<Result<Vec<f64>, _>>()
                })
                .collect::<Result<Vec<_>, _>>()?;
            if rtt.len() != names.len() || rtt.iter().any(|r| r.len() != names.len()) {
                return Err("`rtt_ms` must be square with one row per region".into());
            }
            GeoTopology::from_rtt_ms(names, &rtt)
        };
        topology.jitter = opt_f64(topo_spec, "jitter", topology.jitter);
        topology.loss = opt_f64(topo_spec, "loss", topology.loss);

        let replicas = req(&root, "replicas")?;
        let clients = req(&root, "clients")?;
        let fanout = opt_u64(clients, "fanout", 1).max(1) as usize;
        Ok(Scenario {
            name: root
                .get("name")
                .and_then(JsonValue::as_str)
                .unwrap_or("scenario")
                .to_string(),
            seed: opt_u64(&root, "seed", 1),
            workers: opt_u64(&root, "workers", 1).max(1) as usize,
            duration: Duration::from_millis(
                req(&root, "duration_ms")?
                    .as_u64()
                    .ok_or("`duration_ms` must be a number")?,
            ),
            topology,
            replicas_per_region: opt_u64(replicas, "per_region", 1) as usize,
            service: Duration::from_micros(opt_u64(replicas, "service_us", 500)),
            clients_per_region: opt_u64(clients, "per_region", 1) as usize,
            rate_per_sec: opt_f64(clients, "rate_per_sec", 10.0).max(0.001),
            fanout,
            request_bytes: opt_u64(clients, "request_bytes", 256) as u32,
            reply_bytes: opt_u64(clients, "reply_bytes", 512) as u32,
            nearest_k: opt_u64(clients, "nearest_k", 4).max(fanout as u64) as usize,
        })
    }

    /// Total nodes the scenario creates.
    pub fn node_count(&self) -> usize {
        self.topology.region_count() * (self.replicas_per_region + self.clients_per_region)
    }

    fn mean_gap(&self) -> Duration {
        Duration::from_secs_f64(1.0 / self.rate_per_sec)
    }

    /// Per-region nearest-k target lists over the replica fleet.
    ///
    /// Replica node ids are assigned region-major (all of region 0's
    /// replicas first), so targets are derivable from the topology alone —
    /// the same list for every engine and worker count.
    fn targets_by_region(&self, replica_ids: &[NodeId]) -> Vec<Vec<NodeId>> {
        let regions = self.topology.region_count();
        (0..regions)
            .map(|cr| {
                let mut by_distance: Vec<(u64, NodeId)> = replica_ids
                    .iter()
                    .enumerate()
                    .map(|(i, id)| {
                        let rr = i / self.replicas_per_region.max(1);
                        (self.topology.one_way(cr, rr).as_nanos(), *id)
                    })
                    .collect();
                by_distance.sort_by_key(|(d, id)| (*d, id.index()));
                by_distance
                    .into_iter()
                    .take(self.nearest_k.max(1))
                    .map(|(_, id)| id)
                    .collect()
            })
            .collect()
    }

    /// Builds the scenario on the sharded engine with `workers` shards
    /// (node ids and wiring are identical for every worker count).
    pub fn build(&self, workers: usize) -> ShardedSimulation<ScaleMsg> {
        self.build_with_faults(workers, &FaultSchedule::empty())
    }

    /// Builds on the sharded engine with a fault schedule composed into
    /// the topology's link hooks.
    pub fn build_with_faults(
        &self,
        workers: usize,
        faults: &FaultSchedule,
    ) -> ShardedSimulation<ScaleMsg> {
        let mut sim = ShardedSimulation::new(self.seed, workers, self.topology.clone());
        if !faults.is_empty() {
            sim.add_link_hook(Box::new(ScheduleLinkHook::new(faults.clone())));
        }
        let regions = self.topology.region_count();
        let horizon = Instant::EPOCH.saturating_add(self.duration);
        let mut replica_ids = Vec::new();
        for r in 0..regions {
            for _ in 0..self.replicas_per_region {
                replica_ids.push(sim.add_node_in_region(r, ScaleReplica::new(self.service)));
            }
        }
        let targets = self.targets_by_region(&replica_ids);
        for (r, region_targets) in targets.iter().enumerate().take(regions) {
            for _ in 0..self.clients_per_region {
                let id = sim
                    .add_node_in_region(r, ScaleClient::new(self.mean_gap(), self.fanout, horizon));
                let client = sim.node_mut::<ScaleClient>(id).expect("just added");
                client.targets = region_targets.clone();
                client.request_bytes = self.request_bytes;
                client.reply_bytes = self.reply_bytes;
            }
        }
        sim
    }

    /// Builds the same fleet on the classic sequential engine via a
    /// [`GeoNetwork`] adapter (one global RNG, so its history differs from
    /// the sharded engine's — it is the wall-clock baseline, not a
    /// determinism reference).
    pub fn build_classic(&self) -> Simulation<ScaleMsg> {
        let regions = self.topology.region_count();
        let mut network = GeoNetwork::new(self.topology.clone());
        let mut index = 0u32;
        for r in 0..regions {
            for _ in 0..self.replicas_per_region {
                network.assign(NodeId::new(index), r);
                index += 1;
            }
        }
        for r in 0..regions {
            for _ in 0..self.clients_per_region {
                network.assign(NodeId::new(index), r);
                index += 1;
            }
        }
        let mut sim = Simulation::with_network(self.seed, network);
        let horizon = Instant::EPOCH.saturating_add(self.duration);
        let mut replica_ids = Vec::new();
        for _ in 0..regions {
            for _ in 0..self.replicas_per_region {
                replica_ids.push(sim.add_node(ScaleReplica::new(self.service)));
            }
        }
        let targets = self.targets_by_region(&replica_ids);
        for region_targets in targets.iter().take(regions) {
            for _ in 0..self.clients_per_region {
                let id = sim.add_node(ScaleClient::new(self.mean_gap(), self.fanout, horizon));
                let client = sim.node_mut::<ScaleClient>(id).expect("just added");
                client.targets = region_targets.clone();
                client.request_bytes = self.request_bytes;
                client.reply_bytes = self.reply_bytes;
            }
        }
        sim
    }

    /// Builds, runs to the configured duration on `workers` shards, and
    /// summarizes.
    pub fn run(&self, workers: usize) -> ScenarioStats {
        let mut sim = self.build(workers);
        sim.run_until(Instant::EPOCH.saturating_add(self.duration));
        let mut stats = ScenarioStats {
            name: self.name.clone(),
            nodes: self.node_count() as u64,
            workers_requested: workers as u64,
            workers_effective: sim.effective_workers() as u64,
            rounds: sim.rounds(),
            events: sim.events_processed(),
            messages: sim.messages_sent(),
            digest: sim.trace_digest(),
            ..ScenarioStats::default()
        };
        for index in 0..self.node_count() {
            if let Some(c) = sim.node::<ScaleClient>(NodeId::new(index as u32)) {
                stats.requests += c.sent;
                stats.replies += c.received;
                stats.latency_ns_sum += c.total_latency_ns;
                stats.max_latency_ns = stats.max_latency_ns.max(c.max_latency_ns);
            }
        }
        stats
    }
}

/// Summary of one scenario run.
#[derive(Debug, Clone, Default)]
pub struct ScenarioStats {
    /// Scenario name.
    pub name: String,
    /// Total nodes.
    pub nodes: u64,
    /// Workers requested.
    pub workers_requested: u64,
    /// Shards actually used.
    pub workers_effective: u64,
    /// Barrier rounds executed.
    pub rounds: u64,
    /// Events processed.
    pub events: u64,
    /// Messages sent over the simulated network.
    pub messages: u64,
    /// Requests issued by clients.
    pub requests: u64,
    /// First replies received.
    pub replies: u64,
    /// Sum of first-reply latencies (ns).
    pub latency_ns_sum: u64,
    /// Worst first-reply latency (ns).
    pub max_latency_ns: u64,
    /// Partition-invariant history digest.
    pub digest: u64,
}

impl ScenarioStats {
    /// Mean first-reply latency in milliseconds.
    pub fn mean_latency_ms(&self) -> f64 {
        if self.replies == 0 {
            0.0
        } else {
            self.latency_ns_sum as f64 / self.replies as f64 / 1e6
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMOKE: &str = include_str!("../../../examples/scenarios/smoke_2region.json");

    #[test]
    fn parses_committed_smoke_scenario() {
        let s = Scenario::from_json(SMOKE).expect("committed scenario parses");
        assert_eq!(s.name, "smoke_2region");
        assert_eq!(s.topology.region_count(), 2);
        assert_eq!(s.node_count(), (2 + 4) * 2);
        assert_eq!(s.workers, 2);
    }

    #[test]
    fn smoke_scenario_runs_and_is_worker_invariant() {
        let s = Scenario::from_json(SMOKE).expect("parses");
        let one = s.run(1);
        let par = s.run(s.workers);
        assert!(one.requests > 0, "clients issued work");
        assert!(one.replies > 0, "replicas answered");
        assert_eq!(one.digest, par.digest, "histories identical across W");
        assert_eq!(one.events, par.events);
        assert_eq!(one.replies, par.replies);
        // Nearest-k mixes local (150 µs) and remote (10 ms) targets, so
        // the mean sits above the local floor and the worst request paid
        // at least one inter-region round trip.
        assert!(one.mean_latency_ms() > 0.1, "{}", one.mean_latency_ms());
        assert!(one.max_latency_ns >= 20_000_000, "{}", one.max_latency_ns);
    }

    #[test]
    fn dataset_scenarios_parse() {
        let s = Scenario::from_json(
            r#"{"duration_ms": 100,
                "topology": {"dataset": "aws_5region"},
                "replicas": {"per_region": 1, "service_us": 100},
                "clients": {"per_region": 1, "rate_per_sec": 50}}"#,
        )
        .expect("dataset scenario parses");
        assert_eq!(s.topology.region_count(), 5);
        assert_eq!(s.nearest_k, 4);
    }

    #[test]
    fn classic_engine_runs_the_same_scenario() {
        let s = Scenario::from_json(SMOKE).expect("parses");
        let mut sim = s.build_classic();
        sim.run_until(Instant::EPOCH.saturating_add(s.duration));
        assert!(sim.messages_sent() > 0);
    }

    #[test]
    fn fault_hook_drops_and_delays_only_increase() {
        use aqua_core::time::Duration;
        let schedule = crate::FaultPlan::new().instantiate(3);
        let hook = ScheduleLinkHook::new(schedule);
        match hook.apply(0, 1, Instant::EPOCH, Duration::from_millis(5)) {
            LinkOutcome::Deliver(d) => assert!(d >= Duration::from_millis(5)),
            LinkOutcome::Drop => panic!("empty schedule must not drop"),
        }
    }
}
