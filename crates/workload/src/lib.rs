//! # aqua-workload — workloads and the experiment harness
//!
//! Declarative experiment configurations ([`ExperimentConfig`]), a
//! deterministic runner ([`run_experiment`]) over the full simulated stack
//! (coordinator + server gateways + client gateways on a LAN model), and
//! report/figure formatting for the regeneration binaries.
//!
//! [`ExperimentConfig::paper`] encodes the paper's §6 setup: seven replicas
//! with Normal(100 ms, σ50 ms) synthetic service load, two closed-loop
//! clients with 1 s think time and 50 requests each, client 1 pinned at a
//! (200 ms, Pc ≥ 0) spec and client 2 sweeping the deadline/probability
//! under test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod experiment;
mod report;
pub mod scale;
pub mod scenario;
mod summary;

pub use aqua_faults::{FaultKind, FaultPlan};
pub use config::{
    ClientSpec, ExperimentConfig, ManagerSpec, NetworkSpec, ServerSpec, StrategySpec,
};
pub use experiment::{run_experiment, run_experiment_observed, ClientReport, ExperimentReport};
pub use report::{Figure, Series};
pub use scale::{ScaleClient, ScaleMsg, ScaleReplica};
pub use scenario::{Scenario, ScenarioStats, ScheduleLinkHook};
pub use summary::LatencySummary;

/// Averages the y-values of several same-grid series into one.
///
/// Used to average experiment curves over multiple seeds.
///
/// # Panics
///
/// Panics if the series do not share the same x grid or `runs` is empty.
pub fn average_series(label: impl Into<String>, runs: &[Series]) -> Series {
    assert!(!runs.is_empty(), "need at least one run to average");
    let grid: Vec<f64> = runs[0].points.iter().map(|(x, _)| *x).collect();
    let mut out = Series::new(label);
    for (i, x) in grid.iter().enumerate() {
        let mut sum = 0.0;
        for run in runs {
            assert!(
                (run.points[i].0 - x).abs() < 1e-9,
                "averaged series must share the x grid"
            );
            sum += run.points[i].1;
        }
        out.push(*x, sum / runs.len() as f64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_series_averages() {
        let mut a = Series::new("s1");
        let mut b = Series::new("s2");
        for x in 0..3 {
            a.push(x as f64, 1.0);
            b.push(x as f64, 3.0);
        }
        let avg = average_series("avg", &[a, b]);
        assert_eq!(avg.points, vec![(0.0, 2.0), (1.0, 2.0), (2.0, 2.0)]);
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn average_of_nothing_panics() {
        let _ = average_series("avg", &[]);
    }
}
