//! Fleet-scale open-loop workload for geo scenarios.
//!
//! The paper's harness runs a handful of closed-loop clients against seven
//! replicas; the scenario engine needs the opposite shape — thousands of
//! open-loop clients spraying requests at hundreds of replicas across a
//! WAN topology. [`ScaleClient`] and [`ScaleReplica`] are deliberately
//! tiny actor implementations of that shape: clients fire requests at a
//! configured rate with randomized inter-arrivals (drawn from each node's
//! own deterministic RNG stream, so the sharded engine stays
//! worker-count-invariant), replicas serve them through a single-server
//! busy queue and reply. They run unchanged on [`lan_sim::Simulation`] and
//! [`lan_sim::ShardedSimulation`].

use std::collections::VecDeque;

use aqua_core::time::{Duration, Instant};
use lan_sim::{Context, Event, Node, NodeId, Payload};
use rand::Rng;

/// Messages of the scale workload.
#[derive(Debug, Clone)]
pub enum ScaleMsg {
    /// A client request.
    Request {
        /// Issuing client (reply address).
        client: NodeId,
        /// Client-local request number.
        seq: u64,
        /// Request wire size (bytes).
        size: u32,
        /// Wire size the reply should have (bytes).
        reply_size: u32,
    },
    /// A replica's reply.
    Reply {
        /// Echoed request number.
        seq: u64,
        /// Reply wire size (bytes).
        size: u32,
    },
}

impl Payload for ScaleMsg {
    fn wire_size(&self) -> usize {
        match self {
            ScaleMsg::Request { size, .. } | ScaleMsg::Reply { size, .. } => *size as usize,
        }
    }
}

/// An open-loop client: issues requests with randomized inter-arrival
/// times around a configured rate, to targets drawn from its nearest-k
/// replica list, and records latency statistics for replies.
pub struct ScaleClient {
    /// Nearest-k replica targets, precomputed by the scenario builder.
    pub targets: Vec<NodeId>,
    /// Mean inter-arrival gap.
    pub mean_gap: Duration,
    /// Destinations per request (multicast width).
    pub fanout: usize,
    /// Request wire size.
    pub request_bytes: u32,
    /// Requested reply wire size.
    pub reply_bytes: u32,
    /// Stop issuing new requests at this instant (replies still counted).
    pub issue_until: Instant,
    next_seq: u64,
    inflight: VecDeque<(u64, Instant)>,
    /// Requests issued.
    pub sent: u64,
    /// Replies received (first reply per request).
    pub received: u64,
    /// Sum of first-reply latencies, nanoseconds.
    pub total_latency_ns: u64,
    /// Worst first-reply latency, nanoseconds.
    pub max_latency_ns: u64,
}

impl ScaleClient {
    /// A client with no targets yet (the builder wires them afterwards).
    pub fn new(mean_gap: Duration, fanout: usize, issue_until: Instant) -> Self {
        ScaleClient {
            targets: Vec::new(),
            mean_gap,
            fanout: fanout.max(1),
            request_bytes: 256,
            reply_bytes: 512,
            issue_until,
            next_seq: 0,
            inflight: VecDeque::new(),
            sent: 0,
            received: 0,
            total_latency_ns: 0,
            max_latency_ns: 0,
        }
    }

    /// Mean first-reply latency over the run, if any reply arrived.
    pub fn mean_latency(&self) -> Option<Duration> {
        self.total_latency_ns
            .checked_div(self.received)
            .map(Duration::from_nanos)
    }

    fn arm_next(&self, ctx: &mut Context<'_, ScaleMsg>) {
        // Exponential-ish inter-arrival: -ln(U) × mean, clamped away from
        // zero so pathological draws cannot collapse into one instant.
        let u: f64 = ctx.rng().gen_range(0.000_1..1.0f64);
        let gap = self.mean_gap.mul_f64((-u.ln()).max(0.01));
        ctx.set_timer(gap);
    }
}

impl Node<ScaleMsg> for ScaleClient {
    fn on_event(&mut self, event: Event<ScaleMsg>, ctx: &mut Context<'_, ScaleMsg>) {
        match event {
            Event::Started => {
                if !self.targets.is_empty() {
                    self.arm_next(ctx);
                }
            }
            Event::Timer { .. } => {
                if ctx.now() >= self.issue_until || self.targets.is_empty() {
                    return;
                }
                let seq = self.next_seq;
                self.next_seq += 1;
                let pick = ctx.rng().gen_range(0..self.targets.len());
                let fanout = self.fanout.min(self.targets.len());
                let request = ScaleMsg::Request {
                    client: ctx.self_id(),
                    seq,
                    size: self.request_bytes,
                    reply_size: self.reply_bytes,
                };
                for i in 0..fanout {
                    let to = self.targets[(pick + i) % self.targets.len()];
                    ctx.send(to, request.clone());
                }
                self.inflight.push_back((seq, ctx.now()));
                self.sent += 1;
                self.arm_next(ctx);
            }
            Event::Message { payload, .. } => {
                if let ScaleMsg::Reply { seq, .. } = payload {
                    if let Some(pos) = self.inflight.iter().position(|(s, _)| *s == seq) {
                        let (_, sent_at) = self.inflight.remove(pos).expect("position valid");
                        let latency = ctx.now().saturating_duration_since(sent_at).as_nanos();
                        self.received += 1;
                        self.total_latency_ns += latency;
                        self.max_latency_ns = self.max_latency_ns.max(latency);
                    }
                }
            }
        }
    }
}

/// A replica serving requests through a single-server busy queue: each
/// request completes at `max(busy_until, now) + service`, where the
/// per-request service time is the configured mean with ±20% uniform
/// spread from the replica's own RNG stream.
pub struct ScaleReplica {
    /// Mean service time per request.
    pub service: Duration,
    busy_until: Instant,
    pending: VecDeque<(NodeId, u64, u32)>,
    /// Requests served.
    pub served: u64,
}

impl ScaleReplica {
    /// A replica with the given mean service time.
    pub fn new(service: Duration) -> Self {
        ScaleReplica {
            service,
            busy_until: Instant::EPOCH,
            pending: VecDeque::new(),
            served: 0,
        }
    }
}

impl Node<ScaleMsg> for ScaleReplica {
    fn on_event(&mut self, event: Event<ScaleMsg>, ctx: &mut Context<'_, ScaleMsg>) {
        match event {
            Event::Started => {}
            Event::Message { payload, .. } => {
                if let ScaleMsg::Request {
                    client,
                    seq,
                    reply_size,
                    ..
                } = payload
                {
                    let spread = ctx.rng().gen_range(0.8..=1.2f64);
                    let service = self.service.mul_f64(spread);
                    let start = self.busy_until.max(ctx.now());
                    let done = start.saturating_add(service);
                    self.busy_until = done;
                    self.pending.push_back((client, seq, reply_size));
                    ctx.set_timer(done.saturating_duration_since(ctx.now()));
                }
            }
            Event::Timer { .. } => {
                // Completions are armed in arrival order and complete in
                // arrival order (the busy queue is FIFO), so the front of
                // the pending queue is the finished request.
                if let Some((client, seq, size)) = self.pending.pop_front() {
                    self.served += 1;
                    ctx.send(client, ScaleMsg::Reply { seq, size });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lan_sim::topology::RegionSpec;
    use lan_sim::{GeoTopology, ShardedSimulation};

    fn topo() -> GeoTopology {
        let mut t = GeoTopology::from_rtt_ms(
            vec![RegionSpec::named("a"), RegionSpec::named("b")],
            &[vec![0.0, 10.0], vec![10.0, 0.0]],
        );
        t.jitter = 0.05;
        t
    }

    #[test]
    fn open_loop_roundtrips_complete() {
        let horizon = Instant::from_millis(500);
        let mut sim = ShardedSimulation::<ScaleMsg>::new(3, 2, topo());
        let replica = sim.add_node_in_region(0, ScaleReplica::new(Duration::from_micros(200)));
        let client =
            sim.add_node_in_region(1, ScaleClient::new(Duration::from_millis(10), 1, horizon));
        sim.node_mut::<ScaleClient>(client).unwrap().targets = vec![replica];
        sim.run_until(Instant::from_millis(600));
        let c = sim.node::<ScaleClient>(client).unwrap();
        assert!(c.sent > 10, "open loop kept issuing: {}", c.sent);
        assert_eq!(c.received, c.sent, "every request got a reply");
        let mean = c.mean_latency().unwrap();
        assert!(
            mean >= Duration::from_millis(10),
            "latency at least one RTT: {mean:?}"
        );
        let r = sim.node::<ScaleReplica>(replica).unwrap();
        assert_eq!(r.served, c.sent);
    }

    #[test]
    fn scale_workload_invariant_across_workers() {
        fn run(workers: usize) -> (u64, u64, u64) {
            let horizon = Instant::from_millis(300);
            let mut sim = ShardedSimulation::<ScaleMsg>::new(11, workers, topo());
            let mut replicas = Vec::new();
            for r in 0..2 {
                replicas
                    .push(sim.add_node_in_region(r, ScaleReplica::new(Duration::from_micros(300))));
            }
            for r in 0..2 {
                for _ in 0..3 {
                    let id = sim.add_node_in_region(
                        r,
                        ScaleClient::new(Duration::from_millis(7), 1, horizon),
                    );
                    sim.node_mut::<ScaleClient>(id).unwrap().targets = replicas.clone();
                }
            }
            sim.run_until(Instant::from_millis(400));
            (
                sim.trace_digest(),
                sim.events_processed(),
                sim.messages_sent(),
            )
        }
        assert_eq!(run(1), run(2));
    }
}
