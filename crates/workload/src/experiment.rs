//! Building, running, and summarizing experiments.

use aqua_core::qos::ReplicaId;
use aqua_core::time::{Duration, Instant};
use aqua_faults::FaultSchedule;
use aqua_gateway::{
    AquaMsg, ClientConfig, ClientGateway, HandlerStats, RequestRecord, ServerConfig, ServerGateway,
    Wire,
};
use aqua_group::{FailureDetectorConfig, GroupCoordinator};
use lan_sim::{NodeId, Simulation};

use crate::config::ExperimentConfig;

/// Summary of one client's run.
#[derive(Debug, Clone)]
pub struct ClientReport {
    /// Which client (index into the config).
    pub index: usize,
    /// The strategy name it ran.
    pub strategy: &'static str,
    /// Per-request records in issue order.
    pub records: Vec<RequestRecord>,
    /// Handler counters.
    pub stats: HandlerStats,
    /// Observed timing-failure probability over the run.
    pub failure_probability: f64,
    /// QoS callbacks issued.
    pub callbacks: u64,
}

impl ClientReport {
    /// Mean redundancy over all requests (cold-start multicast included,
    /// matching how the paper averages over a run of fifty requests).
    pub fn mean_redundancy(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(|r| r.redundancy).sum::<usize>() as f64 / self.records.len() as f64
    }

    /// Mean redundancy excluding the cold-start (first) request.
    pub fn mean_redundancy_warm(&self) -> f64 {
        if self.records.len() < 2 {
            return self.mean_redundancy();
        }
        let warm = &self.records[1..];
        warm.iter().map(|r| r.redundancy).sum::<usize>() as f64 / warm.len() as f64
    }

    /// The `q`-quantile of observed response times (answered requests
    /// only); `None` when nothing was answered.
    pub fn latency_quantile(&self, q: f64) -> Option<Duration> {
        let mut latencies: Vec<Duration> = self
            .records
            .iter()
            .filter_map(|r| r.response_time)
            .collect();
        if latencies.is_empty() {
            return None;
        }
        latencies.sort_unstable();
        let idx = ((latencies.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        Some(latencies[idx])
    }

    /// Mean observed response time (answered requests only).
    pub fn mean_latency(&self) -> Option<Duration> {
        let latencies: Vec<Duration> = self
            .records
            .iter()
            .filter_map(|r| r.response_time)
            .collect();
        if latencies.is_empty() {
            return None;
        }
        let total: Duration = latencies.iter().copied().sum();
        Some(total / latencies.len() as u64)
    }
}

/// The outcome of one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Per-client summaries, in config order.
    pub clients: Vec<ClientReport>,
    /// Virtual time when the run ended.
    pub ended_at: Instant,
    /// Total messages sent over the simulated network.
    pub messages: u64,
    /// Total simulation events processed.
    pub events: u64,
}

impl ExperimentReport {
    /// The report of the *last* configured client — the "second client"
    /// under test in the paper's setup.
    pub fn client_under_test(&self) -> &ClientReport {
        self.clients.last().expect("at least one client configured")
    }
}

/// Builds and runs an experiment to completion (all clients finished or the
/// virtual-time budget exhausted).
///
/// # Examples
///
/// ```
/// use aqua_workload::{run_experiment, ExperimentConfig};
/// use aqua_core::qos::QosSpec;
/// use aqua_core::time::Duration;
///
/// # fn main() -> Result<(), aqua_core::qos::QosError> {
/// let qos = QosSpec::new(Duration::from_millis(160), 0.9)?;
/// let mut config = ExperimentConfig::paper(qos, 1);
/// // Keep the doctest quick: 5 requests per client.
/// for c in &mut config.clients {
///     c.num_requests = 5;
/// }
/// let report = run_experiment(&config);
/// assert_eq!(report.client_under_test().records.len(), 5);
/// # Ok(())
/// # }
/// ```
pub fn run_experiment(config: &ExperimentConfig) -> ExperimentReport {
    run_experiment_observed(config, None)
}

/// [`run_experiment`] with optional observability: when `obs` is given,
/// every client gateway records its handler metrics and request spans into
/// it (labelled by client index), and at the end of the run the simulator's
/// communication counters and trace ring are bridged in via
/// [`Simulation::export_obs`].
pub fn run_experiment_observed(
    config: &ExperimentConfig,
    obs: Option<&aqua_obs::Obs>,
) -> ExperimentReport {
    let schedule = config.faults.instantiate(config.seed);
    let mut sim: Simulation<Wire> = {
        let network = config.network.build();
        // Simulation::with_network takes the model by value; box-dyn via a
        // small adapter below. Network-scoped faults (delay spikes, drops,
        // partitions) wrap the model; replica-scoped faults are applied by
        // each server gateway from its own copy of the schedule.
        let faulty = FaultyNetwork {
            inner: BoxedNetwork(network),
            schedule: schedule.clone(),
            replica_nodes: config.servers.len() + config.standby_servers.len(),
        };
        Simulation::with_network(config.seed, faulty)
    };
    if obs.is_some() {
        sim.enable_trace(4096);
    }

    let coordinator = sim.add_node(GroupCoordinator::<AquaMsg>::new(
        FailureDetectorConfig::default(),
    ));

    let server_config =
        |i: usize, server: &crate::config::ServerSpec, standby: bool| ServerConfig {
            replica: ReplicaId::new(i as u64),
            coordinator,
            group: FailureDetectorConfig::default(),
            service: server.service.clone(),
            method_services: server.method_services.clone(),
            load: server.load.clone(),
            crash: server.crash,
            recover_after: server.recover_after,
            standby,
            reply_size: 8,
            faults: (!schedule.is_empty()).then(|| schedule.clone()),
        };
    for (i, server) in config.servers.iter().enumerate() {
        let cfg = server_config(i, server, false);
        sim.add_node(ServerGateway::new(cfg));
    }
    let mut standby_nodes = Vec::new();
    for (i, server) in config.standby_servers.iter().enumerate() {
        let cfg = server_config(config.servers.len() + i, server, true);
        standby_nodes.push(sim.add_node(ServerGateway::new(cfg)));
    }
    let mut manager_node = None;
    if let Some(manager) = &config.manager {
        let mut node = aqua_gateway::DependabilityManager::new(aqua_gateway::ManagerConfig {
            coordinator,
            group: FailureDetectorConfig::default(),
            target_replication: manager.target_replication,
            standbys: standby_nodes,
            check_interval: manager.check_interval,
            startup_grace: Duration::from_secs(1),
            supervision: manager.supervision,
        });
        if let Some(obs) = obs {
            node = node.with_obs(obs);
        }
        manager_node = Some(sim.add_node(node));
    }

    let mut client_nodes: Vec<NodeId> = Vec::new();
    for (i, client) in config.clients.iter().enumerate() {
        let cfg = ClientConfig {
            coordinator,
            group: FailureDetectorConfig::default(),
            qos: client.qos,
            window: client.window,
            arrivals: client.arrivals,
            think_time: client.think_time,
            num_requests: Some(client.num_requests),
            start_after: client.start_after,
            request_size: 16,
            give_up_after: Duration::from_secs(5),
            methods: client.methods.clone(),
            probe_stale_after: client.probe_stale_after,
            renegotiate_to: client.renegotiate_to,
            retry_after: client.retry_after,
            // Clients report to (and take directives from) the manager
            // only when it actually supervises.
            manager: manager_node
                .filter(|_| config.manager.is_some_and(|m| m.supervision.is_some())),
            calibration: client.calibration,
        };
        let strategy = client.strategy.build(config.seed.wrapping_add(i as u64));
        let mut gateway = ClientGateway::new(cfg, strategy);
        if let Some(obs) = obs {
            gateway = gateway.with_obs(obs, i as u64);
            if !schedule.is_empty() {
                // Spans carry the stable ids of overlapping fault windows,
                // matching the `fault` events journalled at the end of the
                // run — the forensics analyzer joins on them.
                gateway = gateway.with_fault_windows(schedule.windows());
            }
        }
        client_nodes.push(sim.add_node(gateway));
    }

    // Run in slices until every client reports finished (or time is up).
    let deadline = Instant::EPOCH + config.max_virtual_time;
    loop {
        let slice_end = (sim.now() + Duration::from_secs(1)).min(deadline);
        sim.run_until(slice_end);
        let all_done = client_nodes.iter().all(|n| {
            sim.node::<ClientGateway>(*n)
                .is_some_and(|c| c.is_finished())
        });
        if all_done || sim.now() >= deadline {
            break;
        }
    }
    // Let in-flight replies land so records are complete.
    sim.run_until(sim.now() + Duration::from_secs(8));

    if let Some(obs) = obs {
        for node in &client_nodes {
            if let Some(gw) = sim.node_mut::<ClientGateway>(*node) {
                gw.finish_observability();
            }
        }
        sim.export_obs(obs);
        // The schedule is a pure function of time, so the whole fault
        // timeline up to the end of the run can be journalled in one pass.
        aqua_faults::emit_fault_events(obs, &schedule, sim.now());
    }

    let clients = client_nodes
        .iter()
        .enumerate()
        .map(|(index, node)| {
            let gw = sim
                .node::<ClientGateway>(*node)
                .expect("client node exists");
            let handler = gw.handler().expect("client started");
            let records = gw.records().to_vec();
            let failures = records.iter().filter(|r| !r.timely).count();
            let failure_probability = if records.is_empty() {
                0.0
            } else {
                failures as f64 / records.len() as f64
            };
            ClientReport {
                index,
                strategy: handler.strategy_name(),
                stats: handler.stats(),
                callbacks: handler.stats().callbacks,
                failure_probability,
                records,
            }
        })
        .collect();

    ExperimentReport {
        clients,
        ended_at: sim.now(),
        messages: sim.messages_sent(),
        events: sim.events_processed(),
    }
}

/// Adapter: a boxed network model as a `NetworkModel`.
struct BoxedNetwork(Box<dyn lan_sim::NetworkModel>);

impl lan_sim::NetworkModel for BoxedNetwork {
    fn delay(
        &mut self,
        from: NodeId,
        to: NodeId,
        size: usize,
        fanout: usize,
        now: Instant,
        rng: &mut rand::rngs::SmallRng,
    ) -> Duration {
        self.0.delay(from, to, size, fanout, now, rng)
    }
}

/// A delay that outlives any experiment's virtual-time budget: how the
/// simulator realizes a dropped or partitioned-away message, since the
/// network contract is "every message eventually arrives".
const DROPPED: Duration = Duration::from_secs(86_400);

/// Network model wrapper applying the fault schedule's network-scoped
/// faults: delay spikes scale and pad the base delay, and drop/one-way
/// partition faults turn the message into a [`DROPPED`] straggler.
struct FaultyNetwork {
    inner: BoxedNetwork,
    schedule: FaultSchedule,
    /// Number of replica-hosting nodes. Node 0 is the group coordinator and
    /// nodes `1..=replica_nodes` host replica `node - 1` (servers then
    /// standbys, in [`run_experiment`]'s add order); later nodes are clients.
    replica_nodes: usize,
}

impl FaultyNetwork {
    fn replica_of(&self, node: NodeId) -> Option<ReplicaId> {
        let idx = node.index() as usize;
        (1..=self.replica_nodes)
            .contains(&idx)
            .then(|| ReplicaId::new(idx as u64 - 1))
    }
}

impl lan_sim::NetworkModel for FaultyNetwork {
    fn delay(
        &mut self,
        from: NodeId,
        to: NodeId,
        size: usize,
        fanout: usize,
        now: Instant,
        rng: &mut rand::rngs::SmallRng,
    ) -> Duration {
        let base = self.inner.delay(from, to, size, fanout, now, rng);
        if self.schedule.is_empty() {
            return base;
        }
        let (from, to) = (self.replica_of(from), self.replica_of(to));
        if self.schedule.should_drop(from, to, now) {
            return DROPPED;
        }
        let (factor, pad) = self.schedule.delay_mod(from, to, now);
        base.mul_f64(factor).saturating_add(pad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClientSpec, ServerSpec, StrategySpec};
    use aqua_core::qos::QosSpec;
    use aqua_replica::ServiceTimeModel;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn quick_config(qos: QosSpec, n_servers: usize, requests: u64, seed: u64) -> ExperimentConfig {
        let mut client = ClientSpec::paper(qos);
        client.num_requests = requests;
        client.think_time = ms(100);
        ExperimentConfig {
            seed,
            network: crate::config::NetworkSpec::paper(),
            servers: (0..n_servers)
                .map(|_| ServerSpec {
                    service: ServiceTimeModel::Deterministic(ms(40)),
                    ..ServerSpec::paper()
                })
                .collect(),
            standby_servers: Vec::new(),
            manager: None,
            clients: vec![client],
            faults: aqua_faults::FaultPlan::new(),
            max_virtual_time: Duration::from_secs(120),
        }
    }

    #[test]
    fn experiment_runs_to_completion() {
        let qos = QosSpec::new(ms(200), 0.9).unwrap();
        let report = run_experiment(&quick_config(qos, 3, 10, 5));
        let client = report.client_under_test();
        assert_eq!(client.records.len(), 10);
        assert_eq!(client.failure_probability, 0.0);
        assert_eq!(client.strategy, "model-based");
        assert!(report.messages > 0);
    }

    #[test]
    fn reports_compute_redundancy_and_latency() {
        let qos = QosSpec::new(ms(200), 0.0).unwrap();
        let report = run_experiment(&quick_config(qos, 4, 10, 9));
        let client = report.client_under_test();
        // Cold start (4) then 2 each: mean in (2, 4].
        assert!(client.mean_redundancy() > 2.0);
        assert!((client.mean_redundancy_warm() - 2.0).abs() < 1e-9);
        let p50 = client.latency_quantile(0.5).unwrap();
        assert!(p50 >= ms(40) && p50 < ms(80), "p50 = {p50}");
        assert!(client.mean_latency().unwrap() >= ms(40));
    }

    #[test]
    fn different_strategies_are_wired_through() {
        let qos = QosSpec::new(ms(200), 0.5).unwrap();
        let mut config = quick_config(qos, 3, 5, 2);
        config.clients[0].strategy = StrategySpec::RoundRobin { k: 1 };
        let report = run_experiment(&config);
        assert_eq!(report.client_under_test().strategy, "round-robin");
        assert!(
            (report.client_under_test().mean_redundancy() - 1.0).abs() < 1e-9,
            "round-robin k=1 always selects one replica"
        );
    }

    #[test]
    fn deterministic_reports_per_seed() {
        let qos = QosSpec::new(ms(150), 0.9).unwrap();
        let a = run_experiment(&quick_config(qos, 3, 8, 77));
        let b = run_experiment(&quick_config(qos, 3, 8, 77));
        let ra: Vec<_> = a
            .client_under_test()
            .records
            .iter()
            .map(|r| (r.seq, r.timely, r.response_time))
            .collect();
        let rb: Vec<_> = b
            .client_under_test()
            .records
            .iter()
            .map(|r| (r.seq, r.timely, r.response_time))
            .collect();
        assert_eq!(ra, rb);
    }
}
