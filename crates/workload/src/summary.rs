//! Latency summaries: exact percentiles plus running moments.
//!
//! Experiment scales here are small (10²–10⁵ samples), so the summary
//! stores every sample for exact quantiles and keeps Welford-style running
//! moments for mean/variance without a second pass.

use aqua_core::time::Duration;

/// An accumulating summary of duration samples.
///
/// # Examples
///
/// ```
/// use aqua_workload::LatencySummary;
/// use aqua_core::time::Duration;
///
/// let mut s = LatencySummary::new();
/// for v in [10u64, 20, 30, 40] {
///     s.push(Duration::from_millis(v));
/// }
/// assert_eq!(s.count(), 4);
/// assert_eq!(s.mean(), Some(Duration::from_millis(25)));
/// assert_eq!(s.quantile(0.5), Some(Duration::from_millis(30)), "nearest rank rounds up");
/// assert_eq!(s.max(), Some(Duration::from_millis(40)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct LatencySummary {
    samples: Vec<Duration>,
    sorted: bool,
    mean_ns: f64,
    m2: f64,
}

impl LatencySummary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        LatencySummary {
            samples: Vec::new(),
            sorted: true,
            mean_ns: 0.0,
            m2: 0.0,
        }
    }

    /// Records one sample.
    pub fn push(&mut self, sample: Duration) {
        // Welford's online update.
        let x = sample.as_nanos() as f64;
        let n = self.samples.len() as f64 + 1.0;
        let delta = x - self.mean_ns;
        self.mean_ns += delta / n;
        self.m2 += delta * (x - self.mean_ns);
        if let Some(last) = self.samples.last() {
            if sample < *last {
                self.sorted = false;
            }
        }
        self.samples.push(sample);
    }

    /// Records every sample of an iterator.
    pub fn extend<I: IntoIterator<Item = Duration>>(&mut self, iter: I) {
        for s in iter {
            self.push(s);
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean of the samples.
    pub fn mean(&self) -> Option<Duration> {
        if self.samples.is_empty() {
            None
        } else {
            Some(Duration::from_nanos(self.mean_ns.round() as u64))
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        let var = self.m2 / self.samples.len() as f64;
        Some(Duration::from_nanos(var.sqrt().round() as u64))
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<Duration> {
        self.samples.iter().min().copied()
    }

    /// Largest sample.
    pub fn max(&self) -> Option<Duration> {
        self.samples.iter().max().copied()
    }

    /// Exact `q`-quantile (nearest-rank on the sorted samples).
    pub fn quantile(&mut self, q: f64) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        let idx = ((self.samples.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        Some(self.samples[idx])
    }

    /// Fraction of samples at or below `threshold` — e.g. the observed
    /// probability of meeting a deadline.
    pub fn fraction_within(&self, threshold: Duration) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().filter(|s| **s <= threshold).count() as f64 / self.samples.len() as f64
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &LatencySummary) {
        for s in &other.samples {
            self.push(*s);
        }
    }

    /// One-line human-readable rendering.
    pub fn describe(&mut self) -> String {
        if self.is_empty() {
            return "no samples".to_string();
        }
        let mean = self.mean().expect("non-empty");
        let p50 = self.quantile(0.5).expect("non-empty");
        let p99 = self.quantile(0.99).expect("non-empty");
        let max = self.max().expect("non-empty");
        format!(
            "n={} mean={mean} p50={p50} p99={p99} max={max}",
            self.count()
        )
    }
}

impl FromIterator<Duration> for LatencySummary {
    fn from_iter<I: IntoIterator<Item = Duration>>(iter: I) -> Self {
        let mut s = LatencySummary::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn empty_summary_yields_none() {
        let mut s = LatencySummary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), None);
        assert_eq!(s.std_dev(), None);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.fraction_within(ms(1)), 0.0);
        assert_eq!(s.describe(), "no samples");
    }

    #[test]
    fn moments_match_direct_computation() {
        let mut s = LatencySummary::new();
        s.extend([ms(10), ms(20), ms(30), ms(40)]);
        assert_eq!(s.mean(), Some(ms(25)));
        // Population std dev of {10,20,30,40} (ms) = √125 ≈ 11.18.
        let sd = s.std_dev().unwrap().as_millis_f64();
        assert!((sd - 125f64.sqrt()).abs() < 0.01, "{sd}");
        assert_eq!(s.min(), Some(ms(10)));
        assert_eq!(s.max(), Some(ms(40)));
    }

    #[test]
    fn quantiles_are_exact_nearest_rank() {
        let mut s: LatencySummary = (1..=100).map(ms).collect();
        assert_eq!(s.quantile(0.0), Some(ms(1)));
        assert_eq!(s.quantile(0.5), Some(ms(51)));
        assert_eq!(s.quantile(0.99), Some(ms(99)));
        assert_eq!(s.quantile(1.0), Some(ms(100)));
    }

    #[test]
    fn unsorted_input_is_handled() {
        let mut s = LatencySummary::new();
        s.extend([ms(30), ms(10), ms(20)]);
        assert_eq!(s.quantile(0.5), Some(ms(20)));
        // Pushing after sorting keeps correctness.
        s.push(ms(5));
        assert_eq!(s.quantile(0.0), Some(ms(5)));
    }

    #[test]
    fn fraction_within_counts_inclusive() {
        let s: LatencySummary = [ms(10), ms(20), ms(30)].into_iter().collect();
        assert_eq!(s.fraction_within(ms(20)), 2.0 / 3.0);
        assert_eq!(s.fraction_within(ms(9)), 0.0);
        assert_eq!(s.fraction_within(ms(100)), 1.0);
    }

    #[test]
    fn merge_combines_everything() {
        let mut a: LatencySummary = [ms(10), ms(20)].into_iter().collect();
        let b: LatencySummary = [ms(30), ms(40)].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.mean(), Some(ms(25)));
    }

    #[test]
    fn describe_mentions_count() {
        let mut s: LatencySummary = [ms(10)].into_iter().collect();
        let d = s.describe();
        assert!(d.contains("n=1"), "{d}");
        assert!(d.contains("mean=10ms"), "{d}");
    }
}
