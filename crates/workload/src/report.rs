//! Table/series formatting for the experiment binaries.
//!
//! The figure regenerators print both a human-readable markdown table and a
//! machine-readable CSV block, so results can be pasted into
//! EXPERIMENTS.md and re-plotted.

use std::fmt::Write as _;

/// A labelled series of `(x, y)` points — one curve of a figure.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Series {
    /// Curve label (e.g. "Pc = 0.9").
    pub label: String,
    /// The points, in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Maximum y value (NaN-safe); `None` when empty.
    pub fn max_y(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|(_, y)| *y)
            .fold(None, |acc, y| Some(acc.map_or(y, |a: f64| a.max(y))))
    }

    /// Minimum y value; `None` when empty.
    pub fn min_y(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|(_, y)| *y)
            .fold(None, |acc, y| Some(acc.map_or(y, |a: f64| a.min(y))))
    }
}

/// A figure: a title, axis names, and one or more series over a shared x
/// grid.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Figure {
    /// Figure title (e.g. "Figure 4: …").
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The curves.
    pub series: Vec<Series>,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Figure {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Renders a markdown table: one row per x value, one column per
    /// series.
    ///
    /// # Panics
    ///
    /// Panics if the series do not share the same x grid.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}", self.title);
        let _ = writeln!(out);
        let header: Vec<String> = std::iter::once(self.x_label.clone())
            .chain(self.series.iter().map(|s| s.label.clone()))
            .collect();
        let _ = writeln!(out, "| {} |", header.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            header.iter().map(|_| "---").collect::<Vec<_>>().join("|")
        );
        if let Some(first) = self.series.first() {
            for (row, (x, _)) in first.points.iter().enumerate() {
                let mut cells = vec![format_num(*x)];
                for s in &self.series {
                    assert!(
                        (s.points[row].0 - *x).abs() < 1e-9,
                        "series must share the x grid"
                    );
                    cells.push(format_num(s.points[row].1));
                }
                let _ = writeln!(out, "| {} |", cells.join(" | "));
            }
        }
        out
    }

    /// Renders a CSV block: `x,label1,label2,…` header then one row per x.
    ///
    /// # Panics
    ///
    /// Panics if the series do not share the same x grid.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let header: Vec<String> = std::iter::once(self.x_label.clone())
            .chain(self.series.iter().map(|s| s.label.clone()))
            .collect();
        let _ = writeln!(out, "{}", header.join(","));
        if let Some(first) = self.series.first() {
            for (row, (x, _)) in first.points.iter().enumerate() {
                let mut cells = vec![format_num(*x)];
                for s in &self.series {
                    assert!(
                        (s.points[row].0 - *x).abs() < 1e-9,
                        "series must share the x grid"
                    );
                    cells.push(format_num(s.points[row].1));
                }
                let _ = writeln!(out, "{}", cells.join(","));
            }
        }
        out
    }
}

impl Figure {
    /// Renders the figure as an ASCII chart (for terminals and logs).
    /// Each series gets a marker (`*`, `o`, `+`, `x`, …); points are
    /// plotted on a `width`×`height` grid spanning the data ranges, with a
    /// zero-based y axis.
    ///
    /// # Panics
    ///
    /// Panics if `width < 16` or `height < 4`.
    pub fn to_ascii(&self, width: usize, height: usize) -> String {
        assert!(width >= 16, "chart width must be at least 16 columns");
        assert!(height >= 4, "chart height must be at least 4 rows");
        const MARKERS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];

        let xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|(x, _)| *x))
            .collect();
        let ys: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|(_, y)| *y))
            .collect();
        if xs.is_empty() {
            return format!("{} (no data)\n", self.title);
        }
        let x_min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let x_max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let y_max = ys.iter().cloned().fold(0.0f64, f64::max).max(1e-12);
        let x_span = (x_max - x_min).max(1e-12);

        let mut grid = vec![vec![' '; width]; height];
        for (si, series) in self.series.iter().enumerate() {
            let marker = MARKERS[si % MARKERS.len()];
            for (x, y) in &series.points {
                let col = (((x - x_min) / x_span) * (width - 1) as f64).round() as usize;
                let row = ((y / y_max) * (height - 1) as f64).round() as usize;
                let row = height - 1 - row.min(height - 1);
                let cell = &mut grid[row][col.min(width - 1)];
                // Overlapping series show the later marker.
                *cell = marker;
            }
        }

        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        for (si, series) in self.series.iter().enumerate() {
            let _ = writeln!(out, "  {} {}", MARKERS[si % MARKERS.len()], series.label);
        }
        let _ = writeln!(out, "{y_max:>8.2} ┤");
        for row in &grid {
            let line: String = row.iter().collect();
            let _ = writeln!(out, "         │{line}");
        }
        let _ = writeln!(out, "{:>8.2} └{}", 0.0, "─".repeat(width));
        let _ = writeln!(
            out,
            "          {:<w$}{:>8}",
            format_num(x_min),
            format_num(x_max),
            w = width.saturating_sub(7)
        );
        let _ = writeln!(out, "          x: {}, y: {}", self.x_label, self.y_label);
        out
    }
}

fn format_num(v: f64) -> String {
    if (v - v.round()).abs() < 1e-9 && v.abs() < 1e12 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Figure {
        let mut fig = Figure::new("Figure X", "deadline", "value");
        let mut a = Series::new("Pc = 0.9");
        let mut b = Series::new("Pc = 0.5");
        for x in [100.0, 150.0, 200.0] {
            a.push(x, x / 50.0);
            b.push(x, 2.0);
        }
        fig.series.push(a);
        fig.series.push(b);
        fig
    }

    #[test]
    fn markdown_has_header_and_rows() {
        let md = sample().to_markdown();
        assert!(md.contains("### Figure X"));
        assert!(md.contains("| deadline | Pc = 0.9 | Pc = 0.5 |"));
        assert!(md.contains("| 100 | 2 | 2 |"));
        assert!(md.contains("| 150 | 3 | 2 |"));
    }

    #[test]
    fn csv_roundtrip_shape() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "deadline,Pc = 0.9,Pc = 0.5");
        assert_eq!(lines[1], "100,2,2");
    }

    #[test]
    fn fractional_values_use_three_decimals() {
        let mut fig = Figure::new("f", "x", "y");
        let mut s = Series::new("s");
        s.push(1.0, 0.12345);
        fig.series.push(s);
        assert!(fig.to_csv().contains("1,0.123"));
    }

    #[test]
    fn series_extrema() {
        let mut s = Series::new("s");
        assert_eq!(s.max_y(), None);
        s.push(0.0, 3.0);
        s.push(1.0, -1.0);
        assert_eq!(s.max_y(), Some(3.0));
        assert_eq!(s.min_y(), Some(-1.0));
    }

    #[test]
    fn ascii_chart_places_extremes() {
        let chart = sample().to_ascii(40, 8);
        assert!(chart.contains("Figure X"));
        assert!(chart.contains("* Pc = 0.9"));
        assert!(chart.contains("o Pc = 0.5"));
        // The max-y marker of series a (y = 4 at x = 200) sits on the top
        // grid row; the axis labels show the ranges.
        let lines: Vec<&str> = chart.lines().collect();
        let top_grid = lines
            .iter()
            .find(|l| l.starts_with("         │"))
            .expect("grid rows exist");
        assert!(top_grid.contains('*'), "top row holds the maximum: {chart}");
        assert!(chart.contains("100"), "{chart}");
        assert!(chart.contains("200"), "{chart}");
        assert!(chart.contains("x: deadline, y: value"));
    }

    #[test]
    fn ascii_chart_empty_figure() {
        let fig = Figure::new("Empty", "x", "y");
        assert_eq!(fig.to_ascii(40, 8), "Empty (no data)\n");
    }

    #[test]
    #[should_panic(expected = "width must be at least")]
    fn ascii_chart_rejects_tiny_grids() {
        let _ = sample().to_ascii(4, 8);
    }

    #[test]
    #[should_panic(expected = "share the x grid")]
    fn mismatched_grids_panic() {
        let mut fig = Figure::new("f", "x", "y");
        let mut a = Series::new("a");
        a.push(1.0, 1.0);
        let mut b = Series::new("b");
        b.push(2.0, 1.0);
        fig.series.push(a);
        fig.series.push(b);
        let _ = fig.to_markdown();
    }
}
