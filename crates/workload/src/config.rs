//! Declarative experiment configurations.

use aqua_core::model::ModelConfig;
use aqua_core::qos::QosSpec;
use aqua_core::time::Duration;
use aqua_faults::FaultPlan;
use aqua_replica::{CrashPlan, LoadModel, ServiceTimeModel};
use lan_sim::{CongestedLan, GeoNetwork, GeoTopology, NetworkModel, UniformLan};

/// Which network model an experiment runs over.
#[derive(Debug, Clone)]
pub enum NetworkSpec {
    /// A calm switched LAN (the paper's testbed).
    Uniform(UniformLan),
    /// A LAN with occasional congestion spikes (§3's "occasional periods
    /// of high traffic").
    Congested {
        /// Calm behaviour.
        lan: UniformLan,
        /// Per-message probability of entering a congestion epoch.
        spike_prob: f64,
        /// Delay multiplier during congestion.
        spike_scale: f64,
        /// Epoch length.
        spike_duration: Duration,
    },
    /// A WAN/geo topology: hosts are spread round-robin across the
    /// topology's regions and pay inter-region latency (half the dataset
    /// RTT one-way) on cross-region links.
    Geo(GeoTopology),
}

impl NetworkSpec {
    /// The paper-calibrated calm LAN.
    pub fn paper() -> Self {
        NetworkSpec::Uniform(UniformLan::aqua_testbed())
    }

    pub(crate) fn build(&self) -> Box<dyn NetworkModel> {
        match self {
            NetworkSpec::Uniform(lan) => Box::new(lan.clone()),
            NetworkSpec::Congested {
                lan,
                spike_prob,
                spike_scale,
                spike_duration,
            } => Box::new(CongestedLan::new(
                lan.clone(),
                *spike_prob,
                *spike_scale,
                *spike_duration,
            )),
            NetworkSpec::Geo(topology) => Box::new(GeoNetwork::round_robin(topology.clone())),
        }
    }
}

/// Which selection strategy a client runs (buildable per client, since
/// strategies are stateful).
#[derive(Debug, Clone, PartialEq)]
pub enum StrategySpec {
    /// The paper's model-based algorithm with the given model config.
    ModelBased(ModelConfig),
    /// The multi-crash generalization (§5.3.2): tolerate `crashes`
    /// simultaneous failures.
    ModelBasedTolerating {
        /// Model configuration.
        model: ModelConfig,
        /// Simultaneous crashes to tolerate.
        crashes: usize,
    },
    /// Uniform random choice of `k`.
    Random {
        /// Redundancy level.
        k: usize,
    },
    /// Best historical mean response time, `k` replicas.
    FastestMean {
        /// Redundancy level.
        k: usize,
    },
    /// Shortest queue, `k` replicas.
    LeastLoaded {
        /// Redundancy level.
        k: usize,
    },
    /// Smallest last gateway delay, `k` replicas.
    Nearest {
        /// Redundancy level.
        k: usize,
    },
    /// Rotate through the pool, `k` at a time.
    RoundRobin {
        /// Redundancy level.
        k: usize,
    },
    /// Fixed first-`k` set.
    StaticK {
        /// Redundancy level.
        k: usize,
    },
    /// Send to everyone (active replication).
    AllReplicas,
}

impl StrategySpec {
    /// The paper's strategy with default model parameters.
    pub fn paper() -> Self {
        StrategySpec::ModelBased(ModelConfig::default())
    }

    /// Human-readable name matching the strategy's `name()`.
    pub fn name(&self) -> &'static str {
        match self {
            StrategySpec::ModelBased(_) | StrategySpec::ModelBasedTolerating { .. } => {
                "model-based"
            }
            StrategySpec::Random { .. } => "random-k",
            StrategySpec::FastestMean { .. } => "fastest-mean",
            StrategySpec::LeastLoaded { .. } => "least-loaded",
            StrategySpec::Nearest { .. } => "nearest",
            StrategySpec::RoundRobin { .. } => "round-robin",
            StrategySpec::StaticK { .. } => "static-k",
            StrategySpec::AllReplicas => "all-replicas",
        }
    }

    pub(crate) fn build(&self, seed: u64) -> Box<dyn aqua_strategies::SelectionStrategy> {
        use aqua_strategies as s;
        match self {
            StrategySpec::ModelBased(cfg) => Box::new(s::ModelBased::new(*cfg)),
            StrategySpec::ModelBasedTolerating { model, crashes } => {
                Box::new(s::ModelBased::new(*model).with_crash_tolerance(*crashes))
            }
            StrategySpec::Random { k } => Box::new(s::Random::new(*k, seed)),
            StrategySpec::FastestMean { k } => Box::new(s::FastestMean { k: *k }),
            StrategySpec::LeastLoaded { k } => Box::new(s::LeastLoaded { k: *k }),
            StrategySpec::Nearest { k } => Box::new(s::Nearest { k: *k }),
            StrategySpec::RoundRobin { k } => Box::new(s::RoundRobin::new(*k)),
            StrategySpec::StaticK { k } => Box::new(s::StaticK { k: *k }),
            StrategySpec::AllReplicas => Box::new(s::AllReplicas),
        }
    }
}

/// One server replica host.
#[derive(Debug, Clone)]
pub struct ServerSpec {
    /// Per-request service-time distribution.
    pub service: ServiceTimeModel,
    /// Method-specific service-time overrides (multi-interface extension).
    pub method_services: Vec<(aqua_core::repository::MethodId, ServiceTimeModel)>,
    /// Host load fluctuation.
    pub load: LoadModel,
    /// Crash injection.
    pub crash: CrashPlan,
    /// Restart this long after a crash (`None` = permanent crash).
    pub recover_after: Option<Duration>,
}

impl ServerSpec {
    /// The paper's synthetic server: Normal(100 ms, σ50 ms), steady, no
    /// crash.
    pub fn paper() -> Self {
        ServerSpec {
            service: ServiceTimeModel::paper_load(),
            method_services: Vec::new(),
            load: LoadModel::nominal(),
            crash: CrashPlan::Never,
            recover_after: None,
        }
    }
}

/// One client.
#[derive(Debug, Clone)]
pub struct ClientSpec {
    /// The client's QoS requirement.
    pub qos: QosSpec,
    /// Selection strategy.
    pub strategy: StrategySpec,
    /// Request pacing (closed loop with think time, or open-loop Poisson).
    pub arrivals: aqua_gateway::ArrivalModel,
    /// Think time between response and next request (closed loop).
    pub think_time: Duration,
    /// Requests to issue.
    pub num_requests: u64,
    /// Delay before the first request.
    pub start_after: Duration,
    /// Sliding-window size `l`.
    pub window: usize,
    /// Renegotiate to this spec when the QoS callback fires.
    pub renegotiate_to: Option<QosSpec>,
    /// Method ids cycled across requests (multi-interface extension).
    pub methods: Vec<aqua_core::repository::MethodId>,
    /// Probe replicas whose performance data is older than this (§8 ext. 3).
    pub probe_stale_after: Option<Duration>,
    /// Re-run selection over the remaining replicas when no reply has
    /// arrived after this long (`None` = wait for the give-up timeout, the
    /// paper's behaviour).
    pub retry_after: Option<Duration>,
    /// QoS-calibration watchdog override (supervisor scenarios enable
    /// `replica_alerts` so the manager sees per-replica drift). Only
    /// meaningful on observed runs.
    pub calibration: Option<aqua_gateway::CalibrationConfig>,
}

impl ClientSpec {
    /// The paper's client loop: think 1 s, 50 requests, window 5.
    pub fn paper(qos: QosSpec) -> Self {
        ClientSpec {
            qos,
            strategy: StrategySpec::paper(),
            arrivals: aqua_gateway::ArrivalModel::ClosedLoop,
            think_time: Duration::from_secs(1),
            num_requests: 50,
            start_after: Duration::from_millis(500),
            window: 5,
            renegotiate_to: None,
            methods: vec![aqua_core::repository::MethodId::DEFAULT],
            probe_stale_after: None,
            retry_after: None,
            calibration: None,
        }
    }
}

/// Proteus-style dependability management (§2): keep `target_replication`
/// replicas alive by activating standbys — and, with `supervision` set,
/// run the elastic supervisor (load-adaptive target, rolling restarts,
/// correlated-failure escalation) on top.
#[derive(Debug, Clone, Copy)]
pub struct ManagerSpec {
    /// Desired number of live server replicas (the initial effective
    /// target under supervision).
    pub target_replication: usize,
    /// Re-check cadence.
    pub check_interval: Duration,
    /// Elastic supervision tunables; `None` keeps the fixed target.
    pub supervision: Option<aqua_gateway::SupervisionConfig>,
}

/// A complete experiment: topology, workload, and run length.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// RNG seed (one seed = one fully reproducible history).
    pub seed: u64,
    /// Network model.
    pub network: NetworkSpec,
    /// Server replicas, one host each.
    pub servers: Vec<ServerSpec>,
    /// Standby replicas (dormant until the manager activates them).
    pub standby_servers: Vec<ServerSpec>,
    /// Dependability manager, if replication should be managed.
    pub manager: Option<ManagerSpec>,
    /// Clients, one host each.
    pub clients: Vec<ClientSpec>,
    /// Fault plan injected over the run (crashes, pauses, degradation,
    /// network trouble); instantiated with [`ExperimentConfig::seed`].
    pub faults: FaultPlan,
    /// Virtual-time budget; the run also stops when all clients finish.
    pub max_virtual_time: Duration,
}

impl ExperimentConfig {
    /// The paper's §6 setup: seven replicas with Normal(100 ms, σ50 ms)
    /// synthetic load, client 1 fixed at (200 ms, Pc ≥ 0), client 2 under
    /// test with `second_client`.
    pub fn paper(second_client: QosSpec, seed: u64) -> Self {
        let background =
            QosSpec::new(Duration::from_millis(200), 0.0).expect("valid constant spec");
        ExperimentConfig {
            seed,
            network: NetworkSpec::paper(),
            servers: (0..7).map(|_| ServerSpec::paper()).collect(),
            standby_servers: Vec::new(),
            manager: None,
            clients: vec![
                ClientSpec::paper(background),
                ClientSpec::paper(second_client),
            ],
            faults: FaultPlan::new(),
            max_virtual_time: Duration::from_secs(300),
        }
    }
}
