//! Fault-injection plans driven through the *simulated* stack: the same
//! `aqua-faults` schedules the socket runtime executes on the wall clock
//! run here on virtual time, deterministically.

use aqua_core::qos::QosSpec;
use aqua_core::time::{Duration, Instant};
use aqua_obs::Obs;
use aqua_replica::ServiceTimeModel;
use aqua_workload::{
    run_experiment, run_experiment_observed, ClientSpec, ExperimentConfig, FaultPlan, NetworkSpec,
    ServerSpec, StrategySpec,
};

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

fn config(qos: QosSpec, n_servers: usize, requests: u64, seed: u64) -> ExperimentConfig {
    let mut client = ClientSpec::paper(qos);
    client.num_requests = requests;
    client.think_time = ms(200);
    ExperimentConfig {
        seed,
        network: NetworkSpec::paper(),
        servers: (0..n_servers)
            .map(|i| ServerSpec {
                // Replica 0 is distinctly fastest so FastestMean pins to it.
                service: ServiceTimeModel::Deterministic(ms(20 + 20 * i as u64)),
                ..ServerSpec::paper()
            })
            .collect(),
        standby_servers: Vec::new(),
        manager: None,
        clients: vec![client],
        faults: FaultPlan::new(),
        max_virtual_time: Duration::from_secs(120),
    }
}

#[test]
fn scheduled_crash_recover_is_masked_and_journalled() {
    let qos = QosSpec::new(ms(250), 0.9).unwrap();
    let mut cfg = config(qos, 4, 30, 13);
    // Replica 1 is down from 2 s to 4 s of virtual time.
    cfg.faults = FaultPlan::new().crash_recover(1, Instant::from_secs(2), Duration::from_secs(2));

    let (obs, reader) = Obs::in_memory();
    let report = run_experiment_observed(&cfg, Some(&obs));
    let client = report.client_under_test();
    assert_eq!(client.records.len(), 30, "the run completed");
    assert!(
        client.failure_probability < 0.2,
        "the crash window is largely masked: {}",
        client.failure_probability
    );

    let faults: Vec<String> = reader.lines_containing(r#""type":"fault""#);
    assert_eq!(
        faults.len(),
        2,
        "one activation + one clearance: {faults:?}"
    );
    assert!(faults[0].contains(r#""phase":"active""#) && faults[0].contains(r#""kind":"crash""#));
    assert!(faults[1].contains(r#""phase":"cleared""#));
    assert!(faults[0].contains(r#""replica":1"#));
    assert!(obs.prometheus().contains("aqua_faults_injected_total"));
}

#[test]
fn paused_selection_is_rescued_by_deadline_retry() {
    // FastestMean k=1 pins every warm selection to replica 0; a pause
    // window stalls it mid-run. With `retry_after` armed, each affected
    // request re-runs Algorithm 1 over the remaining replicas and is
    // answered (late, but answered) instead of riding out the give-up.
    let qos = QosSpec::new(ms(100), 0.0).unwrap();
    let mut cfg = config(qos, 3, 30, 21);
    cfg.clients[0].strategy = StrategySpec::FastestMean { k: 1 };
    cfg.clients[0].retry_after = Some(ms(200));
    // The pause outlasts the 5 s give-up window: without a retry, a
    // request stranded at the paused replica cannot be answered in time.
    cfg.faults = FaultPlan::new().pause(0, Instant::from_secs(3), Duration::from_secs(7));

    let report = run_experiment(&cfg);
    let client = report.client_under_test();
    assert_eq!(client.records.len(), 30, "the run completed");
    assert!(client.stats.retries >= 1, "the pause forced retries");
    assert_eq!(client.stats.gave_up, 0, "every request was answered");
    assert!(
        client.records.iter().all(|r| r.response_time.is_some()),
        "retries rescued every paused request"
    );
    // Without the retry, the same plan strands requests at the paused
    // replica until the give-up timer.
    let mut no_retry = cfg.clone();
    no_retry.clients[0].retry_after = None;
    let stranded = run_experiment(&no_retry);
    assert!(
        stranded.client_under_test().stats.gave_up >= 1,
        "the pause is long enough to exhaust the give-up window"
    );
}

#[test]
fn network_faults_drop_and_delay_messages() {
    // A one-way partition makes replica 2 unable to send anything for a
    // stretch; its replies vanish and other replicas mask the loss.
    let qos = QosSpec::new(ms(250), 0.9).unwrap();
    let mut cfg = config(qos, 4, 25, 31);
    cfg.faults =
        FaultPlan::new().partition_one_way(2, Instant::from_secs(2), Duration::from_secs(3));
    let report = run_experiment(&cfg);
    let client = report.client_under_test();
    assert_eq!(client.records.len(), 25);
    assert!(
        client.failure_probability < 0.3,
        "partitioned replies are masked by redundancy: {}",
        client.failure_probability
    );

    // A network-wide delay spike slows everything; response times inside
    // the spike window are visibly worse than the calm baseline.
    let calm = run_experiment(&config(qos, 4, 25, 31));
    let mut spiky_cfg = config(qos, 4, 25, 31);
    spiky_cfg.faults =
        FaultPlan::new().delay_spike_all(Instant::from_secs(1), Duration::from_secs(30), 8.0);
    let spiky = run_experiment(&spiky_cfg);
    let calm_mean = calm.client_under_test().mean_latency().unwrap();
    let spiky_mean = spiky.client_under_test().mean_latency().unwrap();
    assert!(
        spiky_mean > calm_mean,
        "8x delay spike must show up in the mean: {calm_mean} vs {spiky_mean}"
    );
}

#[test]
fn fault_plans_are_deterministic_per_seed() {
    let qos = QosSpec::new(ms(200), 0.9).unwrap();
    let build = || {
        let mut cfg = config(qos, 4, 20, 47);
        cfg.clients[0].retry_after = Some(ms(300));
        cfg.faults = FaultPlan::new()
            .crash_recover(1, Instant::from_secs(2), Duration::from_secs(1))
            .degrade(2, Instant::from_secs(1), Duration::from_secs(4), 3.0)
            .drop_messages(3, Instant::from_secs(1), Duration::from_secs(5), 0.3);
        cfg
    };
    let a = run_experiment(&build());
    let b = run_experiment(&build());
    let key = |r: &aqua_workload::ExperimentReport| -> Vec<_> {
        r.client_under_test()
            .records
            .iter()
            .map(|rec| (rec.seq, rec.timely, rec.response_time, rec.redundancy))
            .collect()
    };
    assert_eq!(key(&a), key(&b), "same seed, same fault history");
    assert_eq!(a.messages, b.messages);
}

#[test]
fn degraded_replica_is_deselected_by_the_model() {
    // Replica 0 is the fastest until a 10x degradation makes it the worst;
    // the model-based strategy should shift selections away from it once
    // the window fills with slow samples.
    let qos = QosSpec::new(ms(250), 0.9).unwrap();
    let mut cfg = config(qos, 3, 40, 17);
    cfg.faults = FaultPlan::new().degrade(0, Instant::from_secs(3), Duration::from_secs(60), 10.0);
    let report = run_experiment(&cfg);
    let client = report.client_under_test();
    assert_eq!(client.records.len(), 40);
    assert!(
        client.failure_probability < 0.35,
        "selection routes around the degraded replica: {}",
        client.failure_probability
    );
}
