//! End-to-end exercise of the aqua-trace pipeline on the simulated stack:
//! the QoS-calibration watchdog must fire when an induced fault degrades
//! every replica past the promised deadline, and the forensics analyzer
//! must rebuild the span trees from the journal alone and attribute every
//! deadline miss.

use aqua_core::qos::QosSpec;
use aqua_core::time::{Duration, Instant};
use aqua_obs::Obs;
use aqua_replica::ServiceTimeModel;
use aqua_trace::{analyze, read_journal, MissStage};
use aqua_workload::{
    run_experiment_observed, ClientSpec, ExperimentConfig, FaultPlan, NetworkSpec, ServerSpec,
};

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

/// Three moderately-spread replicas, one client, model-based selection.
fn config(qos: QosSpec, requests: u64, seed: u64) -> ExperimentConfig {
    let mut client = ClientSpec::paper(qos);
    client.num_requests = requests;
    client.think_time = ms(100);
    ExperimentConfig {
        seed,
        network: NetworkSpec::paper(),
        servers: (0..3)
            .map(|i| ServerSpec {
                service: ServiceTimeModel::Deterministic(ms(20 + 10 * i as u64)),
                ..ServerSpec::paper()
            })
            .collect(),
        standby_servers: Vec::new(),
        manager: None,
        clients: vec![client],
        faults: FaultPlan::new(),
        max_virtual_time: Duration::from_secs(300),
    }
}

/// A fault plan that slows *every* replica far past the deadline so the
/// promised probability is unachievable while the windows are active.
fn degrade_everything() -> FaultPlan {
    let at = Instant::from_secs(2);
    let hold = Duration::from_secs(120);
    FaultPlan::new()
        .degrade(0, at, hold, 20.0)
        .degrade(1, at, hold, 20.0)
        .degrade(2, at, hold, 20.0)
}

#[test]
fn watchdog_fires_on_induced_degrade() {
    let qos = QosSpec::new(ms(200), 0.9).unwrap();
    let mut cfg = config(qos, 80, 41);
    cfg.faults = degrade_everything();

    let (obs, reader) = Obs::in_memory();
    let report = run_experiment_observed(&cfg, Some(&obs));
    let client = report.client_under_test();
    assert_eq!(client.records.len(), 80, "the run completed");
    assert!(
        client.failure_probability > 0.3,
        "the degrade window visibly breaks the QoS promise: {}",
        client.failure_probability
    );

    // The default watchdog (no special configuration) must notice the
    // sustained promised-vs-observed gap and journal an alert.
    let alerts = reader.lines_containing(r#""type":"calibration_alert""#);
    assert!(
        !alerts.is_empty(),
        "sustained degrade produces at least one calibration alert"
    );

    // Satellite metrics are exported alongside the alert.
    let prom = obs.prometheus();
    assert!(
        prom.contains("aqua_qos_violations_total"),
        "violations counter exported: {prom}"
    );
    assert!(
        prom.contains("aqua_qos_calibration_error"),
        "calibration-error gauge exported: {prom}"
    );
}

#[test]
fn forensics_attributes_every_miss_and_joins_fault_windows() {
    let qos = QosSpec::new(ms(200), 0.9).unwrap();
    let mut cfg = config(qos, 60, 47);
    cfg.faults = degrade_everything();

    let dir = std::env::temp_dir().join(format!(
        "aqua-trace-forensics-{}-{}",
        std::process::id(),
        cfg.seed
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let obs = Obs::to_dir_rotating(&dir, 0).expect("journal dir");
    let report = run_experiment_observed(&cfg, Some(&obs));
    assert_eq!(report.client_under_test().records.len(), 60);
    obs.journal().flush();

    let data = read_journal(&dir).expect("journal readable");
    assert_eq!(data.bad_lines, 0, "every journal line parses");
    let forensics = analyze(&data);

    assert_eq!(
        forensics.requests, 60,
        "one logical request per workload request: {forensics:?}"
    );
    assert_eq!(forensics.pending, 0, "nothing left dangling at flush");
    assert!(
        forensics.invariant_violations.is_empty(),
        "span-tree invariants hold: {:?}",
        forensics.invariant_violations
    );
    assert!(
        !forensics.misses.is_empty(),
        "the degrade window causes deadline misses"
    );

    // 100% attribution: every miss carries a stage, and the ranked
    // histogram accounts for each one exactly once.
    let ranked_total: usize = forensics.ranked_stages().iter().map(|(_, n)| n).sum();
    assert_eq!(ranked_total, forensics.misses.len());

    // The fault-plan join works: misses inside the degrade window carry
    // its window ids and are attributed to the active fault.
    assert!(forensics.fault_window_count >= 3, "windows journalled");
    assert!(
        forensics.misses.iter().any(|m| !m.fault_windows.is_empty()),
        "at least one miss overlaps a recorded fault window"
    );
    assert!(
        forensics
            .misses
            .iter()
            .any(|m| m.stage == MissStage::ActiveFault),
        "misses inside the window are attributed to the active fault: {forensics:?}"
    );

    // The watchdog alert from the same run is visible to the analyzer.
    assert!(forensics.calibration_alerts >= 1);

    let _ = std::fs::remove_dir_all(&dir);
}
