//! End-to-end observability check: the request spans written to the
//! journal must reconcile with the handler's own delivered/redundant
//! counters, and the exported snapshots must carry the headline series.

use aqua_core::qos::QosSpec;
use aqua_core::time::Duration;
use aqua_obs::Obs;
use aqua_replica::ServiceTimeModel;
use aqua_workload::{
    run_experiment_observed, ClientSpec, ExperimentConfig, NetworkSpec, ServerSpec,
};

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

fn config(requests: u64) -> ExperimentConfig {
    let qos = QosSpec::new(ms(200), 0.9).unwrap();
    let mut client = ClientSpec::paper(qos);
    client.num_requests = requests;
    client.think_time = ms(100);
    ExperimentConfig {
        seed: 11,
        network: NetworkSpec::paper(),
        servers: (0..3)
            .map(|_| ServerSpec {
                service: ServiceTimeModel::Deterministic(ms(40)),
                ..ServerSpec::paper()
            })
            .collect(),
        standby_servers: Vec::new(),
        manager: None,
        clients: vec![client],
        faults: aqua_workload::FaultPlan::new(),
        max_virtual_time: Duration::from_secs(120),
    }
}

/// Journal lines that are real (non-probe) request spans.
fn request_spans(lines: &[String]) -> Vec<&String> {
    lines
        .iter()
        .filter(|l| l.contains(r#""type":"request""#) && l.contains(r#""probe":false"#))
        .collect()
}

#[test]
fn journal_spans_reconcile_with_handler_counters() {
    let (obs, reader) = Obs::in_memory();
    let report = run_experiment_observed(&config(12), Some(&obs));
    let stats = report.client_under_test().stats;
    assert_eq!(stats.requests, 12);

    let lines = reader.lines();
    let spans = request_spans(&lines);
    assert_eq!(spans.len() as u64, stats.requests, "one span per request");

    let delivered: u64 = spans
        .iter()
        .filter(|l| l.contains(r#""outcome":"delivered""#))
        .count() as u64;
    assert_eq!(delivered, stats.delivered, "delivered spans match handler");

    let first_replies: u64 = spans
        .iter()
        .map(|l| l.matches(r#""first":true"#).count() as u64)
        .sum();
    assert_eq!(
        first_replies, stats.delivered,
        "one first reply per delivery"
    );

    let redundant_replies: u64 = spans
        .iter()
        .map(|l| l.matches(r#""first":false"#).count() as u64)
        .sum();
    assert_eq!(
        redundant_replies, stats.redundant,
        "redundant replies in spans match handler"
    );

    let gave_up: u64 = spans
        .iter()
        .filter(|l| l.contains(r#""outcome":"gave_up""#))
        .count() as u64;
    assert_eq!(gave_up, stats.gave_up);
}

#[test]
fn snapshots_carry_the_headline_series() {
    let (obs, reader) = Obs::in_memory();
    let report = run_experiment_observed(&config(8), Some(&obs));
    let stats = report.client_under_test().stats;

    let prom = obs.prometheus();
    assert!(
        prom.contains(&format!(
            "aqua_requests_total{{client=\"0\"}} {}",
            stats.requests
        )),
        "{prom}"
    );
    assert!(
        prom.contains(&format!(
            "aqua_replies_delivered_total{{client=\"0\"}} {}",
            stats.delivered
        )),
        "{prom}"
    );
    // Per-replica decomposition histograms and the selection-size counts.
    assert!(prom.contains("aqua_reply_ts_ns{client=\"0\",replica=\"0\""));
    assert!(prom.contains("aqua_reply_tq_ns"));
    assert!(prom.contains("aqua_reply_td_ns"));
    assert!(prom.contains("aqua_selection_size_total"));
    assert!(prom.contains("aqua_selection_overhead_ns"));
    // Simulator bridge: per-node counters and trace events.
    assert!(prom.contains("sim_messages_sent_total"));
    assert!(reader
        .lines()
        .iter()
        .any(|l| l.contains(r#""type":"sim_event""#)));

    let json = obs.json_snapshot();
    assert!(json.contains("aqua_response_time_ns"), "{json}");
    assert!(json.contains("histograms"));
}
