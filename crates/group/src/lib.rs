//! # aqua-group — group communication for the AQuA reproduction
//!
//! A compact stand-in for the Maestro/Ensemble layer the paper builds on
//! (§2, §5.4): multicast groups with membership **views**, list-addressed
//! multicast (send to a chosen subset rather than the whole group), and a
//! heartbeat failure detector that turns replica crashes into view changes.
//!
//! The timing fault handler depends on exactly two properties of this
//! layer, both provided here:
//!
//! 1. a request can be multicast to a *selected list* of members, and
//! 2. when a member crashes, every surviving member is notified via a view
//!    change so the failed replica "will … not be considered in the
//!    selection process for future requests".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coordinator;
mod view;

pub use coordinator::{FailureDetectorConfig, GroupCoordinator, MembershipAgent};
pub use view::{Member, Role, View};

use lan_sim::Payload;

/// The wire format of a multicast group: control traffic plus application
/// payloads of type `A`.
#[derive(Debug, Clone)]
pub enum GroupMsg<A> {
    /// Application traffic (requests, replies, performance updates).
    App(A),
    /// A member announces itself to the coordinator.
    Join {
        /// The joining member.
        member: Member,
    },
    /// A member leaves gracefully.
    Leave {
        /// The leaving member's node.
        member: lan_sim::NodeId,
    },
    /// Periodic liveness signal from server members.
    Heartbeat,
    /// The coordinator installs a new membership view.
    ViewChange(View),
}

impl<A: Payload> Payload for GroupMsg<A> {
    fn wire_size(&self) -> usize {
        match self {
            GroupMsg::App(a) => a.wire_size(),
            GroupMsg::Join { .. } => 48,
            GroupMsg::Leave { .. } => 16,
            GroupMsg::Heartbeat => 16,
            GroupMsg::ViewChange(v) => 32 + 24 * v.members.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_core::qos::ReplicaId;
    use aqua_core::time::{Duration, Instant};
    use lan_sim::{Context, Event, Node, NodeId, Simulation};

    #[derive(Debug, Clone)]
    struct NoApp;
    impl Payload for NoApp {}

    /// A minimal group member driven entirely by its MembershipAgent.
    struct TestMember {
        agent: Option<MembershipAgent>,
        /// Wiring happens after ids are known, so the agent arrives late.
        pending: Option<(NodeId, Member, FailureDetectorConfig)>,
        views_seen: Vec<u64>,
        crash_at: Option<Instant>,
    }

    impl TestMember {
        fn new(crash_at: Option<Instant>) -> Self {
            TestMember {
                agent: None,
                pending: None,
                views_seen: Vec::new(),
                crash_at,
            }
        }
    }

    impl Node<GroupMsg<NoApp>> for TestMember {
        fn on_event(
            &mut self,
            event: Event<GroupMsg<NoApp>>,
            ctx: &mut Context<'_, GroupMsg<NoApp>>,
        ) {
            match event {
                Event::Started => {
                    let (coord, me, cfg) = self.pending.take().expect("wired before start");
                    let mut agent = MembershipAgent::new(coord, me, cfg);
                    agent.on_started(ctx);
                    self.agent = Some(agent);
                }
                Event::Timer { token } => {
                    if let Some(crash_at) = self.crash_at {
                        if ctx.now() >= crash_at {
                            // Crash silently: stop heartbeating, drop events.
                            self.agent.as_mut().unwrap().stop();
                            ctx.detach_self();
                            return;
                        }
                    }
                    let agent = self.agent.as_mut().unwrap();
                    let _ = agent.on_timer(token, ctx);
                }
                Event::Message { payload, .. } => {
                    if let GroupMsg::ViewChange(view) = payload {
                        if let Some(v) = self.agent.as_mut().unwrap().on_view_change(view) {
                            self.views_seen.push(v.id);
                        }
                    }
                }
            }
        }
    }

    fn wire(
        sim: &mut Simulation<GroupMsg<NoApp>>,
        node: NodeId,
        coord: NodeId,
        me: Member,
        cfg: FailureDetectorConfig,
    ) {
        sim.node_mut::<TestMember>(node).unwrap().pending = Some((coord, me, cfg));
    }

    #[test]
    fn members_join_and_receive_views() {
        let cfg = FailureDetectorConfig::default();
        let mut sim = Simulation::new(1);
        let coord = sim.add_node(GroupCoordinator::<NoApp>::new(cfg));
        let a = sim.add_node(TestMember::new(None));
        let b = sim.add_node(TestMember::new(None));
        wire(
            &mut sim,
            a,
            coord,
            Member::server(a, ReplicaId::new(0)),
            cfg,
        );
        wire(&mut sim, b, coord, Member::client(b), cfg);
        sim.run_for(Duration::from_millis(500));
        let view = sim
            .node::<GroupCoordinator<NoApp>>(coord)
            .unwrap()
            .view()
            .clone();
        assert_eq!(view.servers().count(), 1);
        assert_eq!(view.clients().count(), 1);
        assert!(
            !sim.node::<TestMember>(b).unwrap().views_seen.is_empty(),
            "client observed at least one view change"
        );
    }

    #[test]
    fn crashed_server_is_evicted_from_view() {
        let cfg = FailureDetectorConfig {
            heartbeat_interval: Duration::from_millis(20),
            timeout: Duration::from_millis(100),
            check_interval: Duration::from_millis(20),
        };
        let mut sim = Simulation::new(7);
        let coord = sim.add_node(GroupCoordinator::<NoApp>::new(cfg));
        let server = sim.add_node(TestMember::new(Some(Instant::from_millis(300))));
        let client = sim.add_node(TestMember::new(None));
        wire(
            &mut sim,
            server,
            coord,
            Member::server(server, ReplicaId::new(5)),
            cfg,
        );
        wire(&mut sim, client, coord, Member::client(client), cfg);

        sim.run_until(Instant::from_millis(250));
        assert_eq!(
            sim.node::<GroupCoordinator<NoApp>>(coord)
                .unwrap()
                .view()
                .servers()
                .count(),
            1,
            "server alive before crash"
        );

        sim.run_until(Instant::from_millis(900));
        let coord_state = sim.node::<GroupCoordinator<NoApp>>(coord).unwrap();
        assert_eq!(
            coord_state.view().servers().count(),
            0,
            "crashed server evicted"
        );
        // The surviving client saw the eviction view.
        let client_state = sim.node::<TestMember>(client).unwrap();
        let last_view = client_state.agent.as_ref().unwrap().view();
        assert_eq!(last_view.servers().count(), 0);
        assert!(last_view.contains(client));
    }

    #[test]
    fn graceful_leave_installs_new_view() {
        let cfg = FailureDetectorConfig::default();
        let mut sim = Simulation::new(3);
        let coord = sim.add_node(GroupCoordinator::<NoApp>::new(cfg));
        let a = sim.add_node(TestMember::new(None));
        wire(
            &mut sim,
            a,
            coord,
            Member::server(a, ReplicaId::new(1)),
            cfg,
        );
        sim.run_for(Duration::from_millis(100));
        // Inject a Leave directly.
        sim.schedule_message(sim.now(), a, coord, GroupMsg::Leave { member: a });
        sim.run_for(Duration::from_millis(100));
        assert_eq!(
            sim.node::<GroupCoordinator<NoApp>>(coord)
                .unwrap()
                .view()
                .members
                .len(),
            0
        );
    }

    #[test]
    fn duplicate_join_is_idempotent() {
        let cfg = FailureDetectorConfig::default();
        let mut sim = Simulation::new(3);
        let coord = sim.add_node(GroupCoordinator::<NoApp>::new(cfg));
        let a = sim.add_node(TestMember::new(None));
        let member = Member::server(a, ReplicaId::new(1));
        wire(&mut sim, a, coord, member, cfg);
        sim.run_for(Duration::from_millis(50));
        let views_before = sim
            .node::<GroupCoordinator<NoApp>>(coord)
            .unwrap()
            .views_installed();
        sim.schedule_message(sim.now(), a, coord, GroupMsg::Join { member });
        sim.run_for(Duration::from_millis(50));
        let coord_state = sim.node::<GroupCoordinator<NoApp>>(coord).unwrap();
        assert_eq!(coord_state.views_installed(), views_before);
        assert_eq!(coord_state.view().members.len(), 1);
    }

    #[test]
    fn stale_views_are_ignored_by_agents() {
        let cfg = FailureDetectorConfig::default();
        let mut agent = MembershipAgent::new(NodeId::new(0), Member::client(NodeId::new(1)), cfg);
        let new = View {
            id: 5,
            members: vec![],
        };
        assert!(agent.on_view_change(new).is_some());
        let stale = View {
            id: 4,
            members: vec![Member::client(NodeId::new(9))],
        };
        assert!(agent.on_view_change(stale).is_none());
        assert_eq!(agent.view().id, 5);
    }
}
