//! Group views: the membership snapshots Maestro/Ensemble delivers.

use core::fmt;

use aqua_core::qos::ReplicaId;
use lan_sim::NodeId;

/// The role a member plays in a multicast group.
///
/// The paper's timing fault handler puts both the client gateways and the
/// server replicas into one multicast group; clients subscribe to
/// performance updates while servers service requests (§5.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// A server replica offering the group's service.
    Server,
    /// A client gateway using the service.
    Client,
}

/// One member of a group view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Member {
    /// The simulated host.
    pub node: NodeId,
    /// Server or client.
    pub role: Role,
    /// For servers: the stable replica identity used by the information
    /// repository and selection algorithm.
    pub replica: Option<ReplicaId>,
}

impl Member {
    /// A server member with its replica identity.
    pub fn server(node: NodeId, replica: ReplicaId) -> Self {
        Member {
            node,
            role: Role::Server,
            replica: Some(replica),
        }
    }

    /// A client member.
    pub fn client(node: NodeId) -> Self {
        Member {
            node,
            role: Role::Client,
            replica: None,
        }
    }
}

/// A numbered membership snapshot. Views are totally ordered by id; the
/// coordinator installs a new view whenever membership changes, and members
/// discard views older than the one they hold.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct View {
    /// Monotonically increasing view number.
    pub id: u64,
    /// Current members, in join order.
    pub members: Vec<Member>,
}

impl View {
    /// The nodes of all members.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.members.iter().map(|m| m.node)
    }

    /// The server members (the replicas available for selection).
    pub fn servers(&self) -> impl Iterator<Item = &Member> {
        self.members.iter().filter(|m| m.role == Role::Server)
    }

    /// The client members (performance-update subscribers).
    pub fn clients(&self) -> impl Iterator<Item = &Member> {
        self.members.iter().filter(|m| m.role == Role::Client)
    }

    /// The replica ids of all server members, in join order.
    pub fn replica_ids(&self) -> impl Iterator<Item = ReplicaId> + '_ {
        self.servers().filter_map(|m| m.replica)
    }

    /// Finds the node hosting a given replica.
    pub fn node_of(&self, replica: ReplicaId) -> Option<NodeId> {
        self.servers()
            .find(|m| m.replica == Some(replica))
            .map(|m| m.node)
    }

    /// Finds the replica hosted by a given node, if it is a server.
    pub fn replica_of(&self, node: NodeId) -> Option<ReplicaId> {
        self.servers()
            .find(|m| m.node == node)
            .and_then(|m| m.replica)
    }

    /// Whether `node` is a member.
    pub fn contains(&self, node: NodeId) -> bool {
        self.members.iter().any(|m| m.node == node)
    }
}

impl fmt::Display for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "view {} ({} server(s), {} client(s))",
            self.id,
            self.servers().count(),
            self.clients().count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> View {
        View {
            id: 3,
            members: vec![
                Member::server(NodeId::new(1), ReplicaId::new(10)),
                Member::server(NodeId::new(2), ReplicaId::new(20)),
                Member::client(NodeId::new(5)),
            ],
        }
    }

    #[test]
    fn filters_by_role() {
        let v = sample();
        assert_eq!(v.servers().count(), 2);
        assert_eq!(v.clients().count(), 1);
        assert_eq!(
            v.replica_ids().collect::<Vec<_>>(),
            vec![ReplicaId::new(10), ReplicaId::new(20)]
        );
    }

    #[test]
    fn node_replica_mapping() {
        let v = sample();
        assert_eq!(v.node_of(ReplicaId::new(20)), Some(NodeId::new(2)));
        assert_eq!(v.node_of(ReplicaId::new(99)), None);
        assert_eq!(v.replica_of(NodeId::new(1)), Some(ReplicaId::new(10)));
        assert_eq!(
            v.replica_of(NodeId::new(5)),
            None,
            "clients have no replica"
        );
        assert!(v.contains(NodeId::new(5)));
        assert!(!v.contains(NodeId::new(9)));
    }

    #[test]
    fn display_summarizes() {
        assert_eq!(sample().to_string(), "view 3 (2 server(s), 1 client(s))");
    }
}
