//! The group coordinator: membership tracking and crash detection.
//!
//! Maestro/Ensemble "detects and notifies the members of changes to the
//! group membership" (§2). We model this with a coordinator node that
//! tracks heartbeats from server members and installs a new [`View`]
//! whenever a member joins, leaves, or is suspected of having crashed.
//! Clients learn about crashes from the view change and "remove the entry
//! for the failed replicas from their local information repositories"
//! (§5.4).

use std::collections::HashMap;

use aqua_core::time::{Duration, Instant};
use lan_sim::{Context, Event, Node, NodeId};

use crate::view::{Member, Role, View};
use crate::GroupMsg;

/// Failure-detector and heartbeat cadence parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureDetectorConfig {
    /// How often members send heartbeats.
    pub heartbeat_interval: Duration,
    /// Silence after which a server member is suspected crashed. Should be
    /// a small multiple of `heartbeat_interval`.
    pub timeout: Duration,
    /// How often the coordinator sweeps for suspects.
    pub check_interval: Duration,
}

impl Default for FailureDetectorConfig {
    fn default() -> Self {
        FailureDetectorConfig {
            heartbeat_interval: Duration::from_millis(50),
            timeout: Duration::from_millis(200),
            check_interval: Duration::from_millis(50),
        }
    }
}

/// The membership coordinator node.
///
/// Generic over the application payload `A` so one simulation type
/// parameter (`GroupMsg<A>`) covers both control and application traffic.
#[derive(Debug)]
pub struct GroupCoordinator<A> {
    config: FailureDetectorConfig,
    view: View,
    last_heartbeat: HashMap<NodeId, Instant>,
    views_installed: u64,
    _marker: core::marker::PhantomData<fn() -> A>,
}

impl<A> GroupCoordinator<A> {
    /// Creates a coordinator with the given failure-detector parameters.
    pub fn new(config: FailureDetectorConfig) -> Self {
        GroupCoordinator {
            config,
            view: View::default(),
            last_heartbeat: HashMap::new(),
            views_installed: 0,
            _marker: core::marker::PhantomData,
        }
    }

    /// The current view.
    pub fn view(&self) -> &View {
        &self.view
    }

    /// Total number of views installed (diagnostics).
    pub fn views_installed(&self) -> u64 {
        self.views_installed
    }
}

impl<A> GroupCoordinator<A>
where
    A: lan_sim::Payload,
{
    fn install_view(&mut self, ctx: &mut Context<'_, GroupMsg<A>>) {
        self.view.id += 1;
        self.views_installed += 1;
        let targets: Vec<NodeId> = self.view.nodes().collect();
        ctx.multicast(&targets, GroupMsg::ViewChange(self.view.clone()));
    }

    fn sweep_suspects(&mut self, ctx: &mut Context<'_, GroupMsg<A>>) {
        let now = ctx.now();
        let timeout = self.config.timeout;
        let last = &self.last_heartbeat;
        let suspects: Vec<NodeId> = self
            .view
            .servers()
            .map(|m| m.node)
            .filter(|node| {
                last.get(node)
                    .is_none_or(|hb| now.saturating_duration_since(*hb) > timeout)
            })
            .collect();
        if !suspects.is_empty() {
            self.view.members.retain(|m| !suspects.contains(&m.node));
            for node in &suspects {
                self.last_heartbeat.remove(node);
            }
            self.install_view(ctx);
        }
    }
}

impl<A> Node<GroupMsg<A>> for GroupCoordinator<A>
where
    A: lan_sim::Payload,
{
    fn on_event(&mut self, event: Event<GroupMsg<A>>, ctx: &mut Context<'_, GroupMsg<A>>) {
        match event {
            Event::Started => {
                ctx.set_timer(self.config.check_interval);
            }
            Event::Timer { .. } => {
                self.sweep_suspects(ctx);
                ctx.set_timer(self.config.check_interval);
            }
            Event::Message { from, payload } => match payload {
                GroupMsg::Join { member } => {
                    debug_assert_eq!(from, member.node, "members join on their own behalf");
                    if !self.view.contains(member.node) {
                        self.view.members.push(member);
                        if member.role == Role::Server {
                            self.last_heartbeat.insert(member.node, ctx.now());
                        }
                        self.install_view(ctx);
                    }
                }
                GroupMsg::Leave { member } => {
                    if self.view.contains(member) {
                        self.view.members.retain(|m| m.node != member);
                        self.last_heartbeat.remove(&member);
                        self.install_view(ctx);
                    }
                }
                GroupMsg::Heartbeat => {
                    self.last_heartbeat.insert(from, ctx.now());
                }
                // Application traffic and view changes are not addressed to
                // the coordinator.
                GroupMsg::App(_) | GroupMsg::ViewChange(_) => {}
            },
        }
    }
}

/// Client-/server-side membership agent: joins the group on start, sends
/// heartbeats (servers), and tracks the latest view.
///
/// Embed one in any node that participates in a group, forward the node's
/// [`Event::Started`] / [`Event::Timer`] / view-change messages to it, and
/// read [`MembershipAgent::view`] for the current membership.
#[derive(Debug)]
pub struct MembershipAgent {
    coordinator: NodeId,
    me: Member,
    heartbeat_interval: Duration,
    heartbeat_timer: Option<lan_sim::TimerToken>,
    view: View,
    alive: bool,
}

impl MembershipAgent {
    /// Creates an agent for member `me` that talks to `coordinator`.
    pub fn new(coordinator: NodeId, me: Member, config: FailureDetectorConfig) -> Self {
        MembershipAgent {
            coordinator,
            me,
            heartbeat_interval: config.heartbeat_interval,
            heartbeat_timer: None,
            view: View::default(),
            alive: true,
        }
    }

    /// The most recent view delivered to this member.
    pub fn view(&self) -> &View {
        &self.view
    }

    /// The member descriptor this agent joined as.
    pub fn me(&self) -> Member {
        self.me
    }

    /// Call from the node's `Event::Started`: joins the group and, for
    /// servers, starts the heartbeat clock.
    pub fn on_started<A>(&mut self, ctx: &mut Context<'_, GroupMsg<A>>)
    where
        A: lan_sim::Payload,
    {
        ctx.send(self.coordinator, GroupMsg::Join { member: self.me });
        if self.me.role == Role::Server {
            self.heartbeat_timer = Some(ctx.set_timer(self.heartbeat_interval));
        }
    }

    /// Call for every `Event::Timer`; returns `true` if the timer belonged
    /// to this agent (a heartbeat tick) and was consumed.
    pub fn on_timer<A>(
        &mut self,
        token: lan_sim::TimerToken,
        ctx: &mut Context<'_, GroupMsg<A>>,
    ) -> bool
    where
        A: lan_sim::Payload,
    {
        if self.heartbeat_timer != Some(token) {
            return false;
        }
        if self.alive {
            ctx.send(self.coordinator, GroupMsg::Heartbeat);
            self.heartbeat_timer = Some(ctx.set_timer(self.heartbeat_interval));
        }
        true
    }

    /// Call when a `GroupMsg::ViewChange` arrives; returns the new view if
    /// it superseded the held one.
    pub fn on_view_change(&mut self, view: View) -> Option<&View> {
        if view.id > self.view.id {
            self.view = view;
            Some(&self.view)
        } else {
            None
        }
    }

    /// Stops heartbeating (used when the owning node crashes silently).
    pub fn stop(&mut self) {
        self.alive = false;
    }

    /// Leaves the group gracefully.
    pub fn leave<A>(&mut self, ctx: &mut Context<'_, GroupMsg<A>>)
    where
        A: lan_sim::Payload,
    {
        self.alive = false;
        ctx.send(
            self.coordinator,
            GroupMsg::Leave {
                member: self.me.node,
            },
        );
    }
}
