//! Property tests for the group layer: view bookkeeping under arbitrary
//! join/leave/crash interleavings.

use aqua_core::qos::ReplicaId;
use aqua_core::time::{Duration, Instant};
use aqua_group::{FailureDetectorConfig, GroupCoordinator, GroupMsg, Member};
use lan_sim::{NodeId, Payload, Simulation};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct NoApp;
impl Payload for NoApp {}

/// A scripted membership action.
#[derive(Debug, Clone, Copy)]
enum Action {
    JoinServer(u8),
    JoinClient(u8),
    Leave(u8),
}

fn action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0u8..8).prop_map(Action::JoinServer),
        (0u8..8).prop_map(Action::JoinClient),
        (0u8..8).prop_map(Action::Leave),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn coordinator_view_matches_reference_model(
        actions in prop::collection::vec(action(), 1..40),
    ) {
        // Drive the coordinator with injected control messages (no
        // heartbeats: members never expire because the detector only
        // evicts *servers*, and we keep the run shorter than the timeout).
        let cfg = FailureDetectorConfig {
            heartbeat_interval: Duration::from_secs(100),
            timeout: Duration::from_secs(1_000),
            check_interval: Duration::from_secs(100),
        };
        let mut sim = Simulation::<GroupMsg<NoApp>>::new(9);
        let coord = sim.add_node(GroupCoordinator::<NoApp>::new(cfg));

        // Reference model: ordered set of members.
        let mut reference: Vec<(u8, bool)> = Vec::new(); // (id, is_server)
        let mut t = 1u64;
        for act in &actions {
            let at = Instant::from_millis(t);
            t += 1;
            match act {
                Action::JoinServer(i) => {
                    let node = NodeId::new(100 + *i as u32);
                    sim.schedule_message(
                        at,
                        node,
                        coord,
                        GroupMsg::Join {
                            member: Member::server(node, ReplicaId::new(*i as u64)),
                        },
                    );
                    if !reference.iter().any(|(id, _)| id == i) {
                        reference.push((*i, true));
                    }
                }
                Action::JoinClient(i) => {
                    let node = NodeId::new(100 + *i as u32);
                    sim.schedule_message(
                        at,
                        node,
                        coord,
                        GroupMsg::Join {
                            member: Member::client(node),
                        },
                    );
                    if !reference.iter().any(|(id, _)| id == i) {
                        reference.push((*i, false));
                    }
                }
                Action::Leave(i) => {
                    let node = NodeId::new(100 + *i as u32);
                    sim.schedule_message(at, NodeId::new(99), coord, GroupMsg::Leave {
                        member: node,
                    });
                    reference.retain(|(id, _)| id != i);
                }
            }
        }
        sim.run_until(Instant::from_millis(t + 10));

        let coordinator = sim.node::<GroupCoordinator<NoApp>>(coord).unwrap();
        let view = coordinator.view();
        // Same members, same join order, same roles.
        let got: Vec<(u8, bool)> = view
            .members
            .iter()
            .map(|m| {
                (
                    (m.node.index() - 100) as u8,
                    m.role == aqua_group::Role::Server,
                )
            })
            .collect();
        prop_assert_eq!(got, reference.clone());
        // View id grew once per effective change.
        prop_assert!(view.id >= reference.len() as u64 / 2);
        // Server/replica mappings are consistent.
        for m in view.servers() {
            let r = m.replica.expect("servers carry replica ids");
            prop_assert_eq!(view.node_of(r), Some(m.node));
            prop_assert_eq!(view.replica_of(m.node), Some(r));
        }
    }

    #[test]
    fn view_ids_are_strictly_monotone_at_members(
        joins in prop::collection::vec(0u8..6, 1..20),
    ) {
        // A member observing a stream of views never installs a stale one.
        use aqua_group::MembershipAgent;
        let cfg = FailureDetectorConfig::default();
        let mut agent =
            MembershipAgent::new(NodeId::new(0), Member::client(NodeId::new(1)), cfg);
        let mut last_installed = 0u64;
        for (i, _) in joins.iter().enumerate() {
            // Deliver views out of order: even indices ascending, odd
            // indices replay an old id.
            let id = if i % 2 == 0 { (i as u64) + 1 } else { 1 };
            let view = aqua_group::View {
                id,
                members: vec![],
            };
            if let Some(v) = agent.on_view_change(view) {
                prop_assert!(v.id > last_installed);
                last_installed = v.id;
            }
        }
    }
}
