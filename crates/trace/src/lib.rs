//! # aqua-trace — causal tracing, QoS auditing, and miss forensics
//!
//! The paper's gateway promises a QoS (`deadline`, `Pc`) and plans each
//! request from a probabilistic response-time model (§5.2–§5.3). This
//! crate closes the loop between *promise* and *delivery*:
//!
//! * [`calib`] — the online **QoS-calibration watchdog**: streaming
//!   predicted-vs-observed reliability statistics per `(method, replica,
//!   Pc band)`, Brier scores, rolling calibration error, and journalled
//!   `calibration_alert` events (plus hooks) whenever the delivered QoS
//!   drifts below the promise. The gateway's `HandlerObserver` feeds it
//!   on every plan, reply, and give-up.
//! * [`replay`] — journal **replay**: reads (possibly rotated) JSONL
//!   journals back through the `aqua-obs` parser and rebuilds the causal
//!   span forest, with retry chains linked parent-to-attempt.
//! * [`forensics`] — the **deadline-miss analyzer** behind the
//!   `aqua_forensics` binary: attributes every miss to a dominant stage
//!   (active fault window via stable id join, queue spike, wire delay,
//!   selection underestimate), audits the no-miss-without-callback and
//!   no-orphan-span invariants, and renders ranked JSON/terminal
//!   reports with a `--check` CI gate.
//!
//! The crate sits between `aqua-obs` (below) and the gateway (above):
//! it depends only on `aqua-core` and `aqua-obs`, so the simulator, the
//! socket runtime, and offline analysis all share one implementation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calib;
pub mod forensics;
pub mod replay;

pub use calib::{CalibrationAlert, CalibrationConfig, QosWatchdog};
pub use forensics::{analyze, ForensicsReport, Miss, MissKind, MissStage};
pub use replay::{read_journal, JournalData, SpanForest};
