//! Journal replay: JSONL files → parsed events → a span forest.
//!
//! A journal is one `journal.jsonl` (optionally preceded by rotated
//! segments `journal.jsonl.1`, `.2`, … — see `aqua_obs::journal::
//! RotatingSink`). Replay reads the segments in rotation order, parses
//! every line with the `aqua-obs` JSON reader, and rebuilds the causal
//! structure the gateway recorded:
//!
//! * every `"type":"request"` line becomes a [`RequestSpan`];
//! * `retry_of` links chain deadline-driven retries of one logical
//!   request into an attempt list, root first;
//! * everything else (fault edges, probation transitions, calibration
//!   alerts, …) is kept as raw events for joining.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

use aqua_obs::journal::RequestSpan;
use aqua_obs::json::JsonValue;
use aqua_obs::parse;

/// The active journal file name (`RotatingSink::ACTIVE`).
const ACTIVE: &str = "journal.jsonl";

/// Everything read from one journal.
#[derive(Debug, Default)]
pub struct JournalData {
    /// Parsed events, in emission order across rotated segments.
    pub events: Vec<JsonValue>,
    /// Lines that failed to parse (corruption, truncated tail).
    pub bad_lines: usize,
    /// Files the journal was assembled from, in read order.
    pub files: Vec<PathBuf>,
}

/// Reads a journal from `path`: either one JSONL file, or a directory
/// containing `journal.jsonl` plus rotated `journal.jsonl.N` segments
/// (read oldest-first so event order is preserved).
pub fn read_journal(path: impl AsRef<Path>) -> io::Result<JournalData> {
    let path = path.as_ref();
    let mut files = Vec::new();
    if path.is_dir() {
        let mut rotated: Vec<(u64, PathBuf)> = Vec::new();
        for entry in std::fs::read_dir(path)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(suffix) = name.strip_prefix("journal.jsonl.") {
                if let Ok(index) = suffix.parse::<u64>() {
                    rotated.push((index, entry.path()));
                }
            }
        }
        rotated.sort_unstable_by_key(|(index, _)| *index);
        files.extend(rotated.into_iter().map(|(_, p)| p));
        let active = path.join(ACTIVE);
        if active.is_file() {
            files.push(active);
        }
        if files.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no {ACTIVE} in {}", path.display()),
            ));
        }
    } else {
        files.push(path.to_path_buf());
    }
    let mut data = JournalData::default();
    for file in &files {
        let text = std::fs::read_to_string(file)?;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            match parse::parse(line) {
                Ok(value) => data.events.push(value),
                Err(_) => data.bad_lines += 1,
            }
        }
    }
    data.files = files;
    Ok(data)
}

/// All spans of a journal plus the retry links between them.
#[derive(Debug, Default)]
pub struct SpanForest {
    /// Every attempt, keyed by gateway sequence number.
    pub spans: BTreeMap<u64, RequestSpan>,
    /// `parent seq → retry seqs`, in seq order.
    children: BTreeMap<u64, Vec<u64>>,
    /// Spans whose `retry_of` target is not in the journal.
    orphans: Vec<u64>,
}

impl SpanForest {
    /// Builds the forest from parsed journal events, ignoring non-span
    /// lines.
    pub fn build(events: &[JsonValue]) -> SpanForest {
        let mut forest = SpanForest::default();
        for event in events {
            if let Some(span) = RequestSpan::from_json(event) {
                forest.spans.insert(span.seq, span);
            }
        }
        for (seq, span) in &forest.spans {
            if let Some(parent) = span.retry_of {
                if forest.spans.contains_key(&parent) {
                    forest.children.entry(parent).or_default().push(*seq);
                } else {
                    forest.orphans.push(*seq);
                }
            }
        }
        forest
    }

    /// Root attempts (spans that are not themselves retries), in seq
    /// order. Each corresponds to one logical client request.
    pub fn roots(&self) -> impl Iterator<Item = &RequestSpan> {
        self.spans.values().filter(|s| s.retry_of.is_none())
    }

    /// Direct retries of attempt `seq`.
    pub fn retries_of(&self, seq: u64) -> &[u64] {
        self.children.get(&seq).map_or(&[], Vec::as_slice)
    }

    /// The full attempt chain of the logical request rooted at `root`,
    /// root first, following retry links depth-first (the gateway only
    /// ever produces linear chains, but a forest is handled).
    pub fn chain(&self, root: u64) -> Vec<&RequestSpan> {
        let mut out = Vec::new();
        let mut stack = vec![root];
        while let Some(seq) = stack.pop() {
            if let Some(span) = self.spans.get(&seq) {
                out.push(span);
            }
            let mut kids: Vec<u64> = self.retries_of(seq).to_vec();
            kids.reverse();
            stack.extend(kids);
        }
        out
    }

    /// Spans whose `retry_of` references a seq absent from the journal —
    /// a broken causal link.
    pub fn orphans(&self) -> &[u64] {
        &self.orphans
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_obs::journal::SpanOutcome;
    use aqua_obs::Obs;

    fn span(seq: u64, retry_of: Option<u64>, outcome: SpanOutcome) -> RequestSpan {
        let mut s = RequestSpan::begin(seq, 0, seq * 100, seq * 100);
        s.retry_of = retry_of;
        s.outcome = outcome;
        s
    }

    #[test]
    fn forest_links_retry_chains() {
        let events: Vec<JsonValue> = [
            span(0, None, SpanOutcome::Superseded),
            span(1, Some(0), SpanOutcome::Delivered),
            span(2, None, SpanOutcome::Delivered),
        ]
        .iter()
        .map(RequestSpan::to_json)
        .collect();
        let forest = SpanForest::build(&events);
        assert_eq!(forest.spans.len(), 3);
        assert_eq!(forest.roots().count(), 2);
        let chain: Vec<u64> = forest.chain(0).iter().map(|s| s.seq).collect();
        assert_eq!(chain, vec![0, 1]);
        assert!(forest.orphans().is_empty());
    }

    #[test]
    fn missing_retry_target_is_an_orphan() {
        let events = vec![span(5, Some(4), SpanOutcome::Delivered).to_json()];
        let forest = SpanForest::build(&events);
        assert_eq!(forest.orphans(), &[5]);
    }

    #[test]
    fn read_journal_handles_rotated_directories() {
        let dir = std::env::temp_dir().join(format!(
            "aqua-trace-replay-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        // Rotate aggressively so the journal spreads over segments.
        let obs = Obs::to_dir_rotating(&dir, 64).unwrap();
        for seq in 0..16 {
            obs.journal()
                .emit_span(&span(seq, None, SpanOutcome::Delivered));
        }
        obs.journal().flush();
        drop(obs);
        let data = read_journal(&dir).unwrap();
        assert_eq!(data.bad_lines, 0);
        assert!(data.files.len() > 1, "rotation produced segments");
        let forest = SpanForest::build(&data.events);
        assert_eq!(forest.spans.len(), 16, "all segments read, in order");
        // Garbage lines are counted, not fatal.
        std::fs::write(dir.join("journal.jsonl"), "{\"type\":\"x\"}\nnot json\n").unwrap();
        let data = read_journal(&dir).unwrap();
        assert_eq!(data.bad_lines, 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
