//! Online QoS-calibration watchdog.
//!
//! The gateway *promises* a QoS — "the reply arrives within `deadline`
//! with probability at least `Pc`" — and backs the promise with model
//! predictions `P(t_i < deadline)` per selected replica (§5.2–§5.3). This
//! module audits that promise continuously: every retired request
//! contributes one `(promised, predicted, met-deadline)` sample to a
//! rolling window keyed by `(method, Pc band)`, plus one
//! `(predicted pᵢ, met)` sample per replica reply keyed by
//! `(method, replica)`.
//!
//! From the windows the watchdog maintains:
//!
//! * **observed success rate** — fraction of recent requests that met the
//!   deadline;
//! * **calibration error** — |mean predicted − observed| over the window,
//!   exported as `aqua_qos_calibration_error` (basis points, so a gauge
//!   of 250 means the model is off by 2.5 percentage points);
//! * **Brier score** — lifetime mean of `(predicted − met)²`, exported as
//!   `aqua_qos_brier` (basis points);
//! * **violations** — whenever the rolling observed rate drops more than
//!   `margin` below the rolling promised `Pc`, the watchdog bumps
//!   `aqua_qos_violations_total`, emits a `calibration_alert` journal
//!   event, and invokes every registered hook (the seam a
//!   DependabilityManager can use to renegotiate QoS or rebuild the
//!   model).
//!
//! Alerts are rate-limited by `cooldown` samples per band so a sustained
//! degradation produces a steady, bounded stream of alerts rather than
//! one per request.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

use aqua_obs::json::JsonValue;
use aqua_obs::metrics::{Counter, Gauge};
use aqua_obs::Obs;

/// Gauges exported by the watchdog are fixed-point with this scale:
/// a probability-space value `v` is published as `round(v * 10_000)`
/// (basis points).
pub const GAUGE_SCALE: f64 = 10_000.0;

/// Tunables for [`QosWatchdog`].
#[derive(Clone, Copy, Debug)]
pub struct CalibrationConfig {
    /// How far the observed success rate may fall below the promised
    /// `Pc` before a violation is raised (probability, default 0.05).
    pub margin: f64,
    /// Rolling samples required in a band before it may alert
    /// (default 32).
    pub min_samples: usize,
    /// Rolling-window length per band and per replica (default 256).
    pub window: usize,
    /// Width of the `Pc` quantization bands (default 0.05, i.e. a
    /// promise of 0.93 lands in the "0.90" band).
    pub band_width: f64,
    /// Minimum samples between consecutive alerts from one band
    /// (default 64).
    pub cooldown: usize,
    /// Whether the per-(method, replica) windows may raise
    /// replica-scoped alerts — the elastic supervisor's quarantine
    /// signal. Off by default so deployments without a supervisor keep
    /// the set-scoped alert stream unchanged.
    pub replica_alerts: bool,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        CalibrationConfig {
            margin: 0.05,
            min_samples: 32,
            window: 256,
            band_width: 0.05,
            cooldown: 64,
            replica_alerts: false,
        }
    }
}

/// One QoS violation, as handed to alert hooks and the journal.
#[derive(Clone, Debug)]
pub struct CalibrationAlert {
    /// Method whose band degraded.
    pub method: u32,
    /// For replica-scoped alerts, the replica whose calibration stays
    /// degraded; `None` for set-scoped (whole-selection) alerts. Set
    /// alerts signal the delivered QoS drifting below the promise —
    /// overload evidence; replica alerts pinpoint one sick member — the
    /// supervisor's quarantine signal.
    pub replica: Option<u64>,
    /// Lower edge of the `Pc` band, rendered with two decimals ("0.90").
    pub band: String,
    /// Rolling mean of the promised `Pc`.
    pub promised: f64,
    /// Rolling observed success rate — the delivered QoS.
    pub observed: f64,
    /// Rolling mean of the model's predicted set probability, when the
    /// planner produced predictions (`None` for baselines / cold starts).
    pub predicted: Option<f64>,
    /// |predicted − observed| over the window, when predictions exist.
    pub calibration_error: Option<f64>,
    /// Lifetime Brier score of the set predictions in this band.
    pub brier: Option<f64>,
    /// Rolling samples backing this alert.
    pub samples: usize,
    /// Journal timestamp of the outcome that tripped the alert.
    pub at_nanos: u64,
}

struct Sample {
    promised: f64,
    predicted: Option<f64>,
    met: bool,
}

struct BandStats {
    ring: VecDeque<Sample>,
    brier_sum: f64,
    brier_n: u64,
    since_alert: usize,
    calibration: Arc<Gauge>,
    brier: Arc<Gauge>,
    violations: Arc<Counter>,
}

struct ReplicaStats {
    ring: VecDeque<(f64, bool)>,
    calibration: Arc<Gauge>,
    since_alert: usize,
}

struct PendingPlan {
    method: u32,
    promised: f64,
    /// `1 − Π(1 − pᵢ)` over the predictions, when the planner had any.
    set_predicted: Option<f64>,
    /// Per-replica predictions not yet matched to a reply.
    replica_predicted: Vec<(u64, f64)>,
}

/// Streaming monitor of promised vs. delivered QoS. See the module docs.
pub struct QosWatchdog {
    obs: Obs,
    config: CalibrationConfig,
    pending: BTreeMap<u64, PendingPlan>,
    bands: HashMap<(u32, u32), BandStats>,
    replicas: HashMap<(u32, u64), ReplicaStats>,
    hooks: Vec<AlertHook>,
    alerts: u64,
}

/// A registered calibration-alert callback.
type AlertHook = Box<dyn FnMut(&CalibrationAlert) + Send>;

impl std::fmt::Debug for QosWatchdog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QosWatchdog")
            .field("pending", &self.pending.len())
            .field("bands", &self.bands.len())
            .field("alerts", &self.alerts)
            .finish()
    }
}

/// Outstanding plans are bounded; a plan whose outcome never arrives
/// (which the gateway does not produce, but a hostile journal replay
/// might) is evicted oldest-first past this cap.
const PENDING_CAP: usize = 8192;

impl QosWatchdog {
    /// A watchdog with the default [`CalibrationConfig`], recording
    /// metrics and alerts into `obs`.
    pub fn new(obs: &Obs) -> Self {
        QosWatchdog::with_config(obs, CalibrationConfig::default())
    }

    /// A watchdog with explicit tunables.
    pub fn with_config(obs: &Obs, config: CalibrationConfig) -> Self {
        QosWatchdog {
            obs: obs.clone(),
            config,
            pending: BTreeMap::new(),
            bands: HashMap::new(),
            replicas: HashMap::new(),
            hooks: Vec::new(),
            alerts: 0,
        }
    }

    /// Registers an alert hook. Hooks run synchronously on the thread
    /// that retires the request, after the journal event is emitted.
    pub fn add_hook(&mut self, hook: impl FnMut(&CalibrationAlert) + Send + 'static) {
        self.hooks.push(Box::new(hook));
    }

    /// Total alerts raised so far.
    pub fn alerts(&self) -> u64 {
        self.alerts
    }

    /// The active tunables.
    pub fn config(&self) -> &CalibrationConfig {
        &self.config
    }

    fn band_of(&self, promised: f64) -> u32 {
        let w = self.config.band_width.max(1e-6);
        ((promised / w).floor() as u32).min((1.0 / w) as u32)
    }

    fn band_label(&self, band: u32) -> String {
        format!("{:.2}", f64::from(band) * self.config.band_width)
    }

    /// Records a planned attempt. `predicted` pairs each selected
    /// replica's index with the model's `P(meet deadline)` for it; empty
    /// when the planner had no predictions (baseline strategy or
    /// cold-start multicast).
    pub fn on_plan(&mut self, seq: u64, method: u32, promised: f64, predicted: &[(u64, f64)]) {
        let set_predicted = if predicted.is_empty() {
            None
        } else {
            Some(
                1.0 - predicted
                    .iter()
                    .map(|(_, p)| 1.0 - p.clamp(0.0, 1.0))
                    .product::<f64>(),
            )
        };
        self.pending.insert(
            seq,
            PendingPlan {
                method,
                promised,
                set_predicted,
                replica_predicted: predicted.to_vec(),
            },
        );
        while self.pending.len() > PENDING_CAP {
            let oldest = *self.pending.keys().next().expect("non-empty");
            self.pending.remove(&oldest);
        }
    }

    /// Records one replica's reply to attempt `seq`: `met` is whether it
    /// arrived within the deadline and `at_nanos` the journal timestamp
    /// of the reply. Replies for unknown or already retired attempts are
    /// ignored.
    pub fn on_replica_reply(&mut self, seq: u64, replica: u64, met: bool, at_nanos: u64) {
        let Some(plan) = self.pending.get_mut(&seq) else {
            return;
        };
        let Some(pos) = plan
            .replica_predicted
            .iter()
            .position(|(r, _)| *r == replica)
        else {
            return;
        };
        let (_, p) = plan.replica_predicted.swap_remove(pos);
        let method = plan.method;
        let key = (method, replica);
        let window = self.config.window;
        let stats = match self.replicas.get_mut(&key) {
            Some(s) => s,
            None => {
                let method_label = key.0.to_string();
                let replica_label = replica.to_string();
                let gauge = self.obs.registry().gauge(
                    "aqua_qos_calibration_error",
                    &[
                        ("scope", "replica"),
                        ("method", method_label.as_str()),
                        ("replica", replica_label.as_str()),
                    ],
                );
                self.replicas.entry(key).or_insert(ReplicaStats {
                    ring: VecDeque::with_capacity(window),
                    calibration: gauge,
                    since_alert: self.config.cooldown,
                })
            }
        };
        if stats.ring.len() >= window {
            stats.ring.pop_front();
        }
        stats.ring.push_back((p.clamp(0.0, 1.0), met));
        stats.since_alert = stats.since_alert.saturating_add(1);
        let n = stats.ring.len() as f64;
        let pred: f64 = stats.ring.iter().map(|(p, _)| p).sum::<f64>() / n;
        let obs_rate = stats.ring.iter().filter(|(_, m)| *m).count() as f64 / n;
        stats
            .calibration
            .set(((pred - obs_rate).abs() * GAUGE_SCALE).round() as i64);
        // A replica whose delivered rate stays `margin` below what the
        // model predicts for it is sick in exactly the sense the elastic
        // supervisor quarantines on: the prediction keeps vouching for it
        // and reality keeps disagreeing.
        let violated = self.config.replica_alerts
            && stats.ring.len() >= self.config.min_samples
            && pred - obs_rate > self.config.margin;
        if !violated || stats.since_alert < self.config.cooldown {
            return;
        }
        stats.since_alert = 0;
        let samples = stats.ring.len();
        self.raise(CalibrationAlert {
            method,
            replica: Some(replica),
            band: String::new(),
            promised: pred,
            observed: obs_rate,
            predicted: Some(pred),
            calibration_error: Some((pred - obs_rate).abs()),
            brier: None,
            samples,
            at_nanos,
        });
    }

    /// Retires attempt `seq` with its logical outcome: `met` is whether
    /// the request's first reply beat the deadline (`false` for a
    /// give-up). Replicas that were predicted but never replied are
    /// scored as misses on a give-up.
    pub fn on_outcome(&mut self, seq: u64, met: bool, at_nanos: u64) {
        let Some(plan) = self.pending.remove(&seq) else {
            return;
        };
        if !met {
            // A give-up means nobody answered in time: every replica the
            // model vouched for missed.
            let unanswered = plan.replica_predicted.clone();
            self.pending.insert(seq, plan);
            for (replica, _) in unanswered {
                self.on_replica_reply(seq, replica, false, at_nanos);
            }
            let plan = self.pending.remove(&seq).expect("reinserted above");
            self.score_set(plan, false, at_nanos);
        } else {
            self.score_set(plan, true, at_nanos);
        }
    }

    /// Drops attempt `seq` without scoring it (superseded by a retry —
    /// the retry carries the logical outcome).
    pub fn on_abandon(&mut self, seq: u64) {
        self.pending.remove(&seq);
    }

    fn score_set(&mut self, plan: PendingPlan, met: bool, at_nanos: u64) {
        let band = self.band_of(plan.promised);
        let band_label = self.band_label(band);
        let key = (plan.method, band);
        let window = self.config.window;
        if !self.bands.contains_key(&key) {
            let registry = self.obs.registry();
            let method_label = plan.method.to_string();
            let labels = [
                ("scope", "set"),
                ("method", method_label.as_str()),
                ("pc_band", band_label.as_str()),
            ];
            let entry = BandStats {
                ring: VecDeque::with_capacity(window),
                brier_sum: 0.0,
                brier_n: 0,
                since_alert: self.config.cooldown,
                calibration: registry.gauge("aqua_qos_calibration_error", &labels),
                brier: registry.gauge("aqua_qos_brier", &labels),
                violations: registry.counter(
                    "aqua_qos_violations_total",
                    &[
                        ("method", method_label.as_str()),
                        ("pc_band", band_label.as_str()),
                    ],
                ),
            };
            self.bands.insert(key, entry);
        }
        let stats = self.bands.get_mut(&key).expect("inserted above");
        if stats.ring.len() >= window {
            stats.ring.pop_front();
        }
        stats.ring.push_back(Sample {
            promised: plan.promised,
            predicted: plan.set_predicted,
            met,
        });
        if let Some(p) = plan.set_predicted {
            let outcome = if met { 1.0 } else { 0.0 };
            stats.brier_sum += (p - outcome) * (p - outcome);
            stats.brier_n += 1;
        }
        stats.since_alert = stats.since_alert.saturating_add(1);

        let n = stats.ring.len();
        let observed = stats.ring.iter().filter(|s| s.met).count() as f64 / n as f64;
        let promised = stats.ring.iter().map(|s| s.promised).sum::<f64>() / n as f64;
        let predicted_samples: Vec<f64> = stats.ring.iter().filter_map(|s| s.predicted).collect();
        let predicted = if predicted_samples.is_empty() {
            None
        } else {
            Some(predicted_samples.iter().sum::<f64>() / predicted_samples.len() as f64)
        };
        let calibration_error = predicted.map(|p| (p - observed).abs());
        let brier = (stats.brier_n > 0).then(|| stats.brier_sum / stats.brier_n as f64);
        if let Some(e) = calibration_error {
            stats.calibration.set((e * GAUGE_SCALE).round() as i64);
        }
        if let Some(b) = brier {
            stats.brier.set((b * GAUGE_SCALE).round() as i64);
        }

        let violated = n >= self.config.min_samples && promised - observed > self.config.margin;
        if !violated || stats.since_alert < self.config.cooldown {
            return;
        }
        stats.since_alert = 0;
        stats.violations.inc();
        self.raise(CalibrationAlert {
            method: plan.method,
            replica: None,
            band: band_label,
            promised,
            observed,
            predicted,
            calibration_error,
            brier,
            samples: n,
            at_nanos,
        });
    }

    /// Journals `alert` and runs every registered hook.
    fn raise(&mut self, alert: CalibrationAlert) {
        self.alerts += 1;
        let mut fields = JsonValue::object()
            .field("method", alert.method)
            .field(
                "scope",
                if alert.replica.is_some() {
                    "replica"
                } else {
                    "set"
                },
            )
            .field("promised", alert.promised)
            .field("observed", alert.observed)
            .field("samples", alert.samples as u64)
            .field("at_ns", alert.at_nanos);
        fields = match alert.replica {
            Some(r) => fields.field("replica", r),
            None => fields.field("pc_band", alert.band.as_str()),
        };
        if let Some(p) = alert.predicted {
            fields = fields.field("predicted", p);
        }
        if let Some(e) = alert.calibration_error {
            fields = fields.field("calibration_error", e);
        }
        if let Some(b) = alert.brier {
            fields = fields.field("brier", b);
        }
        self.obs.journal().emit_event("calibration_alert", fields);
        for hook in &mut self.hooks {
            hook(&alert);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(watchdog: &mut QosWatchdog, seq: u64, p: f64, met: bool) {
        watchdog.on_plan(seq, 0, 0.9, &[(1, p)]);
        watchdog.on_replica_reply(seq, 1, met, seq * 1_000);
        watchdog.on_outcome(seq, met, seq * 1_000);
    }

    #[test]
    fn well_calibrated_traffic_never_alerts() {
        let (obs, reader) = Obs::in_memory();
        let mut w = QosWatchdog::new(&obs);
        // 95% success against a 0.9 promise: comfortably inside margin.
        for seq in 0..200 {
            feed(&mut w, seq, 0.95, seq % 20 != 0);
        }
        assert_eq!(w.alerts(), 0);
        assert!(reader.lines_containing("calibration_alert").is_empty());
        let prom = obs.prometheus();
        assert!(prom.contains("aqua_qos_calibration_error"), "{prom}");
        let violations = prom
            .lines()
            .find(|l| l.starts_with("aqua_qos_violations_total{"))
            .expect("series registered");
        assert!(violations.ends_with(" 0"), "no violations: {violations}");
    }

    #[test]
    fn drift_below_promise_raises_rate_limited_alerts() {
        let (obs, reader) = Obs::in_memory();
        let mut w = QosWatchdog::with_config(
            &obs,
            CalibrationConfig {
                min_samples: 10,
                cooldown: 50,
                ..CalibrationConfig::default()
            },
        );
        let mut seen = Vec::new();
        // Hook observes the same alerts the journal records.
        let log = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let log2 = log.clone();
        w.add_hook(move |a| log2.lock().unwrap().push(a.observed));
        // Model promises 0.9 and predicts 0.95, reality delivers 0.5.
        for seq in 0..150 {
            feed(&mut w, seq, 0.95, seq % 2 == 0);
            seen.push(seq);
        }
        assert!(w.alerts() >= 2, "sustained drift keeps alerting");
        assert!(
            w.alerts() <= 4,
            "cooldown bounds the alert rate, got {}",
            w.alerts()
        );
        let lines = reader.lines_containing("\"type\":\"calibration_alert\"");
        assert_eq!(lines.len() as u64, w.alerts());
        assert!(lines[0].contains("\"pc_band\":\"0.90\""), "{}", lines[0]);
        assert!(lines[0].contains("\"promised\":0.9"), "{}", lines[0]);
        assert_eq!(log.lock().unwrap().len() as u64, w.alerts());
        let prom = obs.prometheus();
        assert!(prom.contains("aqua_qos_violations_total"), "{prom}");
        assert!(
            prom.contains("aqua_qos_calibration_error{scope=\"set\""),
            "{prom}"
        );
        assert!(prom.contains("aqua_qos_brier"), "{prom}");
    }

    #[test]
    fn per_replica_calibration_tracks_each_member() {
        let (obs, _reader) = Obs::in_memory();
        let mut w = QosWatchdog::new(&obs);
        for seq in 0..40 {
            // Replica 1 predicted 0.9 and always meets; replica 2
            // predicted 0.9 and always misses.
            w.on_plan(seq, 7, 0.9, &[(1, 0.9), (2, 0.9)]);
            w.on_replica_reply(seq, 1, true, seq);
            w.on_replica_reply(seq, 2, false, seq);
            w.on_outcome(seq, true, seq);
        }
        let prom = obs.prometheus();
        let line_for = |replica: &str| {
            prom.lines()
                .find(|l| {
                    l.starts_with("aqua_qos_calibration_error")
                        && l.contains("scope=\"replica\"")
                        && l.contains(&format!("replica=\"{replica}\""))
                })
                .unwrap_or_else(|| panic!("no replica {replica} series in {prom}"))
                .to_owned()
        };
        let value = |line: &str| line.rsplit(' ').next().unwrap().parse::<i64>().unwrap();
        // |0.9 − 1.0| = 0.1 → 1000 bps; |0.9 − 0.0| = 0.9 → 9000 bps.
        assert_eq!(value(&line_for("1")), 1000);
        assert_eq!(value(&line_for("2")), 9000);
    }

    #[test]
    fn sick_replica_raises_replica_scoped_alerts_when_enabled() {
        let (obs, reader) = Obs::in_memory();
        let mut w = QosWatchdog::with_config(
            &obs,
            CalibrationConfig {
                min_samples: 10,
                cooldown: 50,
                replica_alerts: true,
                ..CalibrationConfig::default()
            },
        );
        let seen = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        w.add_hook(move |a| seen2.lock().unwrap().push(a.replica));
        for seq in 0..40 {
            // Replica 1 healthy, replica 2 predicted 0.9 but always late.
            w.on_plan(seq, 0, 0.9, &[(1, 0.9), (2, 0.9)]);
            w.on_replica_reply(seq, 1, true, seq * 1_000);
            w.on_replica_reply(seq, 2, false, seq * 1_000);
            w.on_outcome(seq, true, seq * 1_000);
        }
        let replica_alerts: Vec<Option<u64>> = seen
            .lock()
            .unwrap()
            .iter()
            .copied()
            .filter(Option::is_some)
            .collect();
        assert!(!replica_alerts.is_empty(), "sick replica alerted");
        assert!(
            replica_alerts.iter().all(|r| *r == Some(2)),
            "only the sick replica alerts: {replica_alerts:?}"
        );
        let lines = reader.lines_containing("\"scope\":\"replica\"");
        assert!(!lines.is_empty());
        assert!(lines[0].contains("\"replica\":2"), "{}", lines[0]);
        // The healthy fleet raised no set-scoped alert.
        assert!(reader.lines_containing("\"scope\":\"set\"").is_empty());
    }

    #[test]
    fn replica_alerts_are_off_by_default() {
        let (obs, reader) = Obs::in_memory();
        let mut w = QosWatchdog::with_config(
            &obs,
            CalibrationConfig {
                min_samples: 10,
                ..CalibrationConfig::default()
            },
        );
        for seq in 0..80 {
            w.on_plan(seq, 0, 0.9, &[(2, 0.9)]);
            w.on_replica_reply(seq, 2, false, seq);
            w.on_outcome(seq, true, seq);
        }
        assert!(reader.lines_containing("\"scope\":\"replica\"").is_empty());
    }

    #[test]
    fn give_up_scores_unanswered_replicas_as_misses() {
        let (obs, _reader) = Obs::in_memory();
        let mut w = QosWatchdog::new(&obs);
        for seq in 0..20 {
            w.on_plan(seq, 0, 0.9, &[(5, 0.99)]);
            w.on_outcome(seq, false, seq); // give-up: replica 5 never replied
        }
        let prom = obs.prometheus();
        assert!(
            prom.contains("replica=\"5\""),
            "unanswered replica still scored: {prom}"
        );
    }

    #[test]
    fn abandoned_attempts_are_not_scored() {
        let (obs, reader) = Obs::in_memory();
        let mut w = QosWatchdog::with_config(
            &obs,
            CalibrationConfig {
                min_samples: 5,
                ..CalibrationConfig::default()
            },
        );
        for seq in 0..50 {
            w.on_plan(seq, 0, 0.9, &[(1, 0.99)]);
            w.on_abandon(seq); // superseded — outcome carried by the retry
        }
        assert_eq!(w.alerts(), 0);
        assert!(reader.lines_containing("calibration_alert").is_empty());
    }

    #[test]
    fn baseline_without_predictions_still_audits_the_promise() {
        let (obs, reader) = Obs::in_memory();
        let mut w = QosWatchdog::with_config(
            &obs,
            CalibrationConfig {
                min_samples: 10,
                ..CalibrationConfig::default()
            },
        );
        for seq in 0..40 {
            w.on_plan(seq, 0, 0.9, &[]); // round-robin etc.: no model
            w.on_outcome(seq, false, seq);
        }
        assert!(w.alerts() >= 1, "promise audit works without a model");
        let line = &reader.lines_containing("calibration_alert")[0];
        assert!(!line.contains("calibration_error"), "{line}");
    }
}
