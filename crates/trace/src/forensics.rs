//! Deadline-miss forensics: attribute every miss, audit every promise.
//!
//! Given a replayed journal (see [`crate::replay`]), the analyzer:
//!
//! 1. rebuilds the span forest and folds retry chains into *logical
//!    requests*;
//! 2. classifies each logical request: delivered in time, delivered
//!    late, or gave up;
//! 3. attributes every miss to a **dominant stage**:
//!    * `active_fault` — a fault window (from the journal's `fault`
//!      events, joined by stable window id and recomputed by overlap)
//!      covered a selected replica during the span;
//!    * `supervisor_drain` — every implicated window was a `drain`: the
//!      elastic supervisor was rolling-restarting a selected replica, so
//!      the miss is charged to the supervisor rather than masquerading
//!      as an environmental fault or queue spike;
//!    * `queue_spike` — the first reply's queueing delay `tq` dominated
//!      its latency decomposition;
//!    * `wire_delay` — the gateway/transmission delay `td` dominated;
//!    * `selection_underestimate` — the service time dominated, or
//!      nobody replied at all: the model vouched for replicas that were
//!      simply slower than predicted;
//! 4. checks journal invariants:
//!    * **no-miss-without-callback** — every miss whose recorded verdict
//!      says the QoS was violated must carry a callback flag somewhere
//!      in its attempt chain;
//!    * **no-orphan-span** — every `retry_of` link resolves to a span in
//!      the journal.
//!
//! The result is a [`ForensicsReport`] renderable as JSON or a ranked
//! terminal table, with a `--check` mode for CI.

use std::collections::BTreeMap;

use aqua_obs::journal::{RequestSpan, SpanOutcome};
use aqua_obs::json::JsonValue;

use crate::replay::{JournalData, SpanForest};

/// A fault window reconstructed from the journal's `fault` events.
#[derive(Clone, Debug)]
pub struct JournalFaultWindow {
    /// Stable window id (the fault plan index).
    pub id: u64,
    /// Fault kind label (`"pause"`, `"degrade"`, …).
    pub kind: String,
    /// Targeted replica; `None` for network-wide windows.
    pub replica: Option<u64>,
    /// Window start, nanoseconds.
    pub start_nanos: u64,
    /// Window end, nanoseconds (`u64::MAX` when it never cleared).
    pub end_nanos: u64,
}

impl JournalFaultWindow {
    fn overlaps(&self, selected: &[u64], from: u64, to: u64) -> bool {
        let targeted = self.replica.is_none_or(|r| selected.contains(&r));
        targeted && self.start_nanos <= to && self.end_nanos > from
    }
}

/// Extracts fault windows from parsed journal events, merging the
/// `active`/`cleared` edge pairs by stable window id.
pub fn fault_windows(events: &[JsonValue]) -> Vec<JournalFaultWindow> {
    let mut windows: BTreeMap<u64, JournalFaultWindow> = BTreeMap::new();
    for event in events {
        let Some("fault") = event.get("type").and_then(JsonValue::as_str) else {
            continue;
        };
        let Some(id) = event.get("window").and_then(JsonValue::as_u64) else {
            continue;
        };
        let at = event.get("at_ns").and_then(JsonValue::as_u64).unwrap_or(0);
        let phase = event.get("phase").and_then(JsonValue::as_str).unwrap_or("");
        let entry = windows.entry(id).or_insert_with(|| JournalFaultWindow {
            id,
            kind: event
                .get("kind")
                .and_then(JsonValue::as_str)
                .unwrap_or("unknown")
                .to_owned(),
            replica: event.get("replica").and_then(JsonValue::as_u64),
            start_nanos: event
                .get("start_ns")
                .and_then(JsonValue::as_u64)
                .unwrap_or(at),
            end_nanos: event
                .get("end_ns")
                .and_then(JsonValue::as_u64)
                .unwrap_or(u64::MAX),
        });
        // Older journals without start_ns/end_ns: derive the window from
        // its two edges.
        match phase {
            "active" => entry.start_nanos = entry.start_nanos.min(at),
            "cleared" if entry.end_nanos == u64::MAX => entry.end_nanos = at,
            _ => {}
        }
    }
    windows.into_values().collect()
}

/// The stage a miss is attributed to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum MissStage {
    /// A fault window overlapped the span on a selected replica.
    ActiveFault,
    /// Every implicated window was a supervisor drain: the miss happened
    /// while the elastic supervisor was draining a selected replica for a
    /// rolling restart. Kept distinct from [`MissStage::ActiveFault`] so
    /// supervisor-induced misses are charged to the supervisor, not
    /// mistaken for environmental faults or queue spikes.
    SupervisorDrain,
    /// Queueing delay dominated the decomposition.
    QueueSpike,
    /// Gateway/wire delay dominated the decomposition.
    WireDelay,
    /// Service time dominated, or no replica replied at all.
    SelectionUnderestimate,
}

impl MissStage {
    /// Stable label for reports.
    pub fn as_str(self) -> &'static str {
        match self {
            MissStage::ActiveFault => "active_fault",
            MissStage::SupervisorDrain => "supervisor_drain",
            MissStage::QueueSpike => "queue_spike",
            MissStage::WireDelay => "wire_delay",
            MissStage::SelectionUnderestimate => "selection_underestimate",
        }
    }
}

/// How one logical request missed its deadline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MissKind {
    /// Every attempt gave up; nothing was delivered.
    GaveUp,
    /// A reply was delivered, but after the deadline.
    Late,
}

/// One missed logical request.
#[derive(Clone, Debug)]
pub struct Miss {
    /// Seq of the root attempt (the logical request id).
    pub root_seq: u64,
    /// Seq of the attempt that resolved the request.
    pub final_seq: u64,
    /// Give-up or late delivery.
    pub kind: MissKind,
    /// Attributed dominant stage.
    pub stage: MissStage,
    /// Fault windows implicated (span tags ∪ recomputed overlaps).
    pub fault_windows: Vec<u64>,
    /// The deadline the request carried (nanoseconds).
    pub deadline_nanos: u64,
    /// Response time of the delivered reply, for late misses.
    pub response_nanos: Option<u64>,
    /// The model's predicted set probability at plan time, if recorded.
    pub predicted: Option<f64>,
}

/// The complete analysis of one journal.
#[derive(Clone, Debug, Default)]
pub struct ForensicsReport {
    /// Logical requests (retry chains folded), probes excluded.
    pub requests: usize,
    /// Attempts (spans), probes excluded.
    pub attempts: usize,
    /// Probe spans skipped.
    pub probes: usize,
    /// Requests still pending when the journal was flushed (a truncated
    /// run, not a miss).
    pub pending: usize,
    /// Every missed logical request, attributed.
    pub misses: Vec<Miss>,
    /// Invariant violations, human-readable.
    pub invariant_violations: Vec<String>,
    /// Journal lines that failed to parse.
    pub bad_lines: usize,
    /// `calibration_alert` events observed in the journal.
    pub calibration_alerts: usize,
    /// Fault windows reconstructed from the journal.
    pub fault_window_count: usize,
}

impl ForensicsReport {
    /// Misses grouped by stage, descending by count.
    pub fn ranked_stages(&self) -> Vec<(MissStage, usize)> {
        let mut counts: BTreeMap<MissStage, usize> = BTreeMap::new();
        for miss in &self.misses {
            *counts.entry(miss.stage).or_default() += 1;
        }
        let mut ranked: Vec<(MissStage, usize)> = counts.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked
    }

    /// Miss rate over resolved logical requests.
    pub fn miss_rate(&self) -> f64 {
        let resolved = self.requests.saturating_sub(self.pending);
        if resolved == 0 {
            0.0
        } else {
            self.misses.len() as f64 / resolved as f64
        }
    }

    /// Renders the report as a JSON document.
    pub fn to_json(&self) -> JsonValue {
        let stages = self
            .ranked_stages()
            .into_iter()
            .fold(JsonValue::object(), |acc, (stage, count)| {
                acc.field(stage.as_str(), count as u64)
            });
        let misses: Vec<JsonValue> = self
            .misses
            .iter()
            .map(|m| {
                let mut obj = JsonValue::object()
                    .field("root_seq", m.root_seq)
                    .field("final_seq", m.final_seq)
                    .field(
                        "kind",
                        match m.kind {
                            MissKind::GaveUp => "gave_up",
                            MissKind::Late => "late",
                        },
                    )
                    .field("stage", m.stage.as_str())
                    .field("fault_windows", m.fault_windows.clone())
                    .field("deadline_ns", m.deadline_nanos)
                    .field("response_ns", m.response_nanos);
                if let Some(p) = m.predicted {
                    obj = obj.field("predicted", p);
                }
                obj.build()
            })
            .collect();
        JsonValue::object()
            .field("requests", self.requests as u64)
            .field("attempts", self.attempts as u64)
            .field("probes", self.probes as u64)
            .field("pending", self.pending as u64)
            .field("misses", self.misses.len() as u64)
            .field("miss_rate", self.miss_rate())
            .field("stages", stages)
            .field("miss_details", JsonValue::Array(misses))
            .field("invariant_violations", self.invariant_violations.clone())
            .field("bad_lines", self.bad_lines as u64)
            .field("calibration_alerts", self.calibration_alerts as u64)
            .field("fault_windows", self.fault_window_count as u64)
            .build()
    }

    /// Renders a ranked, human-readable report.
    pub fn render_terminal(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "deadline-miss forensics");
        let _ = writeln!(
            out,
            "  requests: {} ({} attempts, {} probes, {} pending)",
            self.requests, self.attempts, self.probes, self.pending
        );
        let _ = writeln!(
            out,
            "  misses:   {} ({:.2}% of resolved requests)",
            self.misses.len(),
            self.miss_rate() * 100.0
        );
        let _ = writeln!(
            out,
            "  journal:  {} fault windows, {} calibration alerts, {} bad lines",
            self.fault_window_count, self.calibration_alerts, self.bad_lines
        );
        if !self.misses.is_empty() {
            let _ = writeln!(out, "  dominant stages (ranked):");
            for (stage, count) in self.ranked_stages() {
                let share = count as f64 / self.misses.len() as f64 * 100.0;
                let _ = writeln!(
                    out,
                    "    {:<24} {:>6}  {:>5.1}%",
                    stage.as_str(),
                    count,
                    share
                );
            }
        }
        if self.invariant_violations.is_empty() {
            let _ = writeln!(out, "  invariants: OK");
        } else {
            let _ = writeln!(
                out,
                "  invariants: {} VIOLATED",
                self.invariant_violations.len()
            );
            for v in &self.invariant_violations {
                let _ = writeln!(out, "    ! {v}");
            }
        }
        out
    }
}

fn dominant_stage(span: &RequestSpan) -> MissStage {
    // Prefer the reply that resolved the request; a give-up span keeps
    // whatever late replies trickled in before it retired.
    let reply = span
        .replies
        .iter()
        .find(|r| r.first)
        .or_else(|| span.replies.last());
    match reply {
        None => MissStage::SelectionUnderestimate,
        Some(r) => {
            if r.queue_nanos >= r.service_nanos && r.queue_nanos >= r.gateway_nanos {
                MissStage::QueueSpike
            } else if r.gateway_nanos >= r.service_nanos && r.gateway_nanos > r.queue_nanos {
                MissStage::WireDelay
            } else {
                // Service time dominated: the model's per-replica service
                // distribution was optimistic at selection time.
                MissStage::SelectionUnderestimate
            }
        }
    }
}

fn span_fault_overlap(span: &RequestSpan, windows: &[JournalFaultWindow]) -> Vec<u64> {
    let end = span
        .end_nanos
        .unwrap_or_else(|| span.t1_nanos.saturating_add(span.deadline_nanos));
    let mut ids: Vec<u64> = span.fault_windows.clone();
    for w in windows {
        if w.overlaps(&span.selected, span.t1_nanos, end) && !ids.contains(&w.id) {
            ids.push(w.id);
        }
    }
    ids.sort_unstable();
    ids
}

/// Runs the full analysis over a replayed journal.
pub fn analyze(data: &JournalData) -> ForensicsReport {
    let forest = SpanForest::build(&data.events);
    let windows = fault_windows(&data.events);
    let mut report = ForensicsReport {
        bad_lines: data.bad_lines,
        fault_window_count: windows.len(),
        calibration_alerts: data
            .events
            .iter()
            .filter(|e| e.get("type").and_then(JsonValue::as_str) == Some("calibration_alert"))
            .count(),
        ..ForensicsReport::default()
    };

    for seq in forest.orphans() {
        report.invariant_violations.push(format!(
            "no-orphan-span: span {seq} retries a seq absent from the journal"
        ));
    }

    for root in forest.roots() {
        if root.probe {
            report.probes += 1;
            continue;
        }
        let chain = forest.chain(root.seq);
        report.requests += 1;
        report.attempts += chain.len();
        // The attempt that resolved the request: the delivered one if
        // any, else the last attempt.
        let resolved = chain
            .iter()
            .find(|s| s.outcome == SpanOutcome::Delivered)
            .copied()
            .or_else(|| chain.last().copied());
        let Some(final_span) = resolved else { continue };
        let (kind, response) = match final_span.outcome {
            SpanOutcome::Pending => {
                report.pending += 1;
                continue;
            }
            SpanOutcome::Superseded => {
                // A chain that ends superseded lost its retry's span; the
                // retry-link audit above already flags orphans, so treat
                // it as pending.
                report.pending += 1;
                continue;
            }
            SpanOutcome::GaveUp => (MissKind::GaveUp, None),
            SpanOutcome::Delivered => {
                let response = final_span
                    .replies
                    .iter()
                    .find(|r| r.first)
                    .map(|r| r.response_nanos);
                // Response measured from the *root* submit time: a retry
                // that delivered within its own deadline can still miss
                // the logical request's deadline.
                let logical_response = final_span
                    .end_nanos
                    .map(|end| end.saturating_sub(root.t1_nanos));
                let late = logical_response
                    .or(response)
                    .is_some_and(|r| r > root.deadline_nanos);
                if !late {
                    continue;
                }
                (MissKind::Late, logical_response.or(response))
            }
        };

        // Attribution: faults first (joined by window id), then the
        // latency decomposition of the resolving attempt.
        let implicated: Vec<u64> = chain
            .iter()
            .flat_map(|s| span_fault_overlap(s, &windows))
            .collect::<std::collections::BTreeSet<u64>>()
            .into_iter()
            .collect();
        // Drain windows only win when nothing environmental is implicated:
        // a genuine fault overlapping a drain is still an active fault.
        let stage = if implicated.is_empty() {
            dominant_stage(final_span)
        } else if implicated.iter().all(|id| {
            windows
                .iter()
                .find(|w| w.id == *id)
                .is_some_and(|w| w.kind == "drain")
        }) {
            MissStage::SupervisorDrain
        } else {
            MissStage::ActiveFault
        };

        // no-miss-without-callback: a miss whose recorded verdict says
        // the QoS was violated must have notified the client.
        let qos_violated = chain.iter().any(|s| {
            s.give_up_verdict.as_deref() == Some("failure_qos_violated")
                || s.replies
                    .iter()
                    .any(|r| r.verdict.as_deref() == Some("failure_qos_violated"))
        });
        let callback = chain.iter().any(|s| s.callback);
        if qos_violated && !callback {
            report.invariant_violations.push(format!(
                "no-miss-without-callback: request {} missed with a QoS-violated verdict but no callback",
                root.seq
            ));
        }

        report.misses.push(Miss {
            root_seq: root.seq,
            final_seq: final_span.seq,
            kind,
            stage,
            fault_windows: implicated,
            deadline_nanos: root.deadline_nanos,
            response_nanos: response,
            predicted: final_span.predicted_set_probability(),
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_obs::journal::ReplyObservation;

    fn reply(ts: u64, tq: u64, td: u64, at: u64, verdict: Option<&str>) -> ReplyObservation {
        ReplyObservation {
            replica: 1,
            at_nanos: at,
            service_nanos: ts,
            queue_nanos: tq,
            gateway_nanos: td,
            response_nanos: ts + tq + td,
            first: true,
            verdict: verdict.map(str::to_owned),
            ingest_nanos: None,
        }
    }

    fn span(seq: u64, outcome: SpanOutcome) -> RequestSpan {
        let mut s = RequestSpan::begin(seq, 0, seq * 1_000, seq * 1_000);
        s.deadline_nanos = 100;
        s.selected = vec![1];
        s.outcome = outcome;
        s
    }

    fn data(spans: Vec<RequestSpan>, extra: Vec<JsonValue>) -> JournalData {
        let mut events: Vec<JsonValue> = spans.iter().map(RequestSpan::to_json).collect();
        events.extend(extra);
        JournalData {
            events,
            bad_lines: 0,
            files: Vec::new(),
        }
    }

    fn fault_event(window: u64, replica: u64, start: u64, end: u64) -> JsonValue {
        JsonValue::object()
            .field("type", "fault")
            .field("phase", "active")
            .field("kind", "degrade")
            .field("window", window)
            .field("replica", replica)
            .field("at_ns", start)
            .field("start_ns", start)
            .field("end_ns", end)
            .build()
    }

    #[test]
    fn timely_requests_produce_no_misses() {
        let mut s = span(0, SpanOutcome::Delivered);
        s.replies.push(reply(40, 10, 10, 60, Some("timely")));
        s.end_nanos = Some(60);
        let report = analyze(&data(vec![s], vec![]));
        assert_eq!(report.requests, 1);
        assert!(report.misses.is_empty());
        assert!(report.invariant_violations.is_empty());
    }

    #[test]
    fn every_miss_is_attributed() {
        // Late delivery, queue-dominated.
        let mut queue = span(0, SpanOutcome::Delivered);
        queue.replies.push(reply(20, 200, 10, 230, Some("failure")));
        queue.end_nanos = Some(230);
        // Late delivery, wire-dominated.
        let mut wire = span(1, SpanOutcome::Delivered);
        wire.replies
            .push(reply(20, 10, 400, 1_430, Some("failure")));
        wire.end_nanos = Some(1_430);
        // Late delivery, service-dominated → selection underestimate.
        let mut service = span(2, SpanOutcome::Delivered);
        service
            .replies
            .push(reply(300, 10, 10, 2_320, Some("failure")));
        service.end_nanos = Some(2_320);
        // Give-up with no replies → selection underestimate.
        let gave_up = span(3, SpanOutcome::GaveUp);
        let report = analyze(&data(vec![queue, wire, service, gave_up], vec![]));
        assert_eq!(report.misses.len(), 4, "{report:?}");
        let stages: Vec<MissStage> = report.misses.iter().map(|m| m.stage).collect();
        assert_eq!(
            stages,
            vec![
                MissStage::QueueSpike,
                MissStage::WireDelay,
                MissStage::SelectionUnderestimate,
                MissStage::SelectionUnderestimate,
            ]
        );
        assert!(
            report.misses.iter().all(|m| !m.stage.as_str().is_empty()),
            "100% attribution"
        );
        let ranked = report.ranked_stages();
        assert_eq!(ranked[0], (MissStage::SelectionUnderestimate, 2));
    }

    #[test]
    fn fault_windows_win_attribution_via_id_join() {
        // The span itself was tagged with window 3 at emit time…
        let mut tagged = span(0, SpanOutcome::GaveUp);
        tagged.fault_windows = vec![3];
        // …and another span overlaps window 7 only by recomputation.
        let mut untagged = span(10, SpanOutcome::GaveUp);
        untagged.t1_nanos = 10_000;
        let events = vec![fault_event(7, 1, 9_000, 11_000)];
        let report = analyze(&data(vec![tagged, untagged], events));
        assert_eq!(report.misses.len(), 2);
        assert!(report
            .misses
            .iter()
            .all(|m| m.stage == MissStage::ActiveFault));
        assert_eq!(report.misses[0].fault_windows, vec![3]);
        assert_eq!(report.misses[1].fault_windows, vec![7]);
        assert_eq!(report.fault_window_count, 1);
    }

    fn drain_event(window: u64, replica: u64, start: u64, end: u64) -> JsonValue {
        JsonValue::object()
            .field("type", "fault")
            .field("phase", "active")
            .field("kind", "drain")
            .field("window", window)
            .field("replica", replica)
            .field("at_ns", start)
            .field("start_ns", start)
            .field("end_ns", end)
            .build()
    }

    #[test]
    fn drain_only_misses_are_attributed_to_the_supervisor() {
        // Miss wholly inside a drain window on the selected replica.
        let mut drained = span(0, SpanOutcome::GaveUp);
        drained.t1_nanos = 10_000;
        // Miss overlapping both a drain and a real fault window.
        let mut mixed = span(10, SpanOutcome::GaveUp);
        mixed.t1_nanos = 10_000;
        mixed.selected = vec![2];
        let events = vec![
            drain_event(1_000_000, 1, 9_000, 12_000),
            drain_event(1_000_001, 2, 9_000, 12_000),
            fault_event(3, 2, 9_500, 11_000),
        ];
        let report = analyze(&data(vec![drained, mixed], events));
        assert_eq!(report.misses.len(), 2);
        assert_eq!(report.misses[0].stage, MissStage::SupervisorDrain);
        assert_eq!(report.misses[0].fault_windows, vec![1_000_000]);
        // The real fault wins over the concurrent drain.
        assert_eq!(report.misses[1].stage, MissStage::ActiveFault);
        let json = report.to_json().render();
        assert!(json.contains("\"supervisor_drain\":1"), "{json}");
    }

    #[test]
    fn missing_callback_on_violated_qos_is_flagged() {
        let mut bad = span(0, SpanOutcome::GaveUp);
        bad.give_up_verdict = Some("failure_qos_violated".to_owned());
        bad.callback = false;
        let mut good = span(1, SpanOutcome::GaveUp);
        good.give_up_verdict = Some("failure_qos_violated".to_owned());
        good.callback = true;
        // A miss while QoS is still within spec needs no callback.
        let mut tolerated = span(2, SpanOutcome::GaveUp);
        tolerated.give_up_verdict = Some("failure".to_owned());
        let report = analyze(&data(vec![bad, good, tolerated], vec![]));
        assert_eq!(report.misses.len(), 3);
        assert_eq!(report.invariant_violations.len(), 1);
        assert!(
            report.invariant_violations[0].contains("no-miss-without-callback"),
            "{:?}",
            report.invariant_violations
        );
        assert!(report.invariant_violations[0].contains("request 0"));
    }

    #[test]
    fn retry_chains_fold_into_one_logical_request() {
        // Attempt 0 superseded; retry 1 delivered late relative to the
        // root's deadline.
        let mut first = span(0, SpanOutcome::Superseded);
        first.end_nanos = Some(90);
        let mut retry = span(5, SpanOutcome::Delivered);
        retry.retry_of = Some(0);
        retry.t1_nanos = 100;
        retry.replies.push(reply(30, 5, 5, 140, Some("failure")));
        retry.end_nanos = Some(140);
        let report = analyze(&data(vec![first, retry], vec![]));
        assert_eq!(report.requests, 1, "chain folds");
        assert_eq!(report.attempts, 2);
        assert_eq!(report.misses.len(), 1);
        let miss = &report.misses[0];
        assert_eq!(miss.root_seq, 0);
        assert_eq!(miss.final_seq, 5);
        assert_eq!(miss.kind, MissKind::Late);
        // 140 − t1(root=0) = 140 > deadline 100.
        assert_eq!(miss.response_nanos, Some(140));
    }

    #[test]
    fn report_renders_json_and_terminal() {
        let mut miss = span(0, SpanOutcome::GaveUp);
        miss.predicted = vec![0.9, 0.8];
        let report = analyze(&data(vec![miss, span(1, SpanOutcome::Pending)], vec![]));
        assert_eq!(report.pending, 1);
        let json = report.to_json().render();
        for needle in [
            "\"requests\":2",
            "\"misses\":1",
            "\"selection_underestimate\":1",
            "\"invariant_violations\":[]",
            "\"predicted\":0.98",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        let text = report.render_terminal();
        assert!(text.contains("dominant stages"));
        assert!(text.contains("invariants: OK"));
    }

    #[test]
    fn probes_are_excluded() {
        let mut probe = span(0, SpanOutcome::GaveUp);
        probe.probe = true;
        let report = analyze(&data(vec![probe], vec![]));
        assert_eq!(report.requests, 0);
        assert_eq!(report.probes, 1);
        assert!(report.misses.is_empty());
    }
}
