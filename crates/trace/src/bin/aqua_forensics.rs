//! `aqua_forensics` — replay a journal, attribute every deadline miss.
//!
//! ```text
//! aqua_forensics <journal.jsonl | obs-dir> [--check] [--max-miss-rate F]
//!                [--json PATH] [--quiet]
//! ```
//!
//! The positional argument is either one JSONL journal file or an
//! observability directory (`journal.jsonl` plus rotated
//! `journal.jsonl.N` segments, as written by `Obs::to_dir_rotating`).
//!
//! `--check` turns the analyzer into a CI gate: exit 1 when any journal
//! invariant is violated (orphan spans, a QoS-violated miss without a
//! callback), when any line failed to parse, or when `--max-miss-rate`
//! (a fraction, e.g. `0.5`) is exceeded.

use std::process::ExitCode;

use aqua_trace::forensics::analyze;
use aqua_trace::replay::read_journal;

struct Args {
    path: String,
    check: bool,
    max_miss_rate: Option<f64>,
    json_out: Option<String>,
    quiet: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: aqua_forensics <journal.jsonl | obs-dir> [--check] \
         [--max-miss-rate F] [--json PATH] [--quiet]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        path: String::new(),
        check: false,
        max_miss_rate: None,
        json_out: None,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => args.check = true,
            "--quiet" => args.quiet = true,
            "--max-miss-rate" => {
                let v = it.next().unwrap_or_else(|| usage());
                match v.parse::<f64>() {
                    Ok(rate) if (0.0..=1.0).contains(&rate) => args.max_miss_rate = Some(rate),
                    _ => usage(),
                }
            }
            "--json" => args.json_out = Some(it.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') && args.path.is_empty() => {
                args.path = other.to_owned();
            }
            _ => usage(),
        }
    }
    if args.path.is_empty() {
        usage();
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let data = match read_journal(&args.path) {
        Ok(data) => data,
        Err(e) => {
            eprintln!("aqua_forensics: cannot read {}: {e}", args.path);
            return ExitCode::from(2);
        }
    };
    let report = analyze(&data);
    if !args.quiet {
        print!("{}", report.render_terminal());
    }
    if let Some(path) = &args.json_out {
        if let Err(e) = std::fs::write(path, report.to_json().render_pretty()) {
            eprintln!("aqua_forensics: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }
    if args.check {
        let mut failures = Vec::new();
        if !report.invariant_violations.is_empty() {
            failures.push(format!(
                "{} invariant violation(s)",
                report.invariant_violations.len()
            ));
        }
        if report.bad_lines > 0 {
            failures.push(format!("{} unparseable journal line(s)", report.bad_lines));
        }
        if let Some(max) = args.max_miss_rate {
            if report.miss_rate() > max {
                failures.push(format!(
                    "miss rate {:.4} exceeds --max-miss-rate {max}",
                    report.miss_rate()
                ));
            }
        }
        if !failures.is_empty() {
            eprintln!("aqua_forensics --check FAILED: {}", failures.join("; "));
            return ExitCode::FAILURE;
        }
        if !args.quiet {
            println!("aqua_forensics --check passed");
        }
    }
    ExitCode::SUCCESS
}
