//! # aqua-strategies — pluggable replica selection policies
//!
//! The paper's contribution is one point in a design space of selection
//! policies (§1, §7 survey several others). This crate defines a common
//! [`SelectionStrategy`] interface used by the timing fault handler, and
//! implements:
//!
//! * [`ModelBased`] — the DSN 2001 algorithm: probabilistic response-time
//!   model + Algorithm 1 (the paper);
//! * [`Random`] — k replicas uniformly at random;
//! * [`FastestMean`] — the k replicas with the best historical **average**
//!   response time (à la Sayal et al. \[19\]);
//! * [`LeastLoaded`] — the k replicas with the shortest request queues
//!   (à la Fei et al. \[5\]);
//! * [`Nearest`] — the k replicas with the smallest last measured network
//!   delay (static-distance selection à la Heidemann \[9\]);
//! * [`RoundRobin`] — rotate through the replicas, k at a time;
//! * [`StaticK`] — a fixed set of k replicas (no adaptivity at all);
//! * [`AllReplicas`] — full active replication (maximum redundancy).
//!
//! Every strategy returns a *set* of replicas; the handler multicasts to the
//! set and delivers the earliest reply, so redundancy and failure behaviour
//! are directly comparable across strategies (ablation A1 in DESIGN.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use aqua_core::model::{ModelCache, ModelCacheStats, ModelConfig, ResponseTimeModel};
use aqua_core::overhead::OverheadTracker;
use aqua_core::qos::{QosSpec, ReplicaId};
use aqua_core::repository::{InfoRepository, MethodId, ReplicaStats};
use aqua_core::scheduler::ColdStartPolicy;
use aqua_core::select::{select_replicas_tolerating, Candidate};
use aqua_core::time::{Duration, Instant};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Everything a strategy may consult when choosing replicas.
#[derive(Debug)]
pub struct SelectionInput<'a> {
    /// The client gateway's information repository (§5.2).
    pub repository: &'a InfoRepository,
    /// The client's QoS specification.
    pub qos: &'a QosSpec,
    /// The method being invoked, if the middleware classifies requests.
    pub method: Option<MethodId>,
    /// Current (virtual or wall) time.
    pub now: Instant,
    /// Replicas the handler has ruled out for this particular selection —
    /// typically the members already tried by a timed-out request being
    /// retried. They must be invisible to the strategy (as if absent from
    /// the repository), not merely filtered from its answer: a strategy
    /// that reasons about the candidate set as a whole (Algorithm 1's
    /// acceptance test, round-robin rotation, …) would otherwise still
    /// account for them.
    pub exclude: &'a [ReplicaId],
}

impl<'a> SelectionInput<'a> {
    /// `(replica, stats)` pairs eligible for this selection: not on
    /// probation and not excluded.
    pub fn candidates(&self) -> impl Iterator<Item = (ReplicaId, &'a ReplicaStats)> + '_ {
        self.repository
            .selectable()
            .filter(|(id, _)| !self.exclude.contains(id))
    }

    /// The ids eligible for this selection, in ascending order.
    pub fn candidate_ids(&self) -> impl Iterator<Item = ReplicaId> + '_ {
        self.candidates().map(|(id, _)| id)
    }
}

/// The parameters a lock-free planner needs to reproduce a strategy's
/// selection from a published planning snapshot instead of a live
/// repository reference.
///
/// A strategy that is a pure function of the per-replica response-time
/// distributions (the paper's model-based selection) can hand these out;
/// the concurrent handler then evaluates Algorithm 1 against the
/// snapshot's memoized CDF tables with no strategy (or repository) lock
/// at all. Stateful baselines (round-robin rotation, seeded shuffles)
/// cannot, and keep going through [`SelectionStrategy::select`].
#[derive(Debug, Clone, Copy)]
pub struct SnapshotPlanSpec {
    /// The response-time model configuration the snapshots are built with.
    pub model: ModelConfig,
    /// Crash tolerance handed to Algorithm 1's generalization (§5.3.2).
    pub crashes: usize,
    /// Policy for replicas whose snapshot has no distribution yet.
    pub cold_start: ColdStartPolicy,
}

/// A replica-selection policy.
pub trait SelectionStrategy: Send {
    /// A short stable name for reports and plots.
    fn name(&self) -> &'static str;

    /// Chooses the replica set for one request.
    ///
    /// An empty result means "no replicas known"; the handler treats it as
    /// an immediately failed request.
    fn select(&mut self, input: &SelectionInput<'_>) -> Vec<ReplicaId>;

    /// Lifetime counters of the strategy's internal model cache, if it has
    /// one. Baselines return `None`.
    fn cache_stats(&self) -> Option<ModelCacheStats> {
        None
    }

    /// How to reproduce this strategy from an immutable planning snapshot,
    /// if it is snapshot-plannable. `None` (the default) means the
    /// strategy is stateful or opaque and callers must serialize calls to
    /// [`SelectionStrategy::select`] instead.
    fn snapshot_spec(&self) -> Option<SnapshotPlanSpec> {
        None
    }

    /// Per-replica `P(meet deadline)` behind the most recent
    /// [`SelectionStrategy::select`] answer, in the same order as that
    /// answer, for strategies that compute one. Baselines (and model-based
    /// cold-start multicasts, which select without predictions) return an
    /// empty slice. The handler copies these into the request span so the
    /// journal records what the planner *believed* at selection time.
    fn last_predictions(&self) -> &[(ReplicaId, f64)] {
        &[]
    }
}

// ---------------------------------------------------------------------------
// The paper's strategy
// ---------------------------------------------------------------------------

/// The DSN 2001 model-based selection (the paper's contribution), exposed
/// behind the strategy interface so it can be compared against baselines.
#[derive(Debug)]
pub struct ModelBased {
    model: ResponseTimeModel,
    cache: ModelCache,
    overhead: OverheadTracker,
    cold_start: ColdStartPolicy,
    crashes: usize,
    last_predictions: Vec<(ReplicaId, f64)>,
}

impl ModelBased {
    /// Creates the strategy with the given model configuration and the
    /// paper's cold-start rule (select all until warmed up).
    pub fn new(model: ModelConfig) -> Self {
        ModelBased {
            model: ResponseTimeModel::new(model),
            cache: ModelCache::new(),
            overhead: OverheadTracker::new(),
            cold_start: ColdStartPolicy::SelectAll,
            crashes: 1,
            last_predictions: Vec::new(),
        }
    }

    /// Overrides the cold-start policy.
    #[must_use]
    pub fn with_cold_start(mut self, policy: ColdStartPolicy) -> Self {
        self.cold_start = policy;
        self
    }

    /// Overrides the number of simultaneous crashes the selection must
    /// tolerate (default 1, Algorithm 1; §5.3.2 sketches the general case).
    #[must_use]
    pub fn with_crash_tolerance(mut self, crashes: usize) -> Self {
        self.crashes = crashes;
        self
    }

    /// The δ tracker, exposed for the Figure 3 instrumentation.
    pub fn overhead(&self) -> &OverheadTracker {
        &self.overhead
    }
}

impl Default for ModelBased {
    fn default() -> Self {
        ModelBased::new(ModelConfig::default())
    }
}

impl SelectionStrategy for ModelBased {
    fn name(&self) -> &'static str {
        "model-based"
    }

    fn select(&mut self, input: &SelectionInput<'_>) -> Vec<ReplicaId> {
        let started = std::time::Instant::now();
        let deadline = self.overhead.adjusted_deadline(input.qos.deadline());
        if self.cache.len() > input.repository.len() {
            // Cheap steady-state bound: entries can only outnumber replicas
            // after removals, so shed the leftovers in one pass.
            let repository = input.repository;
            self.cache
                .retain_replicas(|id| repository.stats(id).is_some());
        }
        let mut candidates = Vec::with_capacity(input.repository.len());
        for (id, stats) in input.candidates() {
            let p = self.model.probability_by_cached(
                &mut self.cache,
                id,
                stats,
                deadline,
                input.method,
            );
            match p {
                Some(p) => candidates.push(Candidate::new(id, p)),
                None => match self.cold_start {
                    ColdStartPolicy::SelectAll => {
                        self.overhead.record(Duration::from(started.elapsed()));
                        self.last_predictions.clear();
                        return input.candidate_ids().collect();
                    }
                    ColdStartPolicy::Optimistic(p) => {
                        candidates.push(Candidate::new(id, p.clamp(0.0, 1.0)));
                    }
                },
            }
        }
        let selection =
            select_replicas_tolerating(&candidates, input.qos.min_probability(), self.crashes);
        self.overhead.record(Duration::from(started.elapsed()));
        let chosen = selection.into_replicas();
        self.last_predictions.clear();
        for id in &chosen {
            if let Some(c) = candidates.iter().find(|c| c.id == *id) {
                self.last_predictions.push((*id, c.probability));
            }
        }
        chosen
    }

    fn cache_stats(&self) -> Option<ModelCacheStats> {
        Some(self.cache.stats())
    }

    fn last_predictions(&self) -> &[(ReplicaId, f64)] {
        &self.last_predictions
    }

    fn snapshot_spec(&self) -> Option<SnapshotPlanSpec> {
        Some(SnapshotPlanSpec {
            model: *self.model.config(),
            crashes: self.crashes,
            cold_start: self.cold_start,
        })
    }
}

// ---------------------------------------------------------------------------
// Baselines
// ---------------------------------------------------------------------------

fn take_k(mut ranked: Vec<ReplicaId>, k: usize) -> Vec<ReplicaId> {
    ranked.truncate(k.max(1));
    ranked
}

/// Mean response-time estimate from the repository entry: mean service time
/// + mean queuing delay + last gateway delay. `None` when the entry is cold.
fn mean_response_estimate(
    repo: &InfoRepository,
    id: ReplicaId,
    method: Option<MethodId>,
) -> Option<Duration> {
    let stats = repo.stats(id)?;
    let history = stats.history(method.unwrap_or_default())?;
    if history.is_empty() {
        return None;
    }
    let n = history.len() as u64;
    let service: Duration = history.service_times().iter().copied().sum();
    let queue: Duration = history.queuing_delays().iter().copied().sum();
    let delay = stats.last_gateway_delay()?;
    Some(service / n + queue / n + delay)
}

/// Selects `k` replicas uniformly at random (with a deterministic seed).
#[derive(Debug)]
pub struct Random {
    /// Redundancy level.
    pub k: usize,
    rng: SmallRng,
}

impl Random {
    /// Creates the strategy with redundancy `k` and an RNG seed.
    pub fn new(k: usize, seed: u64) -> Self {
        Random {
            k,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl SelectionStrategy for Random {
    fn name(&self) -> &'static str {
        "random-k"
    }

    fn select(&mut self, input: &SelectionInput<'_>) -> Vec<ReplicaId> {
        let mut ids: Vec<ReplicaId> = input.candidate_ids().collect();
        ids.shuffle(&mut self.rng);
        take_k(ids, self.k)
    }
}

/// Selects the `k` replicas with the best historical mean response time
/// (the \[19\]-style baseline). Cold replicas rank first so they get
/// explored.
#[derive(Debug, Clone, Copy)]
pub struct FastestMean {
    /// Redundancy level.
    pub k: usize,
}

impl SelectionStrategy for FastestMean {
    fn name(&self) -> &'static str {
        "fastest-mean"
    }

    fn select(&mut self, input: &SelectionInput<'_>) -> Vec<ReplicaId> {
        let mut ids: Vec<ReplicaId> = input.candidate_ids().collect();
        ids.sort_by_key(|id| {
            mean_response_estimate(input.repository, *id, input.method)
                .map_or(Duration::ZERO, |d| d)
        });
        take_k(ids, self.k)
    }
}

/// Selects the `k` replicas with the fewest outstanding queued requests
/// (the \[5\]-style load-aware baseline), breaking ties by mean service
/// time.
#[derive(Debug, Clone, Copy)]
pub struct LeastLoaded {
    /// Redundancy level.
    pub k: usize,
}

impl SelectionStrategy for LeastLoaded {
    fn name(&self) -> &'static str {
        "least-loaded"
    }

    fn select(&mut self, input: &SelectionInput<'_>) -> Vec<ReplicaId> {
        let mut ids: Vec<ReplicaId> = input.candidate_ids().collect();
        ids.sort_by_key(|id| {
            let outstanding = input.repository.stats(*id).map_or(0, |s| s.outstanding());
            let mean = mean_response_estimate(input.repository, *id, input.method)
                .unwrap_or(Duration::ZERO);
            (outstanding, mean)
        });
        take_k(ids, self.k)
    }
}

/// Selects the `k` replicas with the smallest last measured gateway delay
/// (the \[9\]-style nearest-server baseline). Cold replicas rank first.
#[derive(Debug, Clone, Copy)]
pub struct Nearest {
    /// Redundancy level.
    pub k: usize,
}

impl SelectionStrategy for Nearest {
    fn name(&self) -> &'static str {
        "nearest"
    }

    fn select(&mut self, input: &SelectionInput<'_>) -> Vec<ReplicaId> {
        let mut ids: Vec<ReplicaId> = input.candidate_ids().collect();
        ids.sort_by_key(|id| {
            input
                .repository
                .stats(*id)
                .and_then(|s| s.last_gateway_delay())
                .unwrap_or(Duration::ZERO)
        });
        take_k(ids, self.k)
    }
}

/// Rotates through the replica list, `k` at a time.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin {
    /// Redundancy level.
    pub k: usize,
    next: usize,
}

impl RoundRobin {
    /// Creates the strategy with redundancy `k`.
    pub fn new(k: usize) -> Self {
        RoundRobin { k, next: 0 }
    }
}

impl SelectionStrategy for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn select(&mut self, input: &SelectionInput<'_>) -> Vec<ReplicaId> {
        let ids: Vec<ReplicaId> = input.candidate_ids().collect();
        if ids.is_empty() {
            return Vec::new();
        }
        let k = self.k.max(1).min(ids.len());
        // Positions `next..next + k` on the infinite cycle of `ids`;
        // equivalent to `ids[(next + i) % len]` but cannot panic.
        let out: Vec<ReplicaId> = ids
            .iter()
            .cycle()
            .skip(self.next % ids.len())
            .take(k)
            .copied()
            .collect();
        self.next = (self.next + k) % ids.len();
        out
    }
}

/// Always selects the first `k` replicas by id — static assignment with no
/// adaptivity, the "single replica per client" end of the spectrum (§1)
/// when `k = 1`.
#[derive(Debug, Clone, Copy)]
pub struct StaticK {
    /// Redundancy level.
    pub k: usize,
}

impl SelectionStrategy for StaticK {
    fn name(&self) -> &'static str {
        "static-k"
    }

    fn select(&mut self, input: &SelectionInput<'_>) -> Vec<ReplicaId> {
        take_k(input.candidate_ids().collect(), self.k)
    }
}

/// Always selects every known replica — full active replication, the
/// "maximum fault tolerance, minimum scalability" end of the spectrum (§1).
#[derive(Debug, Clone, Copy, Default)]
pub struct AllReplicas;

impl SelectionStrategy for AllReplicas {
    fn name(&self) -> &'static str {
        "all-replicas"
    }

    fn select(&mut self, input: &SelectionInput<'_>) -> Vec<ReplicaId> {
        input.candidate_ids().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_core::repository::PerfReport;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    /// Repository with 4 replicas: r0 fast/idle, r1 slow/idle, r2 fast but
    /// queued, r3 far away.
    fn repo() -> InfoRepository {
        let mut repo = InfoRepository::new(5);
        let entries: [(u64, u64, u32, u64); 4] = [
            // (service ms, queue delay ms, queue len, gateway delay ms)
            (50, 0, 0, 2),
            (200, 0, 0, 2),
            (50, 100, 5, 2),
            (50, 0, 1, 40),
        ];
        for (i, (ts, tq, qlen, delay)) in entries.iter().enumerate() {
            let r = ReplicaId::new(i as u64);
            repo.insert_replica(r);
            for _ in 0..3 {
                repo.record_perf(r, PerfReport::new(ms(*ts), ms(*tq), *qlen), Instant::EPOCH);
            }
            repo.record_gateway_delay(r, ms(*delay), Instant::EPOCH);
        }
        repo
    }

    fn input<'a>(repo: &'a InfoRepository, qos: &'a QosSpec) -> SelectionInput<'a> {
        SelectionInput {
            repository: repo,
            qos,
            method: None,
            now: Instant::EPOCH,
            exclude: &[],
        }
    }

    fn idx(ids: &[ReplicaId]) -> Vec<u64> {
        ids.iter().map(|r| r.index()).collect()
    }

    #[test]
    fn model_based_picks_prob_ranked_set() {
        let repo = repo();
        let qos = QosSpec::new(ms(150), 0.9).unwrap();
        let mut strat = ModelBased::default();
        let sel = strat.select(&input(&repo, &qos));
        // r0 (52 ms) and r3 (90 ms) both always make 150 ms; Pc=0.9 is met
        // by the single backup, so K = {best, second-best} = {r0, r3}.
        assert_eq!(idx(&sel), vec![0, 3]);
        assert_eq!(strat.overhead().samples(), 1, "δ recorded");
    }

    #[test]
    fn snapshot_spec_only_for_snapshot_plannable_strategies() {
        let strat = ModelBased::default().with_crash_tolerance(2);
        let spec = strat.snapshot_spec().expect("model-based is plannable");
        assert_eq!(spec.crashes, 2);
        assert_eq!(spec.cold_start, ColdStartPolicy::SelectAll);
        assert!(FastestMean { k: 1 }.snapshot_spec().is_none());
        assert!(RoundRobin::new(2).snapshot_spec().is_none());
    }

    #[test]
    fn model_based_cold_start_selects_all() {
        let mut repo = repo();
        repo.insert_replica(ReplicaId::new(9)); // cold member
        let qos = QosSpec::new(ms(150), 0.9).unwrap();
        let mut strat = ModelBased::default();
        let sel = strat.select(&input(&repo, &qos));
        assert_eq!(sel.len(), 5, "cold start multicasts to everyone");
    }

    #[test]
    fn probation_replicas_are_not_trusted_candidates() {
        let mut repo = repo();
        let qos = QosSpec::new(ms(150), 0.9).unwrap();
        // r0 is the best candidate; once it lands on probation every
        // strategy must pick from the remaining trusted replicas only.
        repo.set_probation(ReplicaId::new(0), 5);
        let sel = ModelBased::default().select(&input(&repo, &qos));
        assert!(!sel.is_empty() && !sel.contains(&ReplicaId::new(0)));
        let sel = FastestMean { k: 2 }.select(&input(&repo, &qos));
        assert_eq!(idx(&sel), vec![3, 2]);
        let sel = AllReplicas.select(&input(&repo, &qos));
        assert!(!sel.contains(&ReplicaId::new(0)));
        // A probation-only repository yields an empty trusted selection;
        // the handler falls back to shadow-multicast over probation members.
        for i in 1..4 {
            repo.set_probation(ReplicaId::new(i), 5);
        }
        assert!(ModelBased::default().select(&input(&repo, &qos)).is_empty());
    }

    #[test]
    fn fastest_mean_ranks_by_average() {
        let repo = repo();
        let qos = QosSpec::new(ms(150), 0.9).unwrap();
        let mut strat = FastestMean { k: 2 };
        // Means: r0 = 52, r1 = 202, r2 = 152, r3 = 90.
        assert_eq!(idx(&strat.select(&input(&repo, &qos))), vec![0, 3]);
    }

    #[test]
    fn least_loaded_ranks_by_queue() {
        let repo = repo();
        let qos = QosSpec::new(ms(150), 0.9).unwrap();
        let mut strat = LeastLoaded { k: 2 };
        // Outstanding: r0=0, r1=0, r2=5, r3=1; tie r0/r1 broken by mean.
        assert_eq!(idx(&strat.select(&input(&repo, &qos))), vec![0, 1]);
    }

    #[test]
    fn nearest_ranks_by_delay() {
        let repo = repo();
        let qos = QosSpec::new(ms(150), 0.9).unwrap();
        let mut strat = Nearest { k: 3 };
        let sel = strat.select(&input(&repo, &qos));
        assert_eq!(sel.len(), 3);
        assert!(!sel.contains(&ReplicaId::new(3)), "r3 is 40 ms away");
    }

    #[test]
    fn round_robin_rotates() {
        let repo = repo();
        let qos = QosSpec::new(ms(150), 0.9).unwrap();
        let mut strat = RoundRobin::new(2);
        assert_eq!(idx(&strat.select(&input(&repo, &qos))), vec![0, 1]);
        assert_eq!(idx(&strat.select(&input(&repo, &qos))), vec![2, 3]);
        assert_eq!(idx(&strat.select(&input(&repo, &qos))), vec![0, 1]);
    }

    #[test]
    fn random_selects_k_distinct() {
        let repo = repo();
        let qos = QosSpec::new(ms(150), 0.9).unwrap();
        let mut strat = Random::new(2, 123);
        for _ in 0..20 {
            let sel = strat.select(&input(&repo, &qos));
            assert_eq!(sel.len(), 2);
            assert_ne!(sel[0], sel[1]);
        }
    }

    #[test]
    fn static_and_all() {
        let repo = repo();
        let qos = QosSpec::new(ms(150), 0.9).unwrap();
        assert_eq!(idx(&StaticK { k: 1 }.select(&input(&repo, &qos))), vec![0]);
        assert_eq!(AllReplicas.select(&input(&repo, &qos)).len(), 4);
    }

    #[test]
    fn k_larger_than_pool_is_clamped() {
        let repo = repo();
        let qos = QosSpec::new(ms(150), 0.9).unwrap();
        assert_eq!(RoundRobin::new(10).select(&input(&repo, &qos)).len(), 4);
        assert_eq!(Random::new(10, 1).select(&input(&repo, &qos)).len(), 4);
    }

    #[test]
    fn empty_repository_yields_empty_everywhere() {
        let repo = InfoRepository::new(5);
        let qos = QosSpec::new(ms(150), 0.9).unwrap();
        let strategies: Vec<Box<dyn SelectionStrategy>> = vec![
            Box::new(ModelBased::default()),
            Box::new(Random::new(2, 1)),
            Box::new(FastestMean { k: 2 }),
            Box::new(LeastLoaded { k: 2 }),
            Box::new(Nearest { k: 2 }),
            Box::new(RoundRobin::new(2)),
            Box::new(StaticK { k: 2 }),
            Box::new(AllReplicas),
        ];
        for mut s in strategies {
            assert!(
                s.select(&input(&repo, &qos)).is_empty(),
                "{} should return empty",
                s.name()
            );
        }
    }

    #[test]
    fn excluded_replicas_are_invisible_to_every_strategy() {
        let repo = repo();
        let qos = QosSpec::new(ms(150), 0.9).unwrap();
        let exclude = [ReplicaId::new(0)];
        let strategies: Vec<Box<dyn SelectionStrategy>> = vec![
            Box::new(ModelBased::default()),
            Box::new(Random::new(2, 1)),
            Box::new(FastestMean { k: 2 }),
            Box::new(LeastLoaded { k: 2 }),
            Box::new(Nearest { k: 2 }),
            Box::new(RoundRobin::new(2)),
            Box::new(StaticK { k: 2 }),
            Box::new(AllReplicas),
        ];
        for mut s in strategies {
            let sel = s.select(&SelectionInput {
                exclude: &exclude,
                ..input(&repo, &qos)
            });
            assert!(!sel.is_empty(), "{} went empty under exclusion", s.name());
            assert!(
                !sel.contains(&ReplicaId::new(0)),
                "{} selected an excluded replica",
                s.name()
            );
        }
    }

    #[test]
    fn exclusion_changes_the_acceptance_test_not_just_the_answer() {
        // With r0 (the best replica) excluded, Algorithm 1 must rebuild K
        // from the remaining candidates — the reserved slot moves to r3 and
        // extra members are taken until Pc holds again, exactly as if r0
        // had been removed from the repository.
        let repo = repo();
        let qos = QosSpec::new(ms(150), 0.9).unwrap();
        let mut strat = ModelBased::default();
        let baseline = strat.select(&input(&repo, &qos));
        assert_eq!(idx(&baseline), vec![0, 3]);

        let mut pruned = repo.clone();
        pruned.remove_replica(ReplicaId::new(0));
        let as_if_removed = ModelBased::default().select(&input(&pruned, &qos));

        let excluded = strat.select(&SelectionInput {
            exclude: &[ReplicaId::new(0)],
            ..input(&repo, &qos)
        });
        assert_eq!(excluded, as_if_removed);
        assert!(!excluded.contains(&ReplicaId::new(0)));
    }

    #[test]
    fn model_based_exposes_last_predictions() {
        let repo = repo();
        let qos = QosSpec::new(ms(150), 0.9).unwrap();
        let mut strat = ModelBased::default();
        assert!(strat.last_predictions().is_empty(), "nothing planned yet");
        let sel = strat.select(&input(&repo, &qos));
        let preds = strat.last_predictions();
        assert_eq!(preds.len(), sel.len(), "one prediction per chosen replica");
        for (i, (id, p)) in preds.iter().enumerate() {
            assert_eq!(*id, sel[i], "aligned with the selection order");
            assert!((0.0..=1.0).contains(p));
        }
        // Baselines expose nothing.
        let mut rr = RoundRobin::new(2);
        rr.select(&input(&repo, &qos));
        assert!(rr.last_predictions().is_empty());
        // A cold-start multicast selects without predictions.
        let mut cold = ModelBased::default();
        let mut warm_plus_cold = repo.clone();
        warm_plus_cold.insert_replica(ReplicaId::new(9));
        cold.select(&input(&warm_plus_cold, &qos));
        assert!(cold.last_predictions().is_empty());
    }

    #[test]
    fn model_based_cache_serves_repeat_selections() {
        let repo = repo();
        let qos = QosSpec::new(ms(150), 0.9).unwrap();
        let mut strat = ModelBased::default();
        let first = strat.select(&input(&repo, &qos));
        let stats = strat.cache_stats().unwrap();
        assert_eq!(stats.misses, 4, "one build per warm replica");
        assert_eq!(stats.hits, 0);

        let second = strat.select(&input(&repo, &qos));
        assert_eq!(first, second);
        let stats = strat.cache_stats().unwrap();
        assert_eq!(stats.misses, 4, "unchanged windows rebuild nothing");
        assert_eq!(stats.hits, 4);

        assert!(Random::new(1, 1).cache_stats().is_none());
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            ModelBased::default().name(),
            Random::new(1, 1).name(),
            FastestMean { k: 1 }.name(),
            LeastLoaded { k: 1 }.name(),
            Nearest { k: 1 }.name(),
            RoundRobin::new(1).name(),
            StaticK { k: 1 }.name(),
            AllReplicas.name(),
        ];
        let set: std::collections::BTreeSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }
}
