//! Fault timeline → `aqua-obs` journal events and counters.
//!
//! Every fault window produces two journal lines, mirroring what a chaos
//! tool would log:
//!
//! ```json
//! {"type":"fault","phase":"active","kind":"pause","replica":2,"at_ns":2000000000}
//! {"type":"fault","phase":"cleared","kind":"pause","replica":2,"at_ns":2500000000}
//! ```
//!
//! plus an `aqua_faults_injected_total{kind=...}` counter per activation, so
//! Fig. 5-style experiments can correlate injected faults with timing
//! failures straight from the JSONL journal.

use aqua_core::time::Instant;
use aqua_obs::json::JsonValue;
use aqua_obs::Obs;

use crate::plan::FaultSpec;
use crate::schedule::FaultSchedule;

fn emit_edge(obs: &Obs, spec: &FaultSpec, index: usize, phase: &str, at: Instant) {
    // `window` is the stable id linking this window's `active`/`cleared`
    // pair to the spans that carry it in `fault_windows`; `fault` is the
    // same value under the original field name, kept for older readers.
    let mut fields = JsonValue::object()
        .field("phase", phase)
        .field("kind", spec.kind.label())
        .field("fault", index)
        .field("window", index)
        .field("at_ns", at.as_nanos())
        .field("start_ns", spec.start.as_nanos())
        .field("end_ns", spec.end().as_nanos());
    fields = match spec.replica {
        Some(r) => fields.field("replica", r.index()),
        None => fields.field("scope", "network"),
    };
    obs.journal().emit_event("fault", fields);
    if phase == "active" {
        obs.registry()
            .counter("aqua_faults_injected_total", &[("kind", spec.kind.label())])
            .inc();
    }
}

/// Emits `fault` journal events for every window edge at or before `upto`.
///
/// The simulator calls this once at the end of a run (the schedule is a pure
/// function of time, so the whole timeline is known); live drivers that need
/// incremental emission use [`FaultTracker`].
pub fn emit_fault_events(obs: &Obs, schedule: &FaultSchedule, upto: Instant) {
    let mut tracker = FaultTracker::new(schedule.specs().len());
    tracker.advance(obs, schedule, upto);
}

/// Incremental emitter of fault active/cleared events.
///
/// The socket runtime's fault driver thread owns one and calls
/// [`FaultTracker::advance`] at every transition it wakes up for; each window
/// edge is emitted exactly once, in time order per fault.
#[derive(Debug)]
pub struct FaultTracker {
    /// Per-spec progress: 0 = nothing emitted, 1 = activation emitted,
    /// 2 = clear emitted.
    emitted: Vec<u8>,
}

impl FaultTracker {
    /// A tracker for a schedule with `specs` fault windows.
    pub fn new(specs: usize) -> Self {
        FaultTracker {
            emitted: vec![0; specs],
        }
    }

    /// Emits every not-yet-emitted window edge at or before `now`.
    pub fn advance(&mut self, obs: &Obs, schedule: &FaultSchedule, now: Instant) {
        for (idx, spec) in schedule.specs().iter().enumerate() {
            let stage = &mut self.emitted[idx];
            if *stage == 0 && spec.start <= now {
                emit_edge(obs, spec, idx, "active", spec.start);
                *stage = 1;
            }
            // A saturated end (permanent crash) never clears.
            if *stage == 1 && spec.end() <= now && spec.end() > spec.start {
                emit_edge(obs, spec, idx, "cleared", spec.end());
                *stage = 2;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultPlan;
    use aqua_core::time::Duration;

    #[test]
    fn edges_are_emitted_once_in_order() {
        let schedule = FaultPlan::new()
            .pause(2, Instant::from_secs(2), Duration::from_millis(500))
            .crash_forever(0, Instant::from_secs(3))
            .instantiate(7);
        let (obs, reader) = Obs::in_memory();
        let mut tracker = FaultTracker::new(schedule.specs().len());
        tracker.advance(&obs, &schedule, Instant::from_secs(1));
        assert!(reader.lines_containing("\"type\":\"fault\"").is_empty());
        tracker.advance(&obs, &schedule, Instant::from_secs(2));
        tracker.advance(&obs, &schedule, Instant::from_secs(10));
        // Re-advancing emits nothing new.
        tracker.advance(&obs, &schedule, Instant::from_secs(20));
        let lines = reader.lines_containing("\"type\":\"fault\"");
        assert_eq!(lines.len(), 3, "pause active+cleared, crash active only");
        assert!(
            lines[0].contains("\"phase\":\"active\"") && lines[0].contains("\"kind\":\"pause\"")
        );
        assert!(lines[1].contains("\"phase\":\"cleared\""));
        assert!(lines[2].contains("\"kind\":\"crash\""));
        assert!(obs.prometheus().contains("aqua_faults_injected_total"));
    }

    #[test]
    fn edges_carry_the_stable_window_id() {
        let schedule = FaultPlan::new()
            .pause(2, Instant::from_secs(2), Duration::from_millis(500))
            .degrade(1, Instant::from_secs(1), Duration::from_secs(1), 2.0)
            .instantiate(7);
        let (obs, reader) = Obs::in_memory();
        emit_fault_events(&obs, &schedule, Instant::from_secs(30));
        // Both edges of the same window share one id, and the id matches
        // what `FaultSchedule::windows` hands the span instrumentation.
        let pause_edges = reader.lines_containing("\"kind\":\"pause\"");
        assert_eq!(pause_edges.len(), 2);
        for edge in &pause_edges {
            assert!(edge.contains("\"window\":0"), "got: {edge}");
        }
        let degrade_edges = reader.lines_containing("\"kind\":\"degrade\"");
        assert!(degrade_edges.iter().all(|e| e.contains("\"window\":1")));
        let windows = schedule.windows();
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].id, 0);
        assert_eq!(windows[0].kind, "pause");
        assert_eq!(windows[1].id, 1);
    }

    #[test]
    fn window_overlap_requires_target_and_time_intersection() {
        let schedule = FaultPlan::new()
            .pause(2, Instant::from_secs(2), Duration::from_secs(1))
            .delay_spike_all(Instant::from_secs(10), Duration::from_secs(1), 4.0)
            .instantiate(7);
        let w = schedule.windows();
        // Replica-targeted window: selected set must contain the target.
        assert!(w[0].overlaps(&[2, 5], Instant::from_secs(2), Instant::from_secs(3)));
        assert!(!w[0].overlaps(&[3, 5], Instant::from_secs(2), Instant::from_secs(3)));
        // Disjoint in time.
        assert!(!w[0].overlaps(&[2], Instant::from_secs(4), Instant::from_secs(5)));
        // A span ending exactly at the window's start still touches it.
        assert!(w[0].overlaps(&[2], Instant::from_secs(1), Instant::from_secs(2)));
        // Network-wide window touches any selection.
        assert!(w[1].overlaps(&[0], Instant::from_secs(10), Instant::from_secs(11)));
    }

    #[test]
    fn batch_emission_matches_tracker() {
        let schedule = FaultPlan::new()
            .degrade(1, Instant::from_secs(1), Duration::from_secs(1), 2.0)
            .instantiate(7);
        let (obs, reader) = Obs::in_memory();
        emit_fault_events(&obs, &schedule, Instant::from_secs(30));
        assert_eq!(reader.lines_containing("\"type\":\"fault\"").len(), 2);
    }
}
