//! The instantiated, deterministic fault timeline.

use aqua_core::qos::ReplicaId;
use aqua_core::time::{Duration, Instant};

use crate::plan::{FaultKind, FaultSpec};

/// What a replica is doing at a point in time, fault-wise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaHealth {
    /// Servicing normally (possibly degraded — see
    /// [`FaultSchedule::service_factor`]).
    Up,
    /// Stalled by a pause fault until the given instant; queued work
    /// survives.
    Paused {
        /// When the pause lifts.
        until: Instant,
    },
    /// Crashed until the given instant (recovery), or forever if the window
    /// saturates past any experiment horizon.
    Down {
        /// When the replica restarts.
        until: Instant,
    },
}

/// A [`FaultPlan`](crate::FaultPlan) bound to a seed: a pure function of
/// time that answers "what is broken right now?".
///
/// Both the simulator and the socket runtime hold one of these and query it
/// with their own notion of [`Instant`] (virtual time vs. time since process
/// start), which is what makes a single plan portable across the two.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    specs: Vec<FaultSpec>,
    seed: u64,
}

impl FaultSchedule {
    pub(crate) fn new(specs: Vec<FaultSpec>, seed: u64) -> Self {
        FaultSchedule { specs, seed }
    }

    /// A schedule that injects nothing.
    pub fn empty() -> Self {
        FaultSchedule::default()
    }

    /// Whether the schedule injects nothing.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The resolved specs, in plan order.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// The seed drop decisions are derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Crash/pause status of `replica` at `now`. Crash wins over pause when
    /// windows overlap.
    pub fn health(&self, replica: ReplicaId, now: Instant) -> ReplicaHealth {
        let mut paused: Option<Instant> = None;
        for spec in &self.specs {
            if !(spec.targets(replica) && spec.active_at(now)) {
                continue;
            }
            match spec.kind {
                FaultKind::Crash => return ReplicaHealth::Down { until: spec.end() },
                FaultKind::Pause => {
                    let until = spec.end();
                    paused = Some(paused.map_or(until, |u| u.max(until)));
                }
                _ => {}
            }
        }
        match paused {
            Some(until) => ReplicaHealth::Paused { until },
            None => ReplicaHealth::Up,
        }
    }

    /// Whether `replica` is inside a crash window at `now`.
    pub fn is_down(&self, replica: ReplicaId, now: Instant) -> bool {
        matches!(self.health(replica, now), ReplicaHealth::Down { .. })
    }

    /// If `replica` is paused at `now`, when the pause lifts.
    pub fn paused_until(&self, replica: ReplicaId, now: Instant) -> Option<Instant> {
        match self.health(replica, now) {
            ReplicaHealth::Paused { until } => Some(until),
            _ => None,
        }
    }

    /// If `replica` is inside a scheduled drain window at `now`, when the
    /// window ends (the reactivation instant of the rolling restart).
    /// Drain is orthogonal to [`FaultSchedule::health`]: a crash window
    /// overlapping a drain still loses queued work.
    pub fn draining_until(&self, replica: ReplicaId, now: Instant) -> Option<Instant> {
        self.specs
            .iter()
            .filter(|s| s.kind == FaultKind::Drain && s.targets(replica) && s.active_at(now))
            .map(FaultSpec::end)
            .max()
    }

    /// Combined service-time multiplier for `replica` at `now` (product of
    /// all active degrade/overload windows; `1.0` when healthy).
    pub fn service_factor(&self, replica: ReplicaId, now: Instant) -> f64 {
        let mut factor = 1.0;
        for spec in &self.specs {
            if !(spec.targets(replica) && spec.active_at(now)) {
                continue;
            }
            match spec.kind {
                FaultKind::Degrade { factor: f } | FaultKind::Overload { factor: f } => factor *= f,
                _ => {}
            }
        }
        factor
    }

    /// Network delay modifier for a message between two endpoints at `now`:
    /// a multiplicative factor and a flat extra. Endpoints that are not
    /// replicas (clients, the coordinator) pass `None` and only match
    /// network-wide specs.
    pub fn delay_mod(
        &self,
        from: Option<ReplicaId>,
        to: Option<ReplicaId>,
        now: Instant,
    ) -> (f64, Duration) {
        let mut factor = 1.0;
        let mut pad = Duration::ZERO;
        for spec in &self.specs {
            if !spec.active_at(now) || !touches(spec, from, to) {
                continue;
            }
            if let FaultKind::DelaySpike { factor: f, extra } = spec.kind {
                factor *= f;
                pad = pad.saturating_add(extra);
            }
        }
        (factor, pad)
    }

    /// Flat extra latency the socket runtime adds on `replica`'s reply path
    /// at `now` (the `extra` of every active delay spike touching it).
    pub fn reply_delay(&self, replica: ReplicaId, now: Instant) -> Duration {
        self.delay_mod(Some(replica), None, now).1
    }

    /// Whether a message between two endpoints at `now` is lost.
    ///
    /// One-way partitions drop everything *sent by* the target replica.
    /// Probabilistic drops are decided by a deterministic hash of the seed,
    /// the endpoints, and the (nanosecond) send time, so the same plan drops
    /// the same messages in every run of either runtime.
    pub fn should_drop(
        &self,
        from: Option<ReplicaId>,
        to: Option<ReplicaId>,
        now: Instant,
    ) -> bool {
        for (idx, spec) in self.specs.iter().enumerate() {
            if !spec.active_at(now) {
                continue;
            }
            match spec.kind {
                FaultKind::PartitionOneWay if spec.replica.is_some() && spec.replica == from => {
                    return true;
                }
                FaultKind::Drop { probability }
                    if touches(spec, from, to)
                        && unit_hash(
                            self.seed ^ (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                            endpoint_bits(from),
                            endpoint_bits(to),
                            now.as_nanos(),
                        ) < probability =>
                {
                    return true;
                }
                _ => {}
            }
        }
        false
    }

    /// The earliest fault window edge (start or end) strictly after `now`,
    /// if any. Drivers sleep to this instant instead of polling.
    pub fn next_transition_after(&self, now: Instant) -> Option<Instant> {
        self.specs
            .iter()
            .flat_map(|s| [s.start, s.end()])
            .filter(|t| *t > now && *t < Instant::from_nanos(u64::MAX))
            .min()
    }

    /// Specs active at `now`, with their plan indices.
    pub fn active(&self, now: Instant) -> impl Iterator<Item = (usize, &FaultSpec)> {
        self.specs
            .iter()
            .enumerate()
            .filter(move |(_, s)| s.active_at(now))
    }

    /// The schedule's windows as joinable values: each carries the stable
    /// id the journal's `fault` events are tagged with (the plan index),
    /// so span ↔ fault joins in forensics are exact, not
    /// timestamp-heuristic.
    pub fn windows(&self) -> Vec<FaultWindow> {
        self.specs
            .iter()
            .enumerate()
            .map(|(idx, spec)| FaultWindow {
                id: idx as u64,
                replica: spec.replica,
                kind: spec.kind.label(),
                start: spec.start,
                end: spec.end(),
            })
            .collect()
    }
}

/// One fault window in joinable form: the stable `id` matches the
/// `"window"` field of the journal's `fault` events for this schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultWindow {
    /// Stable id (the plan index) shared by the window's `active` and
    /// `cleared` journal events.
    pub id: u64,
    /// Target replica; `None` for network-wide windows.
    pub replica: Option<ReplicaId>,
    /// The fault kind's stable label.
    pub kind: &'static str,
    /// When the window opens.
    pub start: Instant,
    /// When the window closes (saturated for permanent faults).
    pub end: Instant,
}

impl FaultWindow {
    /// Whether this window touches a request that was multicast to
    /// `selected` (replica ids) and lived over `[from, to]`: the window's
    /// target must be one of the selected replicas (or network-wide) and
    /// the time intervals must intersect.
    pub fn overlaps(&self, selected: &[u64], from: Instant, to: Instant) -> bool {
        let targeted = match self.replica {
            None => true,
            Some(r) => selected.contains(&r.index()),
        };
        targeted && self.start <= to && self.end > from
    }
}

/// Whether a spec's target matches either endpoint of a message (or the spec
/// is network-wide).
fn touches(spec: &FaultSpec, from: Option<ReplicaId>, to: Option<ReplicaId>) -> bool {
    match spec.replica {
        None => true,
        Some(r) => from == Some(r) || to == Some(r),
    }
}

fn endpoint_bits(r: Option<ReplicaId>) -> u64 {
    match r {
        Some(id) => id.index(),
        None => u64::MAX,
    }
}

/// SplitMix64-style avalanche of the inputs, mapped to `[0, 1)`.
fn unit_hash(seed: u64, a: u64, b: u64, c: u64) -> f64 {
    let mut x = seed
        .wrapping_add(a.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(b.wrapping_mul(0x94D0_49BB_1331_11EB))
        .wrapping_add(c.wrapping_mul(0x2545_F491_4F6C_DD1D));
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultPlan;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn at(v: u64) -> Instant {
        Instant::from_millis(v)
    }

    fn rid(v: u64) -> ReplicaId {
        ReplicaId::new(v)
    }

    #[test]
    fn crash_window_reports_down_then_up() {
        let s = FaultPlan::new()
            .crash_recover(3, at(100), ms(50))
            .instantiate(1);
        assert_eq!(s.health(rid(3), at(99)), ReplicaHealth::Up);
        assert_eq!(
            s.health(rid(3), at(100)),
            ReplicaHealth::Down { until: at(150) }
        );
        assert_eq!(
            s.health(rid(3), at(149)),
            ReplicaHealth::Down { until: at(150) }
        );
        assert_eq!(s.health(rid(3), at(150)), ReplicaHealth::Up);
        // Other replicas are unaffected.
        assert_eq!(s.health(rid(4), at(120)), ReplicaHealth::Up);
    }

    #[test]
    fn crash_forever_saturates() {
        let s = FaultPlan::new().crash_forever(0, at(10)).instantiate(1);
        assert!(s.is_down(rid(0), Instant::from_secs(1_000_000)));
        // A saturated window edge is not a usable transition.
        assert_eq!(s.next_transition_after(at(10)), None);
    }

    #[test]
    fn pause_reports_latest_end_and_crash_wins() {
        let s = FaultPlan::new()
            .pause(1, at(0), ms(100))
            .pause(1, at(50), ms(100))
            .crash_recover(1, at(60), ms(10))
            .instantiate(1);
        assert_eq!(
            s.health(rid(1), at(10)),
            ReplicaHealth::Paused { until: at(100) }
        );
        assert_eq!(
            s.health(rid(1), at(55)),
            ReplicaHealth::Paused { until: at(150) }
        );
        assert_eq!(
            s.health(rid(1), at(65)),
            ReplicaHealth::Down { until: at(70) }
        );
        assert_eq!(s.paused_until(rid(1), at(120)), Some(at(150)));
    }

    #[test]
    fn degrade_and_overload_factors_compose() {
        let s = FaultPlan::new()
            .degrade(2, at(0), ms(100), 3.0)
            .overload(2, at(50), ms(100), 2.0)
            .instantiate(1);
        assert_eq!(s.service_factor(rid(2), at(10)), 3.0);
        assert_eq!(s.service_factor(rid(2), at(60)), 6.0);
        assert_eq!(s.service_factor(rid(2), at(120)), 2.0);
        assert_eq!(s.service_factor(rid(2), at(200)), 1.0);
        assert_eq!(s.service_factor(rid(9), at(60)), 1.0);
    }

    #[test]
    fn delay_spikes_scale_and_pad() {
        let s = FaultPlan::new()
            .delay_spike_all(at(0), ms(100), 4.0)
            .delay_spike(5, at(0), ms(100), 1.0, ms(20))
            .instantiate(1);
        // Network-wide spec matches any endpoint pair.
        assert_eq!(s.delay_mod(None, None, at(10)), (4.0, Duration::ZERO));
        // Replica-targeted spec only matches messages touching it.
        assert_eq!(s.delay_mod(Some(rid(5)), None, at(10)), (4.0, ms(20)));
        assert_eq!(s.delay_mod(None, Some(rid(5)), at(10)), (4.0, ms(20)));
        assert_eq!(s.reply_delay(rid(5), at(10)), ms(20));
        assert_eq!(
            s.delay_mod(Some(rid(1)), Some(rid(2)), at(200)),
            (1.0, Duration::ZERO)
        );
    }

    #[test]
    fn partition_drops_outbound_only() {
        let s = FaultPlan::new()
            .partition_one_way(7, at(0), ms(100))
            .instantiate(1);
        assert!(s.should_drop(Some(rid(7)), None, at(50)));
        assert!(s.should_drop(Some(rid(7)), Some(rid(1)), at(50)));
        assert!(!s.should_drop(Some(rid(1)), Some(rid(7)), at(50)));
        assert!(!s.should_drop(Some(rid(7)), None, at(150)));
    }

    #[test]
    fn probabilistic_drops_are_deterministic_and_calibrated() {
        let s = FaultPlan::new()
            .drop_messages(2, at(0), Duration::from_secs(10), 0.3)
            .instantiate(99);
        let t = FaultPlan::new()
            .drop_messages(2, at(0), Duration::from_secs(10), 0.3)
            .instantiate(99);
        let mut dropped = 0;
        let total = 10_000;
        for i in 0..total {
            let now = Instant::from_nanos(1 + i * 977);
            let d = s.should_drop(Some(rid(2)), Some(rid(9)), now);
            // Same plan + seed + message coordinates → same decision.
            assert_eq!(d, t.should_drop(Some(rid(2)), Some(rid(9)), now));
            dropped += u64::from(d);
        }
        let rate = dropped as f64 / total as f64;
        assert!((rate - 0.3).abs() < 0.03, "drop rate {rate} far from 0.3");
        // A different seed reshuffles which messages die.
        let u = FaultPlan::new()
            .drop_messages(2, at(0), Duration::from_secs(10), 0.3)
            .instantiate(100);
        let mut differs = false;
        for i in 0..1_000 {
            let now = Instant::from_nanos(1 + i * 977);
            differs |= u.should_drop(Some(rid(2)), Some(rid(9)), now)
                != s.should_drop(Some(rid(2)), Some(rid(9)), now);
        }
        assert!(differs);
    }

    #[test]
    fn drain_windows_are_first_class() {
        let s = FaultPlan::new()
            .drain(3, at(100), ms(200))
            .pause(3, at(150), ms(10))
            .instantiate(1);
        // The drain window is queryable and scoped to its target.
        assert_eq!(s.draining_until(rid(3), at(99)), None);
        assert_eq!(s.draining_until(rid(3), at(100)), Some(at(300)));
        assert_eq!(s.draining_until(rid(3), at(299)), Some(at(300)));
        assert_eq!(s.draining_until(rid(3), at(300)), None);
        assert_eq!(s.draining_until(rid(4), at(150)), None);
        // Drain does not perturb health (the pause still reports).
        assert_eq!(
            s.health(rid(3), at(155)),
            ReplicaHealth::Paused { until: at(160) }
        );
        // The window surfaces in joinable form with the drain label.
        let windows = s.windows();
        assert_eq!(windows[0].kind, "drain");
        assert_eq!(windows[0].id, 0);
        // And it participates in the transition walk.
        assert_eq!(s.next_transition_after(at(0)), Some(at(100)));
    }

    #[test]
    fn next_transition_walks_every_edge() {
        let s = FaultPlan::new()
            .pause(0, at(100), ms(50))
            .degrade(1, at(120), ms(100), 2.0)
            .instantiate(1);
        assert_eq!(s.next_transition_after(at(0)), Some(at(100)));
        assert_eq!(s.next_transition_after(at(100)), Some(at(120)));
        assert_eq!(s.next_transition_after(at(120)), Some(at(150)));
        assert_eq!(s.next_transition_after(at(150)), Some(at(220)));
        assert_eq!(s.next_transition_after(at(220)), None);
    }

    #[test]
    fn active_lists_windows_with_indices() {
        let s = FaultPlan::new()
            .pause(0, at(0), ms(100))
            .crash_recover(1, at(50), ms(100))
            .instantiate(1);
        let active: Vec<usize> = s.active(at(75)).map(|(i, _)| i).collect();
        assert_eq!(active, vec![0, 1]);
        let active: Vec<usize> = s.active(at(120)).map(|(i, _)| i).collect();
        assert_eq!(active, vec![1]);
    }
}
