//! Unified fault injection for the AQuA reproduction.
//!
//! The paper's evaluation (§6) only ever injects the easiest adversary — a
//! permanent replica crash — yet its fault model (§3) admits *timing* faults:
//! a replica that is too slow, not just one that is gone. This crate provides
//! composable, seeded **fault plans** covering the transient regimes that
//! stress the selection algorithm hardest:
//!
//! * **crash-and-recover** — the replica dies silently and rejoins after a
//!   downtime window (generalizing the one-shot [`CrashPlan`] in
//!   `aqua-replica`),
//! * **pause** — a GC-like stall: no request is dequeued during the window
//!   but queued work survives and drains afterwards,
//! * **degrade** / **overload** — the service time `S_i` is multiplied by a
//!   factor for the window (a slow disk, a noisy neighbour, a load burst),
//! * **delay spike** — network latency is scaled and/or padded,
//! * **message drop** — messages are dropped with a fixed probability,
//! * **one-way partition** — everything *sent by* the target replica is lost
//!   while inbound traffic still arrives.
//!
//! A [`FaultPlan`] is a pure description; [`FaultPlan::instantiate`] turns it
//! into a [`FaultSchedule`] — a deterministic function of time that both the
//! discrete-event simulator (`crates/sim` via `aqua-workload`) and the socket
//! runtime (`crates/runtime`) query, so the *same* plan produces the same
//! fault timeline in either world.
//!
//! [`CrashPlan`]: https://docs.rs/aqua-replica

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod obs;
mod plan;
mod schedule;

pub use obs::{emit_fault_events, FaultTracker};
pub use plan::{FaultKind, FaultPlan, FaultSpec};
pub use schedule::{FaultSchedule, FaultWindow, ReplicaHealth};
