//! Fault plan description: what goes wrong, where, and when.

use aqua_core::qos::ReplicaId;
use aqua_core::time::{Duration, Instant};

use crate::schedule::FaultSchedule;

/// The shape of one injectable fault (§3's fault model, stretched to the
/// transient regimes of Tars and Poloczek & Ciucu).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The replica dies silently for the window and restarts at its end.
    ///
    /// In the simulator the node stops heartbeating (the coordinator evicts
    /// it via a view change); in the socket runtime its connections are torn
    /// down and new ones refused. Queued work is lost. Use a very long
    /// window for a paper-style permanent crash.
    Crash,
    /// GC-like stall: nothing is dequeued during the window, but queued work
    /// survives and drains once the pause lifts. Connections stay up.
    Pause,
    /// Service-time degradation: every service-time draw is multiplied by
    /// `factor` while the window is active (a slow disk, CPU contention).
    Degrade {
        /// Multiplier applied to each sampled `S_i` (> 1 slows down).
        factor: f64,
    },
    /// An overload burst — semantically a [`FaultKind::Degrade`], but tagged
    /// separately so experiments can tell background load apart from
    /// component faults.
    Overload {
        /// Multiplier applied to each sampled `S_i` while the burst lasts.
        factor: f64,
    },
    /// Network delay spike: message latency is scaled by `factor` and padded
    /// by `extra`. The simulator applies both to every affected link; the
    /// socket runtime (where LAN latency is ~0) applies `extra` to the reply
    /// path of the affected replica.
    DelaySpike {
        /// Multiplier on the base network delay.
        factor: f64,
        /// Flat additional latency.
        extra: Duration,
    },
    /// Messages touching the target are dropped with this probability.
    ///
    /// The drop decision is a deterministic hash of (seed, endpoints, time),
    /// so a given plan drops the same messages in every run.
    Drop {
        /// Per-message drop probability in `[0, 1]`.
        probability: f64,
    },
    /// One-way partition: every message *sent by* the target replica is
    /// lost; inbound traffic still arrives. The replica services requests it
    /// can never answer — the purest timing fault in the paper's sense.
    PartitionOneWay,
    /// Supervised drain + rolling restart: the replica leaves the group
    /// gracefully at the window's start, finishes its queued work, goes
    /// dormant, and reactivates at the window's end. Unlike
    /// [`FaultKind::Crash`] no queued work is lost; unlike a pause the
    /// replica disappears from the planning view while the window is
    /// active. This is the schedule-level form of the elastic supervisor's
    /// rolling restarts, so scripted chaos plans can exercise the same
    /// path.
    Drain,
}

impl FaultKind {
    /// Short stable label used in obs events and reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Crash => "crash",
            FaultKind::Pause => "pause",
            FaultKind::Degrade { .. } => "degrade",
            FaultKind::Overload { .. } => "overload",
            FaultKind::DelaySpike { .. } => "delay_spike",
            FaultKind::Drop { .. } => "drop",
            FaultKind::PartitionOneWay => "partition",
            FaultKind::Drain => "drain",
        }
    }
}

/// One fault applied to one target over one time window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// The replica the fault targets; `None` means the whole network (only
    /// meaningful for [`FaultKind::DelaySpike`] and [`FaultKind::Drop`]).
    pub replica: Option<ReplicaId>,
    /// What goes wrong.
    pub kind: FaultKind,
    /// When the fault becomes active.
    pub start: Instant,
    /// How long it stays active. The window is `[start, start + duration)`.
    pub duration: Duration,
}

impl FaultSpec {
    /// The instant the fault clears (saturating).
    pub fn end(&self) -> Instant {
        self.start.saturating_add(self.duration)
    }

    /// Whether the fault is active at `now`.
    pub fn active_at(&self, now: Instant) -> bool {
        now >= self.start && now < self.end()
    }

    /// Whether the fault applies to messages or service on `replica`.
    pub fn targets(&self, replica: ReplicaId) -> bool {
        self.replica.is_none_or(|r| r == replica)
    }
}

/// A composable, ordered collection of [`FaultSpec`]s.
///
/// Build one with the fluent helpers, then [`FaultPlan::instantiate`] it
/// with the experiment seed to obtain the [`FaultSchedule`] both runtimes
/// consume.
///
/// # Examples
///
/// ```
/// use aqua_core::time::{Duration, Instant};
/// use aqua_faults::FaultPlan;
///
/// let plan = FaultPlan::new()
///     .crash_recover(0, Instant::from_secs(2), Duration::from_secs(3))
///     .pause(1, Instant::from_secs(4), Duration::from_millis(500))
///     .delay_spike_all(Instant::from_secs(6), Duration::from_secs(1), 4.0);
/// let schedule = plan.instantiate(42);
/// assert_eq!(schedule.specs().len(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The raw specs in the plan.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// Adds an arbitrary spec.
    pub fn with(mut self, spec: FaultSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Replica `r` crashes at `at` and restarts after `downtime`.
    pub fn crash_recover(self, r: impl Into<ReplicaId>, at: Instant, downtime: Duration) -> Self {
        self.with(FaultSpec {
            replica: Some(r.into()),
            kind: FaultKind::Crash,
            start: at,
            duration: downtime,
        })
    }

    /// Replica `r` crashes at `at` and never comes back (the paper's model).
    pub fn crash_forever(self, r: impl Into<ReplicaId>, at: Instant) -> Self {
        self.with(FaultSpec {
            replica: Some(r.into()),
            kind: FaultKind::Crash,
            start: at,
            duration: Duration::MAX,
        })
    }

    /// Replica `r` stalls (queued work survives) for `duration` from `at`.
    pub fn pause(self, r: impl Into<ReplicaId>, at: Instant, duration: Duration) -> Self {
        self.with(FaultSpec {
            replica: Some(r.into()),
            kind: FaultKind::Pause,
            start: at,
            duration,
        })
    }

    /// Replica `r`'s service times are multiplied by `factor` for the window.
    pub fn degrade(
        self,
        r: impl Into<ReplicaId>,
        at: Instant,
        duration: Duration,
        factor: f64,
    ) -> Self {
        self.with(FaultSpec {
            replica: Some(r.into()),
            kind: FaultKind::Degrade { factor },
            start: at,
            duration,
        })
    }

    /// An overload burst on replica `r` scaling service times by `factor`.
    pub fn overload(
        self,
        r: impl Into<ReplicaId>,
        at: Instant,
        duration: Duration,
        factor: f64,
    ) -> Self {
        self.with(FaultSpec {
            replica: Some(r.into()),
            kind: FaultKind::Overload { factor },
            start: at,
            duration,
        })
    }

    /// Network-wide delay spike scaling every link by `factor`.
    pub fn delay_spike_all(self, at: Instant, duration: Duration, factor: f64) -> Self {
        self.with(FaultSpec {
            replica: None,
            kind: FaultKind::DelaySpike {
                factor,
                extra: Duration::ZERO,
            },
            start: at,
            duration,
        })
    }

    /// Delay spike on links touching replica `r`: scaled by `factor` plus a
    /// flat `extra`.
    pub fn delay_spike(
        self,
        r: impl Into<ReplicaId>,
        at: Instant,
        duration: Duration,
        factor: f64,
        extra: Duration,
    ) -> Self {
        self.with(FaultSpec {
            replica: Some(r.into()),
            kind: FaultKind::DelaySpike { factor, extra },
            start: at,
            duration,
        })
    }

    /// Messages touching replica `r` are dropped with `probability`.
    pub fn drop_messages(
        self,
        r: impl Into<ReplicaId>,
        at: Instant,
        duration: Duration,
        probability: f64,
    ) -> Self {
        self.with(FaultSpec {
            replica: Some(r.into()),
            kind: FaultKind::Drop { probability },
            start: at,
            duration,
        })
    }

    /// One-way partition: messages *from* replica `r` are lost for the
    /// window.
    pub fn partition_one_way(
        self,
        r: impl Into<ReplicaId>,
        at: Instant,
        duration: Duration,
    ) -> Self {
        self.with(FaultSpec {
            replica: Some(r.into()),
            kind: FaultKind::PartitionOneWay,
            start: at,
            duration,
        })
    }

    /// Replica `r` drains gracefully at `at` (leaves the group, finishes
    /// queued work, goes dormant) and reactivates after `duration` — a
    /// scripted rolling restart.
    pub fn drain(self, r: impl Into<ReplicaId>, at: Instant, duration: Duration) -> Self {
        self.with(FaultSpec {
            replica: Some(r.into()),
            kind: FaultKind::Drain,
            start: at,
            duration,
        })
    }

    /// Resolves the plan against an experiment seed, producing the
    /// deterministic time-indexed [`FaultSchedule`] both runtimes query.
    pub fn instantiate(&self, seed: u64) -> FaultSchedule {
        FaultSchedule::new(self.specs.clone(), seed)
    }
}
