//! The replica selection algorithm (Algorithm 1, §5.3.2).
//!
//! Given per-replica probabilities `F_Ri(t)` of meeting the client's
//! deadline, the algorithm picks the smallest prefix of the
//! probability-sorted replica list that meets the requested probability
//! `Pc(t)` **even if the single best replica crashes**:
//!
//! 1. sort replicas by `F_Ri(t)` in decreasing order;
//! 2. set aside the head `m0` (the most promising replica) — it is always
//!    part of the result but never counted toward the acceptance test;
//! 3. walk the remaining replicas, accumulating `prod = Π (1 − F_Ri(t))`
//!    over the candidate set `X`, until `1 − prod ≥ Pc(t)`;
//! 4. return `K = X ∪ {m0}`; if the test never passes, return **all**
//!    replicas `M`.
//!
//! Because `1 − F_R0(t) ≤ 1 − F_Ri(t)` for every `i`, the set `K` still
//! meets `Pc(t)` after the crash of *any single member* (Eq. 3).

use core::fmt;

use crate::aqua;
use crate::qos::ReplicaId;

/// A replica together with its predicted probability `F_Ri(t)` of answering
/// within the client's (overhead-adjusted) deadline.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Candidate {
    /// The replica this estimate is for.
    pub id: ReplicaId,
    /// `F_Ri(t)`, clamped to `[0, 1]` during selection.
    pub probability: f64,
}

impl Candidate {
    /// Creates a candidate entry.
    pub fn new(id: ReplicaId, probability: f64) -> Self {
        Candidate { id, probability }
    }
}

/// The outcome of running Algorithm 1.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Selection {
    /// The replicas the request should be multicast to, best first.
    replicas: Vec<ReplicaId>,
    /// `P_K(t)` over the *whole* returned set (Eq. 1), for diagnostics.
    predicted_probability: f64,
    /// `P_X(t)` excluding `m0` — the value the acceptance test ran on.
    /// This is the probability guaranteed to survive a single crash.
    crash_tolerant_probability: f64,
    /// `true` when no subset satisfied the test and all replicas of `M`
    /// were returned (Line 15 of Algorithm 1).
    fallback_all: bool,
}

impl Selection {
    /// The selected replica set `K`, ordered by decreasing `F_Ri(t)`.
    pub fn replicas(&self) -> &[ReplicaId] {
        &self.replicas
    }

    /// Consumes the selection, yielding the replica set.
    pub fn into_replicas(self) -> Vec<ReplicaId> {
        self.replicas
    }

    /// Number of replicas selected (the redundancy level of §4).
    pub fn redundancy(&self) -> usize {
        self.replicas.len()
    }

    /// `P_K(t)`: probability that at least one member of `K` responds in
    /// time (Eq. 1), assuming no crashes.
    pub fn predicted_probability(&self) -> f64 {
        self.predicted_probability
    }

    /// `P_X(t)`: the probability that still holds if any one member of `K`
    /// crashes (the quantity tested against `Pc(t)`; Eq. 3).
    pub fn crash_tolerant_probability(&self) -> f64 {
        self.crash_tolerant_probability
    }

    /// Whether Algorithm 1 fell back to returning every replica.
    pub fn is_fallback_all(&self) -> bool {
        self.fallback_all
    }
}

impl fmt::Display for Selection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} replica(s) [{}] predicted {:.3}{}",
            self.replicas.len(),
            self.replicas
                .iter()
                .map(|r| r.to_string())
                .collect::<Vec<_>>()
                .join(", "),
            self.predicted_probability,
            if self.fallback_all {
                " (fallback: all)"
            } else {
                ""
            }
        )
    }
}

/// Runs Algorithm 1 over `candidates` with the client's requested
/// probability `min_probability` (`Pc(t)`).
///
/// The caller is expected to have evaluated each candidate's probability at
/// the overhead-adjusted deadline `t − δ` (§5.3.3); this function is
/// agnostic to how the probabilities were produced.
///
/// Ties in probability are broken by replica id so the result is
/// deterministic. Probabilities are clamped to `[0, 1]`; NaN is treated
/// as 0.
///
/// An empty candidate list yields an empty fallback selection.
///
/// # Examples
///
/// ```
/// use aqua_core::select::{select_replicas, Candidate};
/// use aqua_core::qos::ReplicaId;
///
/// let candidates: Vec<Candidate> = [0.95f64, 0.9, 0.5, 0.2]
///     .iter()
///     .enumerate()
///     .map(|(i, p)| Candidate::new(ReplicaId::new(i as u64), *p))
///     .collect();
///
/// // Pc = 0.9: the test passes with X = {r1} (0.9 ≥ 0.9); K = {r0, r1}.
/// let s = select_replicas(&candidates, 0.9);
/// assert_eq!(s.redundancy(), 2);
/// assert!(!s.is_fallback_all());
/// assert!(s.crash_tolerant_probability() >= 0.9);
/// ```
pub fn select_replicas(candidates: &[Candidate], min_probability: f64) -> Selection {
    select_replicas_tolerating(candidates, min_probability, 1)
}

/// The multi-failure generalization the paper sketches in §5.3.2 ("it
/// should be simple to extend the above algorithm to handle multiple
/// failures by following a method similar to the one outlined above").
///
/// Instead of reserving only the single best replica `m0`, the top
/// `crashes` replicas are set aside and never counted toward the
/// acceptance test; the candidate set `X` must meet `Pc(t)` on its own.
///
/// **Guarantee.** For a non-fallback selection, the crash of *any*
/// `crashes` members of `K` still leaves `P(K \ C) ≥ Pc`: every crashed
/// member of `X` can be "replaced" in the bound by a distinct surviving
/// reserved replica, whose miss probability is no larger (the reserved
/// replicas are exactly the `crashes` highest-probability ones), so the
/// survivor product stays below `1 − Pc` — the same argument as Eq. 3.
///
/// `crashes = 1` reproduces Algorithm 1 exactly; `crashes = 0` performs no
/// reservation (no crash tolerance, minimum redundancy 1).
///
/// # Examples
///
/// ```
/// use aqua_core::select::{select_replicas_tolerating, Candidate};
/// use aqua_core::qos::ReplicaId;
///
/// let candidates: Vec<Candidate> = [0.95f64, 0.9, 0.9, 0.5, 0.5]
///     .iter()
///     .enumerate()
///     .map(|(i, p)| Candidate::new(ReplicaId::new(i as u64), *p))
///     .collect();
/// let single = select_replicas_tolerating(&candidates, 0.8, 1);
/// let double = select_replicas_tolerating(&candidates, 0.8, 2);
/// assert!(double.redundancy() > single.redundancy());
/// ```
#[aqua::hot_path]
pub fn select_replicas_tolerating(
    candidates: &[Candidate],
    min_probability: f64,
    crashes: usize,
) -> Selection {
    // The model hands us probabilities that are already in [0, 1] in the
    // overwhelmingly common case; sanitize lazily so the hot path is a plain
    // copy + sort with no per-element branching.
    let needs_clamp = candidates
        .iter()
        .any(|c| !(c.probability >= 0.0 && c.probability <= 1.0));
    let mut sorted: Vec<Candidate> = if needs_clamp {
        candidates
            .iter()
            .map(|c| Candidate {
                id: c.id,
                probability: if c.probability.is_nan() {
                    0.0
                } else {
                    c.probability.clamp(0.0, 1.0)
                },
            })
            .collect()
    } else {
        // aqua-lint: allow(no-alloc-in-select) the selected set is the return value; one copy of the candidate list is the function's contract
        candidates.to_vec()
    };
    // Decreasing probability, ties broken by ascending id for determinism —
    // the tie-break makes the comparator a total order, so an unstable sort
    // yields the same permutation as a stable one. `total_cmp` agrees with
    // `partial_cmp` on the sanitized (non-NaN) probabilities and cannot
    // panic even if an unsanitized NaN slipped through.
    sorted.sort_unstable_by(|a, b| {
        b.probability
            .total_cmp(&a.probability)
            .then_with(|| a.id.cmp(&b.id))
    });

    if sorted.is_empty() || sorted.len() <= crashes {
        // Not enough replicas to both reserve and test: return everything.
        let full_prod: f64 = sorted.iter().map(|c| 1.0 - c.probability).product();
        let predicted = if sorted.is_empty() {
            0.0
        } else {
            1.0 - full_prod
        };
        return Selection {
            replicas: sorted.iter().map(|c| c.id).collect(),
            predicted_probability: predicted,
            crash_tolerant_probability: 0.0,
            fallback_all: true,
        };
    }

    // In range: the early return above guarantees `crashes < sorted.len()`.
    let (reserved, rest) = sorted.split_at(crashes);

    // Lines 6–14: grow X until 1 − Π(1 − F_Ri) ≥ Pc.
    let mut prod = 1.0f64;
    for (taken, candidate) in rest.iter().enumerate() {
        prod *= 1.0 - candidate.probability;
        if 1.0 - prod >= min_probability {
            let replicas: Vec<ReplicaId> = reserved
                .iter()
                .map(|c| c.id)
                .chain(rest.iter().take(taken + 1).map(|c| c.id))
                .collect();
            let reserved_prod: f64 = reserved.iter().map(|c| 1.0 - c.probability).product();
            return Selection {
                replicas,
                predicted_probability: 1.0 - prod * reserved_prod,
                crash_tolerant_probability: 1.0 - prod,
                fallback_all: false,
            };
        }
    }

    // Line 15: no subset sufficed — return the complete set M.
    let full_prod: f64 = sorted.iter().map(|c| 1.0 - c.probability).product();
    Selection {
        replicas: sorted.iter().map(|c| c.id).collect(),
        predicted_probability: 1.0 - full_prod,
        crash_tolerant_probability: 1.0 - prod,
        fallback_all: true,
    }
}

/// Evaluates Eq. 1 for an arbitrary replica set: the probability that at
/// least one member responds in time given per-member probabilities.
///
/// Inputs are clamped to `[0, 1]`; an empty set yields 0.
///
/// # Examples
///
/// ```
/// use aqua_core::select::combined_probability;
///
/// assert_eq!(combined_probability(&[]), 0.0);
/// assert!((combined_probability(&[0.5, 0.5]) - 0.75).abs() < 1e-12);
/// ```
pub fn combined_probability(probabilities: &[f64]) -> f64 {
    if probabilities.is_empty() {
        return 0.0;
    }
    1.0 - probabilities
        .iter()
        .map(|p| 1.0 - p.clamp(0.0, 1.0))
        .product::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidates(probs: &[f64]) -> Vec<Candidate> {
        probs
            .iter()
            .enumerate()
            .map(|(i, p)| Candidate::new(ReplicaId::new(i as u64), *p))
            .collect()
    }

    fn ids(selection: &Selection) -> Vec<u64> {
        selection.replicas().iter().map(|r| r.index()).collect()
    }

    #[test]
    fn empty_candidates_yield_empty_fallback() {
        let s = select_replicas(&[], 0.9);
        assert!(s.replicas().is_empty());
        assert!(s.is_fallback_all());
        assert_eq!(s.predicted_probability(), 0.0);
    }

    #[test]
    fn single_replica_falls_back_to_all() {
        // With one replica, newSortedList is empty, so the loop never
        // passes and Algorithm 1 returns M (the single replica).
        let s = select_replicas(&candidates(&[0.99]), 0.5);
        assert_eq!(ids(&s), vec![0]);
        assert!(s.is_fallback_all());
    }

    #[test]
    fn zero_probability_request_selects_exactly_two() {
        // Pc = 0 is satisfiable by the very first loop iteration, so the
        // minimum redundancy is always 2 (m0 plus one more) — exactly what
        // Figure 4 shows for the "probability 0" client.
        let s = select_replicas(&candidates(&[0.2, 0.9, 0.5, 0.7]), 0.0);
        assert_eq!(s.redundancy(), 2);
        assert!(!s.is_fallback_all());
        assert_eq!(ids(&s), vec![1, 3], "the two most promising replicas");
    }

    #[test]
    fn best_replica_reserved_not_counted() {
        // probs: best 0.99, rest 0.6 / 0.5. Pc = 0.8:
        // X = {0.6}: 0.6 < 0.8. X = {0.6, 0.5}: 1 − 0.4·0.5 = 0.8 ≥ 0.8.
        // K = {best, 0.6, 0.5} — the 0.99 replica never enters the test.
        let s = select_replicas(&candidates(&[0.99, 0.6, 0.5]), 0.8);
        assert_eq!(ids(&s), vec![0, 1, 2]);
        assert!(!s.is_fallback_all());
        assert!((s.crash_tolerant_probability() - 0.8).abs() < 1e-12);
        assert!(s.predicted_probability() > 0.99);
    }

    #[test]
    fn fallback_when_pool_insufficient() {
        let s = select_replicas(&candidates(&[0.5, 0.3, 0.2]), 0.99);
        assert!(s.is_fallback_all());
        assert_eq!(s.redundancy(), 3);
        // Predicted probability over all of M: 1 − 0.5·0.7·0.8 = 0.72.
        assert!((s.predicted_probability() - 0.72).abs() < 1e-12);
    }

    #[test]
    fn stops_at_minimum_needed() {
        // Never selects more than the minimum number of replicas necessary
        // (§6): with probs 0.9/0.9/0.9 and Pc 0.85, X = {second 0.9}
        // already passes, so K has exactly 2 members.
        let s = select_replicas(&candidates(&[0.9, 0.9, 0.9]), 0.85);
        assert_eq!(s.redundancy(), 2);
    }

    #[test]
    fn sorts_by_probability_desc_with_id_tiebreak() {
        let s = select_replicas(&candidates(&[0.5, 0.9, 0.5, 0.95]), 1.1_f64.min(1.0));
        // Pc = 1 is unreachable with probs < 1 → fallback, but ordering is
        // still by probability then id.
        assert_eq!(ids(&s), vec![3, 1, 0, 2]);
    }

    #[test]
    fn probability_one_requires_certain_backup() {
        // Pc = 1 passes only if X itself accumulates certainty.
        let s = select_replicas(&candidates(&[1.0, 1.0]), 1.0);
        assert!(!s.is_fallback_all());
        assert_eq!(s.redundancy(), 2);
        let s2 = select_replicas(&candidates(&[1.0, 0.999]), 1.0);
        assert!(s2.is_fallback_all(), "backup is not certain → fallback");
    }

    #[test]
    fn nan_and_out_of_range_probabilities_are_sanitized() {
        let cands = vec![
            Candidate::new(ReplicaId::new(0), f64::NAN),
            Candidate::new(ReplicaId::new(1), 2.0),
            Candidate::new(ReplicaId::new(2), -1.0),
        ];
        let s = select_replicas(&cands, 0.5);
        assert_eq!(ids(&s)[0], 1, "clamped 2.0 → 1.0 sorts first");
        // The only replica with mass is reserved as m0, so the candidate
        // set X (all zero-probability) can never reach Pc → fallback.
        assert!(s.is_fallback_all());
        assert!((s.predicted_probability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_crash_tolerance_equation_3() {
        // For a non-fallback selection, removing ANY single member must
        // leave a set that still meets Pc (Eq. 3).
        let probs = [0.95, 0.7, 0.65, 0.4, 0.3];
        let pc = 0.8;
        let cands = candidates(&probs);
        let s = select_replicas(&cands, pc);
        assert!(!s.is_fallback_all());
        let selected: Vec<f64> = s
            .replicas()
            .iter()
            .map(|id| probs[id.index() as usize])
            .collect();
        for drop_idx in 0..selected.len() {
            let survivors: Vec<f64> = selected
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != drop_idx)
                .map(|(_, p)| *p)
                .collect();
            assert!(
                combined_probability(&survivors) >= pc - 1e-12,
                "dropping member {drop_idx} broke the guarantee"
            );
        }
    }

    #[test]
    fn zero_crash_tolerance_selects_single_replica() {
        let s = select_replicas_tolerating(&candidates(&[0.95, 0.9, 0.5]), 0.9, 0);
        assert_eq!(ids(&s), vec![0], "X = {{m0}} alone meets Pc");
        assert!(!s.is_fallback_all());
    }

    #[test]
    fn double_crash_tolerance_reserves_two() {
        // probs sorted: 0.95, 0.9, 0.9, 0.5, 0.5; crashes = 2 reserves the
        // top two; X grows from {0.9, 0.5, 0.5} until ≥ 0.8:
        // X = {0.9} passes immediately → K = 3 members.
        let s = select_replicas_tolerating(&candidates(&[0.95, 0.9, 0.9, 0.5, 0.5]), 0.8, 2);
        assert!(!s.is_fallback_all());
        assert_eq!(s.redundancy(), 3);
        assert_eq!(ids(&s), vec![0, 1, 2]);
        // Losing ANY two members still meets 0.8.
        let probs = [0.95, 0.9, 0.9];
        for a in 0..3 {
            for b in 0..3 {
                if a == b {
                    continue;
                }
                let survivors: Vec<f64> = (0..3)
                    .filter(|i| *i != a && *i != b)
                    .map(|i| probs[i])
                    .collect();
                assert!(combined_probability(&survivors) >= 0.8);
            }
        }
    }

    #[test]
    fn too_few_replicas_for_reservation_fall_back() {
        let s = select_replicas_tolerating(&candidates(&[0.9, 0.9]), 0.5, 2);
        assert!(s.is_fallback_all());
        assert_eq!(s.redundancy(), 2);
        assert_eq!(s.crash_tolerant_probability(), 0.0);
    }

    #[test]
    fn crashes_one_matches_algorithm_1() {
        for pc in [0.0, 0.3, 0.7, 0.95] {
            let cands = candidates(&[0.9, 0.8, 0.6, 0.4, 0.2]);
            assert_eq!(
                select_replicas(&cands, pc),
                select_replicas_tolerating(&cands, pc, 1)
            );
        }
    }

    #[test]
    fn higher_crash_tolerance_never_selects_fewer() {
        let cands = candidates(&[0.95, 0.85, 0.7, 0.6, 0.5, 0.4]);
        let mut last = 0;
        for f in 0..4 {
            let s = select_replicas_tolerating(&cands, 0.7, f);
            assert!(s.redundancy() >= last, "f={f}");
            last = s.redundancy();
        }
    }

    #[test]
    fn combined_probability_basics() {
        assert_eq!(combined_probability(&[]), 0.0);
        assert_eq!(combined_probability(&[1.0]), 1.0);
        assert!((combined_probability(&[0.5, 0.5, 0.5]) - 0.875).abs() < 1e-12);
        assert_eq!(combined_probability(&[2.0]), 1.0, "clamped");
    }

    #[test]
    fn display_mentions_fallback() {
        let s = select_replicas(&candidates(&[0.1, 0.1]), 0.99);
        let text = s.to_string();
        assert!(text.contains("fallback"), "{text}");
    }
}
