//! Timing failure detection and QoS violation callbacks (§5.4.2).
//!
//! "The handler maintains a counter that keeps track of the number of times
//! its client has failed to receive a timely response from a service. …
//! A timing failure occurs if `tr > t`. … If the frequency of timely
//! responses from the service does not meet the minimum probability the
//! client has requested in its QoS specification, the handler notifies the
//! client by issuing a callback."

use core::fmt;

use crate::qos::QosSpec;
use crate::time::Duration;

/// Verdict for a single response, returned by
/// [`TimingFailureDetector::record`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TimingVerdict {
    /// The response arrived within the deadline.
    Timely,
    /// The response missed the deadline (`tr > t`).
    Failure {
        /// `true` when the observed frequency of timely responses has
        /// dropped below `Pc(t)` and the client must be notified via a
        /// callback so it can renegotiate or retry later.
        qos_violated: bool,
    },
}

impl TimingVerdict {
    /// Returns `true` for [`TimingVerdict::Timely`].
    pub fn is_timely(self) -> bool {
        matches!(self, TimingVerdict::Timely)
    }

    /// Returns `true` when the client callback should fire.
    pub fn should_notify(self) -> bool {
        matches!(self, TimingVerdict::Failure { qos_violated: true })
    }
}

/// Tracks response times against a [`QosSpec`] and detects QoS violations.
///
/// # Examples
///
/// ```
/// use aqua_core::failure::{TimingFailureDetector, TimingVerdict};
/// use aqua_core::qos::QosSpec;
/// use aqua_core::time::Duration;
///
/// # fn main() -> Result<(), aqua_core::qos::QosError> {
/// let qos = QosSpec::new(Duration::from_millis(100), 0.5)?;
/// let mut det = TimingFailureDetector::new(qos);
/// assert!(det.record(Duration::from_millis(80)).is_timely());
/// // One late response out of two keeps the timely rate at exactly 0.5,
/// // which still satisfies Pc = 0.5.
/// assert_eq!(
///     det.record(Duration::from_millis(150)),
///     TimingVerdict::Failure { qos_violated: false },
/// );
/// // A second late response drops the rate to 1/3 < 0.5: callback time.
/// assert!(det.record(Duration::from_millis(150)).should_notify());
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TimingFailureDetector {
    qos: QosSpec,
    total: u64,
    failures: u64,
    notifications: u64,
    min_samples: u64,
}

impl TimingFailureDetector {
    /// Creates a detector for the given specification.
    pub fn new(qos: QosSpec) -> Self {
        TimingFailureDetector {
            qos,
            total: 0,
            failures: 0,
            notifications: 0,
            min_samples: 1,
        }
    }

    /// Suppresses callbacks until at least `min_samples` responses have been
    /// observed, avoiding spurious notifications on the very first requests.
    /// The paper's handler notifies as soon as the frequency drops, which is
    /// the default (`min_samples = 1`).
    #[must_use]
    pub fn with_min_samples(mut self, min_samples: u64) -> Self {
        self.min_samples = min_samples.max(1);
        self
    }

    /// The specification currently enforced.
    pub fn qos(&self) -> QosSpec {
        self.qos
    }

    /// Records a measured response time `tr = t4 − t0` and classifies it.
    pub fn record(&mut self, response_time: Duration) -> TimingVerdict {
        self.total += 1;
        if response_time <= self.qos.deadline() {
            TimingVerdict::Timely
        } else {
            self.failures += 1;
            let qos_violated =
                self.total >= self.min_samples && self.timely_rate() < self.qos.min_probability();
            if qos_violated {
                self.notifications += 1;
            }
            TimingVerdict::Failure { qos_violated }
        }
    }

    /// Total responses observed since the last (re)negotiation.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Timing failures observed since the last (re)negotiation.
    pub fn failures(&self) -> u64 {
        self.failures
    }

    /// Number of QoS-violation callbacks issued.
    pub fn notifications(&self) -> u64 {
        self.notifications
    }

    /// Observed fraction of timely responses (1 when nothing observed yet).
    pub fn timely_rate(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            (self.total - self.failures) as f64 / self.total as f64
        }
    }

    /// Observed fraction of timing failures (0 when nothing observed yet).
    pub fn failure_rate(&self) -> f64 {
        1.0 - self.timely_rate()
    }

    /// Whether the service is currently violating the specification.
    pub fn is_violating(&self) -> bool {
        self.total > 0 && self.timely_rate() < self.qos.min_probability()
    }

    /// Installs a renegotiated specification and resets the counters, as
    /// when "the client can then either choose to renegotiate its QoS
    /// specification or issue its requests to the service at a later time".
    pub fn renegotiate(&mut self, qos: QosSpec) {
        self.qos = qos;
        self.total = 0;
        self.failures = 0;
        self.notifications = 0;
    }
}

impl fmt::Debug for TimingFailureDetector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TimingFailureDetector")
            .field("qos", &self.qos)
            .field("total", &self.total)
            .field("failures", &self.failures)
            .field("timely_rate", &self.timely_rate())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(deadline_ms: u64, p: f64) -> QosSpec {
        QosSpec::new(Duration::from_millis(deadline_ms), p).unwrap()
    }

    #[test]
    fn boundary_response_is_timely() {
        let mut det = TimingFailureDetector::new(spec(100, 0.9));
        assert_eq!(
            det.record(Duration::from_millis(100)),
            TimingVerdict::Timely,
            "tr == t is not a failure (failure requires tr > t)"
        );
        assert_eq!(det.failures(), 0);
    }

    #[test]
    fn failure_counting_and_rates() {
        let mut det = TimingFailureDetector::new(spec(100, 0.0));
        det.record(Duration::from_millis(50));
        det.record(Duration::from_millis(150));
        det.record(Duration::from_millis(250));
        assert_eq!(det.total(), 3);
        assert_eq!(det.failures(), 2);
        assert!((det.failure_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert!(!det.is_violating(), "Pc = 0 tolerates everything");
    }

    #[test]
    fn callback_fires_when_rate_drops_below_pc() {
        let mut det = TimingFailureDetector::new(spec(100, 0.75));
        for _ in 0..3 {
            assert!(det.record(Duration::from_millis(10)).is_timely());
        }
        // 3 timely + 1 late = 0.75: not yet below.
        assert_eq!(
            det.record(Duration::from_millis(200)),
            TimingVerdict::Failure {
                qos_violated: false
            }
        );
        // 3 timely + 2 late = 0.6 < 0.75: notify.
        let verdict = det.record(Duration::from_millis(200));
        assert!(verdict.should_notify());
        assert_eq!(det.notifications(), 1);
        assert!(det.is_violating());
    }

    #[test]
    fn min_samples_defers_notification() {
        let mut det = TimingFailureDetector::new(spec(100, 0.9)).with_min_samples(10);
        // The very first response is late: rate 0 < 0.9 but sample count
        // is below the warm-up threshold.
        assert_eq!(
            det.record(Duration::from_millis(500)),
            TimingVerdict::Failure {
                qos_violated: false
            }
        );
        for _ in 0..8 {
            det.record(Duration::from_millis(1));
        }
        // 10th sample, late: 8/10 = 0.8 < 0.9 → notify now.
        assert!(det.record(Duration::from_millis(500)).should_notify());
    }

    #[test]
    fn renegotiation_resets_counters() {
        let mut det = TimingFailureDetector::new(spec(100, 0.9));
        det.record(Duration::from_millis(500));
        assert!(det.is_violating());
        det.renegotiate(spec(600, 0.5));
        assert_eq!(det.total(), 0);
        assert_eq!(det.notifications(), 0);
        assert!(!det.is_violating());
        assert!(det.record(Duration::from_millis(500)).is_timely());
    }

    #[test]
    fn pristine_detector_reports_perfect_rate() {
        let det = TimingFailureDetector::new(spec(100, 0.9));
        assert_eq!(det.timely_rate(), 1.0);
        assert_eq!(det.failure_rate(), 0.0);
        assert!(!det.is_violating());
    }
}
