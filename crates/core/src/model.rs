//! The online response-time model (§5.3.1, Eq. 2).
//!
//! For each replica `m_i` the model predicts the distribution of the
//! response time
//!
//! ```text
//! R_i = S_i + W_i + T_i
//! ```
//!
//! by convolving the relative-frequency pmfs of the recorded service times
//! (`S_i`) and queuing delays (`W_i`) and shifting by the gateway-to-gateway
//! delay (`T_i`). The resulting distribution function `F_Ri(t)` is the
//! per-replica input to the selection algorithm.

use std::collections::HashMap;

use crate::aqua;
use crate::pmf::{CdfTable, ConvScratch, Pmf};
use crate::qos::ReplicaId;
use crate::repository::{MethodId, ReplicaStats};
use crate::time::Duration;
use crate::window::BucketedWindow;

/// How the gateway-to-gateway delay term `T_i` is estimated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub enum DelayEstimator {
    /// Use the most recently measured value (the paper's choice, justified
    /// by LAN traffic being stable; §5.3.1).
    #[default]
    LastValue,
    /// Build a pmf over the recorded delay window (the extension the paper
    /// sketches for environments with fluctuating traffic).
    WindowPmf,
}

/// How the queuing-delay term `W_i` is estimated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub enum QueueEstimator {
    /// Relative frequency over the recorded queuing-delay window — the
    /// paper's estimator (§5.3.1).
    #[default]
    History,
    /// Predict the wait from the replica's **current** queue length `q`
    /// (which it publishes with every update, §5.2): `W ≈ S^{*q}`, the
    /// q-fold convolution of the service-time pmf. Reacts instantly to
    /// load changes the delay window has not seen yet; an extension in the
    /// spirit of the queue-length-aware selectors of \[5\].
    QueueScaled,
}

/// How histories of different methods are combined (multi-interface
/// extension, §8 ext. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub enum MethodScope {
    /// Use only the history recorded for the method being invoked.
    /// This is the paper's behaviour when services export a single method
    /// (everything lands on [`MethodId::DEFAULT`]).
    #[default]
    PerMethod,
    /// Mix all method histories, weighted by sample count. Used when the
    /// middleware cannot classify the outgoing request.
    Aggregate,
}

/// Configuration of the response-time model.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ModelConfig {
    /// Quantization step for all pmfs. The experiments use 1 ms, which is
    /// ≤1% of the deadlines studied.
    pub bucket: Duration,
    /// Estimator for the `T_i` term.
    pub delay_estimator: DelayEstimator,
    /// Estimator for the `W_i` term.
    pub queue_estimator: QueueEstimator,
    /// How per-method histories combine.
    pub method_scope: MethodScope,
    /// Tail mass pruned (then renormalized) from intermediate convolution
    /// products, bounding support growth in the q-fold `QueueScaled`
    /// convolution. `0.0` disables pruning. See [`Pmf::prune_tails`] for
    /// why values ≤ 1e-12 cannot affect replica ranking.
    pub prune_epsilon: f64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            bucket: Duration::from_millis(1),
            delay_estimator: DelayEstimator::LastValue,
            queue_estimator: QueueEstimator::History,
            method_scope: MethodScope::PerMethod,
            prune_epsilon: 1e-12,
        }
    }
}

/// Cap on the q-fold convolution depth of
/// [`QueueEstimator::QueueScaled`]: beyond this the prediction is "far too
/// late anyway" and extra convolutions only cost time.
const MAX_QUEUE_CONVOLUTIONS: u32 = 32;

/// Predicts `F_Ri(t)` for a replica from its repository entry.
///
/// # Examples
///
/// ```
/// use aqua_core::model::{ModelConfig, ResponseTimeModel};
/// use aqua_core::repository::{InfoRepository, PerfReport};
/// use aqua_core::qos::ReplicaId;
/// use aqua_core::time::{Duration, Instant};
///
/// let ms = Duration::from_millis;
/// let mut repo = InfoRepository::new(5);
/// let r = ReplicaId::new(0);
/// repo.insert_replica(r);
/// for ts in [95u64, 100, 105] {
///     repo.record_perf(r, PerfReport::new(ms(ts), ms(0), 0), Instant::EPOCH);
/// }
/// repo.record_gateway_delay(r, ms(4), Instant::EPOCH);
///
/// let model = ResponseTimeModel::new(ModelConfig::default());
/// let p = model.probability_by(repo.stats(r).unwrap(), ms(105)).unwrap();
/// assert!(p > 0.6 && p <= 1.0, "2 of 3 samples respond within 105 ms: {p}");
/// ```
#[derive(Debug, Clone, Default)]
pub struct ResponseTimeModel {
    config: ModelConfig,
}

impl ResponseTimeModel {
    /// Creates a model with the given configuration.
    pub fn new(config: ModelConfig) -> Self {
        ResponseTimeModel { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Predicts the full response-time pmf of a replica, or `None` if the
    /// repository entry does not yet hold enough data (no service-time or
    /// queuing-delay samples, or no gateway-delay measurement).
    pub fn response_pmf(&self, stats: &ReplicaStats) -> Option<Pmf> {
        self.response_pmf_for(stats, None)
    }

    /// Like [`ResponseTimeModel::response_pmf`] but restricted to one
    /// method's history when `method` is `Some` and the scope is
    /// [`MethodScope::PerMethod`].
    pub fn response_pmf_for(&self, stats: &ReplicaStats, method: Option<MethodId>) -> Option<Pmf> {
        let mut scratch = ConvScratch::new();
        self.response_pmf_with(stats, method, &mut scratch)
    }

    /// Builds a window's relative-frequency pmf: straight from the
    /// incremental bucket counts when the window is counted at the model's
    /// bucket width, falling back to rescanning the raw samples otherwise
    /// (e.g. a bucket-width ablation running against a 1 ms repository).
    fn window_pmf(&self, window: &BucketedWindow) -> Option<Pmf> {
        if window.bucket_width() == self.config.bucket {
            Pmf::from_bucket_counts(window.bucket_counts(), self.config.bucket).ok()
        } else {
            Pmf::from_samples(window.samples().iter().copied(), self.config.bucket).ok()
        }
    }

    /// The full model pipeline with caller-provided convolution scratch
    /// buffers — the allocation-lean variant behind both
    /// [`ResponseTimeModel::response_pmf_for`] and the cached path (which
    /// must agree bit-for-bit, so there is exactly one pipeline).
    pub fn response_pmf_with(
        &self,
        stats: &ReplicaStats,
        method: Option<MethodId>,
        scratch: &mut ConvScratch,
    ) -> Option<Pmf> {
        let (service, queuing) = match (self.config.method_scope, method) {
            (MethodScope::PerMethod, m) => {
                let history = stats.history(m.unwrap_or_default())?;
                let service = self.window_pmf(history.service_window())?;
                let queuing = self.window_pmf(history.queuing_window())?;
                (service, queuing)
            }
            (MethodScope::Aggregate, _) => {
                let mut service_parts = Vec::new();
                let mut queue_parts = Vec::new();
                for (_, history) in stats.histories() {
                    if history.is_empty() {
                        continue;
                    }
                    let weight = history.len() as f64;
                    if let Some(pmf) = self.window_pmf(history.service_window()) {
                        service_parts.push((weight, pmf));
                    }
                    if let Some(pmf) = self.window_pmf(history.queuing_window()) {
                        queue_parts.push((weight, pmf));
                    }
                }
                let service = Pmf::mixture(
                    &service_parts
                        .iter()
                        .map(|(w, p)| (*w, p))
                        .collect::<Vec<_>>(),
                )
                .ok()?;
                let queuing =
                    Pmf::mixture(&queue_parts.iter().map(|(w, p)| (*w, p)).collect::<Vec<_>>())
                        .ok()?;
                (service, queuing)
            }
        };

        let queuing = match self.config.queue_estimator {
            QueueEstimator::History => queuing,
            QueueEstimator::QueueScaled => {
                let depth = stats.outstanding().min(MAX_QUEUE_CONVOLUTIONS);
                service.self_convolve(depth, self.config.prune_epsilon, scratch)
            }
        };

        // Both terms were quantized to `config.bucket` above, so a bucket
        // mismatch is impossible; `.ok()` keeps that invariant panic-free.
        let combined = service.convolve(&queuing).ok()?;

        match self.config.delay_estimator {
            DelayEstimator::LastValue => {
                let delay = stats.last_gateway_delay()?;
                Some(combined.shift_by(delay))
            }
            DelayEstimator::WindowPmf => {
                let delays = self.window_pmf(stats.gateway_delay_window())?;
                Some(combined.convolve(&delays).ok()?)
            }
        }
    }

    /// Predicts `F_Ri(deadline)`: the probability that a response from this
    /// replica arrives within `deadline`. `None` when data is insufficient.
    pub fn probability_by(&self, stats: &ReplicaStats, deadline: Duration) -> Option<f64> {
        self.probability_by_for(stats, deadline, None)
    }

    /// Per-method variant of [`ResponseTimeModel::probability_by`].
    pub fn probability_by_for(
        &self,
        stats: &ReplicaStats,
        deadline: Duration,
        method: Option<MethodId>,
    ) -> Option<f64> {
        self.response_pmf_for(stats, method)
            .map(|pmf| pmf.cdf(deadline))
    }

    /// Cached variant of [`ResponseTimeModel::probability_by_for`]: memoizes
    /// the fully-convolved response distribution (as a cumulative table) per
    /// `(replica, method)` and answers repeat queries with a single CDF
    /// lookup — no window rescans, no convolutions, no allocations.
    ///
    /// Freshness is decided purely by generation counters ([`GenKey`]): the
    /// cached entry is reused if and only if the replica epoch, the relevant
    /// perf generation, the gateway-delay generation, and the outstanding
    /// count all match the values captured when the entry was built. Any
    /// `record_perf`, `record_gateway_delay`, probation transition, or
    /// remove/re-insert moves one of those counters and falls through to a
    /// full recompute via [`ResponseTimeModel::response_pmf_with`] — the
    /// *same* pipeline as the uncached path, so cached and from-scratch
    /// answers are bit-identical.
    #[aqua::hot_path]
    pub fn probability_by_cached(
        &self,
        cache: &mut ModelCache,
        id: ReplicaId,
        stats: &ReplicaStats,
        deadline: Duration,
        method: Option<MethodId>,
    ) -> Option<f64> {
        let (slot, perf_generation) = match self.config.method_scope {
            MethodScope::PerMethod => {
                let m = method.unwrap_or_default();
                let Some(history) = stats.history(m) else {
                    // The uncached path returns None too; any entry under
                    // this slot is from a previous incarnation of the id
                    // and can never hit again — shed it now.
                    let slot = u64::from(m.index());
                    if cache.entries.remove(&(id, slot)).is_some() {
                        cache.stats.invalidations += 1;
                    }
                    return None;
                };
                (u64::from(m.index()), history.generation())
            }
            MethodScope::Aggregate => (u64::MAX, stats.perf_generation()),
        };
        let key = GenKey {
            epoch: stats.epoch(),
            perf: perf_generation,
            delay: stats.delay_generation(),
            outstanding: stats.outstanding(),
        };
        if let Some(entry) = cache.entries.get(&(id, slot)) {
            if entry.key == key {
                cache.stats.hits += 1;
                return Some(entry.cdf.value_at(deadline));
            }
        }
        match self.response_pmf_with(stats, method, &mut cache.scratch) {
            Some(pmf) => {
                cache.stats.misses += 1;
                let cdf = pmf.cumulative();
                let value = cdf.value_at(deadline);
                if cache
                    .entries
                    .insert((id, slot), CacheEntry { key, cdf })
                    .is_some()
                {
                    cache.stats.invalidations += 1;
                }
                Some(value)
            }
            None => {
                if cache.entries.remove(&(id, slot)).is_some() {
                    cache.stats.invalidations += 1;
                }
                None
            }
        }
    }
}

/// Counters describing how a [`ModelCache`] has behaved so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModelCacheStats {
    /// Queries answered from a memoized cumulative table.
    pub hits: u64,
    /// Queries that had to run the full convolution pipeline.
    pub misses: u64,
    /// Entries displaced because their generation key went stale (or their
    /// replica disappeared / stopped having enough data).
    pub invalidations: u64,
}

/// The complete freshness fingerprint of one cached response distribution.
///
/// `epoch` guards against ABA on remove/re-insert of a replica id; `perf` is
/// the per-method history generation (PerMethod scope) or the replica-wide
/// perf generation (Aggregate scope — also bumped by probation transitions);
/// `delay` is the gateway-delay window generation; `outstanding` captures the
/// queue depth the QueueScaled estimator convolved with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct GenKey {
    epoch: u64,
    perf: u64,
    delay: u64,
    outstanding: u32,
}

#[derive(Debug, Clone)]
struct CacheEntry {
    key: GenKey,
    cdf: CdfTable,
}

/// Memoized response distributions keyed by `(replica, method slot)`, plus
/// the reusable convolution scratch used on misses. See
/// [`ResponseTimeModel::probability_by_cached`].
#[derive(Debug, Default)]
pub struct ModelCache {
    entries: HashMap<(ReplicaId, u64), CacheEntry>,
    scratch: ConvScratch,
    stats: ModelCacheStats,
}

impl ModelCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lifetime hit/miss/invalidation counters.
    pub fn stats(&self) -> ModelCacheStats {
        self.stats
    }

    /// Number of memoized `(replica, method)` distributions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every entry (counters are preserved).
    pub fn clear(&mut self) {
        let dropped = self.entries.len() as u64;
        self.entries.clear();
        self.stats.invalidations += dropped;
    }

    /// Drops entries for replicas not accepted by `keep` — used to shed
    /// state for removed replicas without waiting for epoch mismatches.
    pub fn retain_replicas(&mut self, mut keep: impl FnMut(ReplicaId) -> bool) {
        let before = self.entries.len();
        self.entries.retain(|(id, _), _| keep(*id));
        self.stats.invalidations += (before - self.entries.len()) as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qos::ReplicaId;
    use crate::repository::{InfoRepository, PerfReport};
    use crate::time::Instant;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn warm_repo(service: &[u64], queue: &[u64], delay: u64) -> InfoRepository {
        let mut repo = InfoRepository::new(service.len().max(1));
        let r = ReplicaId::new(0);
        repo.insert_replica(r);
        for (ts, tq) in service.iter().zip(queue) {
            repo.record_perf(r, PerfReport::new(ms(*ts), ms(*tq), 0), Instant::EPOCH);
        }
        repo.record_gateway_delay(r, ms(delay), Instant::EPOCH);
        repo
    }

    #[test]
    fn insufficient_data_yields_none() {
        let model = ResponseTimeModel::default();
        let mut repo = InfoRepository::new(3);
        let r = ReplicaId::new(0);
        repo.insert_replica(r);
        assert!(model.response_pmf(repo.stats(r).unwrap()).is_none());
        // Perf but no delay:
        repo.record_perf(r, PerfReport::new(ms(10), ms(0), 0), Instant::EPOCH);
        assert!(model.response_pmf(repo.stats(r).unwrap()).is_none());
        // Delay too → warm.
        repo.record_gateway_delay(r, ms(1), Instant::EPOCH);
        assert!(model.response_pmf(repo.stats(r).unwrap()).is_some());
    }

    #[test]
    fn deterministic_terms_add_exactly() {
        let repo = warm_repo(&[100, 100], &[10, 10], 5);
        let model = ResponseTimeModel::default();
        let stats = repo.stats(ReplicaId::new(0)).unwrap();
        let pmf = model.response_pmf(stats).unwrap();
        assert_eq!(pmf.mean(), ms(115));
        assert_eq!(model.probability_by(stats, ms(114)).unwrap(), 0.0);
        assert_eq!(model.probability_by(stats, ms(115)).unwrap(), 1.0);
    }

    #[test]
    fn convolution_spreads_mass() {
        // service ∈ {90, 110} each ½; queue ∈ {0, 20} each ½; delay 0.
        let repo = warm_repo(&[90, 110], &[0, 20], 0);
        let model = ResponseTimeModel::default();
        let stats = repo.stats(ReplicaId::new(0)).unwrap();
        // Sums: 90, 110, 110, 130 each ¼.
        assert!((model.probability_by(stats, ms(90)).unwrap() - 0.25).abs() < 1e-9);
        assert!((model.probability_by(stats, ms(110)).unwrap() - 0.75).abs() < 1e-9);
        assert!((model.probability_by(stats, ms(130)).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn last_value_delay_estimator_uses_latest() {
        let mut repo = warm_repo(&[100], &[0], 5);
        let r = ReplicaId::new(0);
        repo.record_gateway_delay(r, ms(50), Instant::EPOCH);
        let model = ResponseTimeModel::default();
        let pmf = model.response_pmf(repo.stats(r).unwrap()).unwrap();
        assert_eq!(pmf.mean(), ms(150), "uses latest delay (50), not first (5)");
    }

    #[test]
    fn window_pmf_delay_estimator_spreads_delay() {
        let mut repo = InfoRepository::new(4);
        let r = ReplicaId::new(0);
        repo.insert_replica(r);
        repo.record_perf(r, PerfReport::new(ms(100), ms(0), 0), Instant::EPOCH);
        repo.record_gateway_delay(r, ms(0), Instant::EPOCH);
        repo.record_gateway_delay(r, ms(40), Instant::EPOCH);
        let model = ResponseTimeModel::new(ModelConfig {
            delay_estimator: DelayEstimator::WindowPmf,
            ..ModelConfig::default()
        });
        let stats = repo.stats(r).unwrap();
        // Delay history {0, 40} each ½ → response ∈ {100, 140}.
        assert!((model.probability_by(stats, ms(100)).unwrap() - 0.5).abs() < 1e-9);
        assert!((model.probability_by(stats, ms(140)).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn per_method_scope_separates_histories() {
        let mut repo = InfoRepository::new(4);
        let r = ReplicaId::new(0);
        repo.insert_replica(r);
        let fast = MethodId::new(1);
        let slow = MethodId::new(2);
        repo.record_perf(
            r,
            PerfReport::new(ms(10), ms(0), 0).with_method(fast),
            Instant::EPOCH,
        );
        repo.record_perf(
            r,
            PerfReport::new(ms(500), ms(0), 0).with_method(slow),
            Instant::EPOCH,
        );
        repo.record_gateway_delay(r, ms(0), Instant::EPOCH);
        let model = ResponseTimeModel::default();
        let stats = repo.stats(r).unwrap();
        assert_eq!(
            model.probability_by_for(stats, ms(50), Some(fast)).unwrap(),
            1.0
        );
        assert_eq!(
            model.probability_by_for(stats, ms(50), Some(slow)).unwrap(),
            0.0
        );
        assert!(
            model.probability_by_for(stats, ms(50), None).is_none(),
            "no history recorded under the default method id"
        );
    }

    #[test]
    fn aggregate_scope_mixes_methods_by_sample_count() {
        let mut repo = InfoRepository::new(4);
        let r = ReplicaId::new(0);
        repo.insert_replica(r);
        let fast = MethodId::new(1);
        let slow = MethodId::new(2);
        // 3 fast samples, 1 slow sample.
        for _ in 0..3 {
            repo.record_perf(
                r,
                PerfReport::new(ms(10), ms(0), 0).with_method(fast),
                Instant::EPOCH,
            );
        }
        repo.record_perf(
            r,
            PerfReport::new(ms(500), ms(0), 0).with_method(slow),
            Instant::EPOCH,
        );
        repo.record_gateway_delay(r, ms(0), Instant::EPOCH);
        let model = ResponseTimeModel::new(ModelConfig {
            method_scope: MethodScope::Aggregate,
            ..ModelConfig::default()
        });
        let p = model
            .probability_by(repo.stats(r).unwrap(), ms(50))
            .unwrap();
        assert!((p - 0.75).abs() < 1e-9, "3/4 of the mass is fast: {p}");
    }

    #[test]
    fn queue_scaled_estimator_uses_current_queue_length() {
        let mut repo = InfoRepository::new(4);
        let r = ReplicaId::new(0);
        repo.insert_replica(r);
        // Historical queuing delays are all zero, but the replica just
        // published a queue of 3 outstanding requests.
        for _ in 0..3 {
            repo.record_perf(r, PerfReport::new(ms(50), ms(0), 3), Instant::EPOCH);
        }
        repo.record_gateway_delay(r, ms(0), Instant::EPOCH);
        let stats = repo.stats(r).unwrap();

        let history_model = ResponseTimeModel::default();
        assert_eq!(
            history_model.probability_by(stats, ms(60)).unwrap(),
            1.0,
            "the paper's estimator sees only the (empty-queue) history"
        );

        let queue_model = ResponseTimeModel::new(ModelConfig {
            queue_estimator: QueueEstimator::QueueScaled,
            ..ModelConfig::default()
        });
        // Wait ≈ 3 × 50 ms, then 50 ms service: response ≈ 200 ms.
        assert_eq!(queue_model.probability_by(stats, ms(199)).unwrap(), 0.0);
        assert_eq!(queue_model.probability_by(stats, ms(200)).unwrap(), 1.0);
    }

    #[test]
    fn queue_scaled_with_empty_queue_matches_service_only() {
        let mut repo = InfoRepository::new(4);
        let r = ReplicaId::new(0);
        repo.insert_replica(r);
        repo.record_perf(r, PerfReport::new(ms(70), ms(5), 0), Instant::EPOCH);
        repo.record_gateway_delay(r, ms(0), Instant::EPOCH);
        let stats = repo.stats(r).unwrap();
        let queue_model = ResponseTimeModel::new(ModelConfig {
            queue_estimator: QueueEstimator::QueueScaled,
            ..ModelConfig::default()
        });
        assert_eq!(
            queue_model.response_pmf(stats).unwrap().mean(),
            ms(70),
            "queue of 0 → no wait term at all"
        );
    }

    #[test]
    fn cdf_is_monotone_in_deadline() {
        let repo = warm_repo(&[80, 100, 120, 140], &[0, 5, 10, 20], 3);
        let model = ResponseTimeModel::default();
        let stats = repo.stats(ReplicaId::new(0)).unwrap();
        let mut last = 0.0;
        for t in (60..200).step_by(5) {
            let p = model.probability_by(stats, ms(t)).unwrap();
            assert!(p >= last - 1e-12, "cdf decreased at {t}");
            last = p;
        }
    }

    #[test]
    fn cache_hits_on_unchanged_windows_and_matches_uncached() {
        let repo = warm_repo(&[80, 100, 120, 140], &[0, 5, 10, 20], 3);
        let model = ResponseTimeModel::default();
        let r = ReplicaId::new(0);
        let stats = repo.stats(r).unwrap();
        let mut cache = ModelCache::new();
        for t in (60..200).step_by(5) {
            let cached = model.probability_by_cached(&mut cache, r, stats, ms(t), None);
            let fresh = model.probability_by(stats, ms(t));
            assert_eq!(cached, fresh, "cached and uncached disagree at {t}");
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "one build, then pure lookups");
        assert_eq!(stats.hits, 27);
        assert_eq!(stats.invalidations, 0);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cache_invalidates_on_each_generation_source() {
        let mut repo = warm_repo(&[100, 100], &[10, 10], 5);
        let r = ReplicaId::new(0);
        // Aggregate scope keys on the replica-wide perf generation, which is
        // the counter probation transitions move (per-method history
        // generations only move with their own samples — probation cannot
        // change a per-method distribution, so no invalidation is needed
        // there).
        let model = ResponseTimeModel::new(ModelConfig {
            method_scope: MethodScope::Aggregate,
            queue_estimator: QueueEstimator::QueueScaled,
            ..ModelConfig::default()
        });
        let mut cache = ModelCache::new();
        let mut misses = 0;
        let query = |cache: &mut ModelCache, repo: &InfoRepository| {
            let stats = repo.stats(r).unwrap();
            let cached = model.probability_by_cached(cache, r, stats, ms(300), None);
            assert_eq!(cached, model.probability_by(stats, ms(300)));
        };

        query(&mut cache, &repo);
        misses += 1;
        assert_eq!(cache.stats().misses, misses);

        // Unchanged → hit.
        query(&mut cache, &repo);
        assert_eq!(cache.stats().misses, misses);
        assert_eq!(cache.stats().hits, 1);

        // New perf sample (also changes outstanding) → rebuild.
        repo.record_perf(r, PerfReport::new(ms(120), ms(0), 2), Instant::EPOCH);
        query(&mut cache, &repo);
        misses += 1;
        assert_eq!(cache.stats().misses, misses);

        // New gateway delay → rebuild.
        repo.record_gateway_delay(r, ms(7), Instant::EPOCH);
        query(&mut cache, &repo);
        misses += 1;
        assert_eq!(cache.stats().misses, misses);

        // Probation transition → rebuild (perf generation moves).
        repo.set_probation(r, 1);
        query(&mut cache, &repo);
        misses += 1;
        assert_eq!(cache.stats().misses, misses);

        // Every rebuild displaced the previous entry.
        assert_eq!(cache.stats().invalidations, misses - 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cache_epoch_guards_against_replica_reinsertion() {
        let mut repo = warm_repo(&[100], &[0], 0);
        let r = ReplicaId::new(0);
        let model = ResponseTimeModel::default();
        let mut cache = ModelCache::new();
        assert!(model
            .probability_by_cached(&mut cache, r, repo.stats(r).unwrap(), ms(90), None)
            .is_some());

        // Remove and re-insert the same id, replaying the *same number* of
        // updates so the per-replica generations coincide; only the epoch
        // distinguishes the incarnations.
        repo.remove_replica(r);
        repo.insert_replica(r);
        repo.record_perf(r, PerfReport::new(ms(500), ms(0), 0), Instant::EPOCH);
        repo.record_gateway_delay(r, ms(0), Instant::EPOCH);
        let p = model
            .probability_by_cached(&mut cache, r, repo.stats(r).unwrap(), ms(90), None)
            .unwrap();
        assert_eq!(
            p, 0.0,
            "stale 100 ms entry must not answer for the 500 ms incarnation"
        );
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn cache_drops_entry_when_data_becomes_insufficient() {
        let mut repo = warm_repo(&[100], &[0], 0);
        let r = ReplicaId::new(0);
        let model = ResponseTimeModel::default();
        let mut cache = ModelCache::new();
        assert!(model
            .probability_by_cached(&mut cache, r, repo.stats(r).unwrap(), ms(90), None)
            .is_some());
        assert_eq!(cache.len(), 1);

        repo.remove_replica(r);
        repo.insert_replica(r);
        assert!(model
            .probability_by_cached(&mut cache, r, repo.stats(r).unwrap(), ms(90), None)
            .is_none());
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn retain_replicas_sheds_removed_ids() {
        let model = ResponseTimeModel::default();
        let mut repo = InfoRepository::new(2);
        let mut cache = ModelCache::new();
        for raw in 0..3u64 {
            let id = ReplicaId::new(raw);
            repo.insert_replica(id);
            repo.record_perf(id, PerfReport::new(ms(10), ms(0), 0), Instant::EPOCH);
            repo.record_gateway_delay(id, ms(1), Instant::EPOCH);
            assert!(model
                .probability_by_cached(&mut cache, id, repo.stats(id).unwrap(), ms(90), None)
                .is_some());
        }
        assert_eq!(cache.len(), 3);
        cache.retain_replicas(|id| id != ReplicaId::new(1));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().invalidations, 1);
    }
}
