//! Empirical probability mass functions over durations.
//!
//! The paper's model (§5.3.1) estimates the response-time distribution of a
//! replica as the **discrete convolution** of three terms (Eq. 2):
//!
//! ```text
//! R_i = S_i + W_i + T_i
//! ```
//!
//! where the pmfs of the service time `S_i` and queuing delay `W_i` are
//! computed "based on the relative frequency of their values recorded in the
//! sliding window", and `T_i` is the most recently measured two-way
//! gateway-to-gateway delay (a point mass).
//!
//! [`Pmf`] implements exactly this: bucketed relative-frequency estimation
//! ([`Pmf::from_samples`]), point masses ([`Pmf::point`]), convolution
//! ([`Pmf::convolve`]), constant shifts ([`Pmf::shift_by`]), and the
//! distribution function `F(t) = P(X ≤ t)` ([`Pmf::cdf`]).
//!
//! # Bucketing convention
//!
//! A sample `d` falls into bucket `⌊d / w⌋` for bucket width `w`, and every
//! bucket is represented by its **lower edge**. This makes convolution exact
//! in index space (the mean of a convolution is the sum of the means) at the
//! cost of a uniform downward bias of at most one bucket width per term. The
//! experiments use `w = 1 ms` against deadlines of 100–200 ms, so the bias is
//! below 1% and identical for every replica, which leaves the *ranking* used
//! by the selection algorithm untouched.

use core::fmt;

use crate::time::Duration;

/// How far the total probability mass of a [`Pmf`] may drift from 1 due to
/// floating-point rounding before it is considered a bug.
///
/// Every pmf is built normalized, but repeated convolutions (up to the
/// 32-fold queue convolution of the `QueueScaled` estimator), rebucketing
/// round-trips, and tail pruning each add rounding error on the order of
/// `len · f64::EPSILON` per pass. Empirically the deepest pipeline the model
/// runs (window 100, 32-fold convolution, 1 ms buckets) stays within ~1e-13;
/// `1e-9` leaves three orders of magnitude of headroom while still being far
/// below anything that could reorder replicas (the selection compares
/// probabilities that differ by ≥ 1/l ≥ 0.01).
///
/// Shared by [`Pmf::cdf`] (which clamps its prefix sum to 1.0 — sound only
/// while the excess is below this bound, enforced by a debug assertion),
/// [`Pmf::quantile`] (as the acceptance slack so `quantile(cdf(t)) == t`
/// despite rounding), and the mass-drift regression tests.
pub const MASS_TOLERANCE: f64 = 1e-9;

/// Errors from constructing or combining [`Pmf`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PmfError {
    /// No samples were provided; a relative-frequency estimate needs at
    /// least one.
    EmptySamples,
    /// The bucket width was zero.
    ZeroBucketWidth,
    /// Two pmfs with different bucket widths were combined.
    BucketMismatch {
        /// Bucket width of the left-hand operand.
        left: Duration,
        /// Bucket width of the right-hand operand.
        right: Duration,
    },
}

impl fmt::Display for PmfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PmfError::EmptySamples => write!(f, "cannot build a pmf from zero samples"),
            PmfError::ZeroBucketWidth => write!(f, "pmf bucket width must be positive"),
            PmfError::BucketMismatch { left, right } => {
                write!(f, "pmf bucket widths differ: {left} vs {right}")
            }
        }
    }
}

impl std::error::Error for PmfError {}

/// A discrete probability mass function over [`Duration`] values.
///
/// # Examples
///
/// Build the response-time distribution of Eq. 2 from measurements:
///
/// ```
/// use aqua_core::pmf::Pmf;
/// use aqua_core::time::Duration;
///
/// # fn main() -> Result<(), aqua_core::pmf::PmfError> {
/// let ms = Duration::from_millis;
/// let bucket = ms(1);
/// let service = Pmf::from_samples([ms(90), ms(100), ms(110)], bucket)?;
/// let queuing = Pmf::from_samples([ms(0), ms(0), ms(20)], bucket)?;
/// let gateway_delay = ms(4);
///
/// let response = service.convolve(&queuing)?.shift_by(gateway_delay);
/// // P(response ≤ 120 ms): all service/queue combinations except the
/// // (110, 20) and (100, 20) pairs arrive in time.
/// assert!(response.cdf(ms(120)) > 0.7);
/// assert!(response.cdf(ms(200)) > 0.999);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Pmf {
    /// Bucket width; all probabilities refer to multiples of this.
    bucket: Duration,
    /// Index (in buckets) of the first entry of `probs`.
    offset: u64,
    /// `probs[i]` is the probability of bucket `offset + i`. Non-empty;
    /// first and last entries are non-zero; sums to ~1.
    probs: Vec<f64>,
}

impl Pmf {
    /// Builds the relative-frequency pmf of a set of duration samples.
    ///
    /// This is the estimator of §5.3.1: each retained sample contributes
    /// `1/n` of probability mass to its bucket.
    ///
    /// # Errors
    ///
    /// Returns [`PmfError::EmptySamples`] when no samples are supplied and
    /// [`PmfError::ZeroBucketWidth`] for a zero bucket width.
    pub fn from_samples<I>(samples: I, bucket: Duration) -> Result<Pmf, PmfError>
    where
        I: IntoIterator<Item = Duration>,
    {
        if bucket.is_zero() {
            return Err(PmfError::ZeroBucketWidth);
        }
        let indices: Vec<u64> = samples
            .into_iter()
            .map(|d| d.as_nanos() / bucket.as_nanos())
            .collect();
        if indices.is_empty() {
            return Err(PmfError::EmptySamples);
        }
        let (lo, hi) = index_bounds(indices.iter().copied());
        let mut probs = vec![0.0; span(lo, hi)];
        let weight = 1.0 / indices.len() as f64;
        for idx in indices {
            accumulate(&mut probs, (idx - lo) as usize, weight);
        }
        Ok(Pmf {
            bucket,
            offset: lo,
            probs,
        })
    }

    /// A point mass concentrated on the bucket containing `value`.
    ///
    /// Used for the gateway-to-gateway delay `T_i`, for which the paper keeps
    /// only "its most recently measured value rather than recording its
    /// history" (§5.3.1).
    ///
    /// # Errors
    ///
    /// Returns [`PmfError::ZeroBucketWidth`] for a zero bucket width.
    pub fn point(value: Duration, bucket: Duration) -> Result<Pmf, PmfError> {
        if bucket.is_zero() {
            return Err(PmfError::ZeroBucketWidth);
        }
        Ok(Pmf {
            bucket,
            offset: value.as_nanos() / bucket.as_nanos(),
            probs: vec![1.0],
        })
    }

    /// Builds a pmf from explicit `(duration, weight)` pairs, normalizing
    /// the weights to sum to one.
    ///
    /// Useful for synthetic distributions in tests and benchmarks.
    ///
    /// # Errors
    ///
    /// Returns [`PmfError::EmptySamples`] if no pair has positive weight, or
    /// [`PmfError::ZeroBucketWidth`] for a zero bucket width.
    pub fn from_weighted<I>(pairs: I, bucket: Duration) -> Result<Pmf, PmfError>
    where
        I: IntoIterator<Item = (Duration, f64)>,
    {
        if bucket.is_zero() {
            return Err(PmfError::ZeroBucketWidth);
        }
        let entries: Vec<(u64, f64)> = pairs
            .into_iter()
            .filter(|(_, w)| *w > 0.0 && w.is_finite())
            .map(|(d, w)| (d.as_nanos() / bucket.as_nanos(), w))
            .collect();
        if entries.is_empty() {
            return Err(PmfError::EmptySamples);
        }
        let (lo, hi) = index_bounds(entries.iter().map(|(i, _)| *i));
        let mut probs = vec![0.0; span(lo, hi)];
        let total: f64 = entries.iter().map(|(_, w)| *w).sum();
        for (idx, w) in entries {
            accumulate(&mut probs, (idx - lo) as usize, w / total);
        }
        Ok(Pmf {
            bucket,
            offset: lo,
            probs,
        })
    }

    /// Builds a relative-frequency pmf directly from `(bucket index, count)`
    /// pairs, e.g. the incrementally maintained counts of a
    /// [`crate::window::BucketedWindow`].
    ///
    /// Semantically equivalent to [`Pmf::from_samples`] over the underlying
    /// samples, but O(distinct buckets) instead of O(samples): the window
    /// already paid the bucketing cost, one sample at a time.
    ///
    /// # Errors
    ///
    /// Returns [`PmfError::EmptySamples`] when every count is zero and
    /// [`PmfError::ZeroBucketWidth`] for a zero bucket width.
    pub fn from_bucket_counts<I>(counts: I, bucket: Duration) -> Result<Pmf, PmfError>
    where
        I: IntoIterator<Item = (u64, u32)>,
    {
        if bucket.is_zero() {
            return Err(PmfError::ZeroBucketWidth);
        }
        let entries: Vec<(u64, u32)> = counts.into_iter().filter(|(_, c)| *c > 0).collect();
        if entries.is_empty() {
            return Err(PmfError::EmptySamples);
        }
        let (lo, hi) = index_bounds(entries.iter().map(|(i, _)| *i));
        let total: u64 = entries.iter().map(|(_, c)| u64::from(*c)).sum();
        let mut probs = vec![0.0; span(lo, hi)];
        for (idx, count) in entries {
            accumulate(
                &mut probs,
                (idx - lo) as usize,
                f64::from(count) / total as f64,
            );
        }
        Ok(Pmf {
            bucket,
            offset: lo,
            probs,
        })
    }

    /// The bucket width this pmf is quantized to.
    #[inline]
    pub fn bucket_width(&self) -> Duration {
        self.bucket
    }

    /// The number of (contiguous) buckets in the support, including interior
    /// zero-probability buckets.
    #[inline]
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// Returns `false`: a pmf always carries at least one bucket.
    ///
    /// Provided for iterator-style symmetry with [`Pmf::len`].
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Total probability mass (≈ 1 up to floating-point rounding).
    pub fn mass(&self) -> f64 {
        self.probs.iter().sum()
    }

    /// Smallest value with positive probability (bucket lower edge).
    pub fn support_min(&self) -> Duration {
        Duration::from_nanos(self.offset * self.bucket.as_nanos())
    }

    /// Largest value with positive probability (bucket lower edge).
    pub fn support_max(&self) -> Duration {
        Duration::from_nanos((self.offset + self.probs.len() as u64 - 1) * self.bucket.as_nanos())
    }

    /// The distribution function `F(t) = P(X ≤ t)`.
    ///
    /// This is the quantity `F_Ri(t)` fed to the selection algorithm.
    pub fn cdf(&self, t: Duration) -> f64 {
        let t_idx = t.as_nanos() / self.bucket.as_nanos();
        if t_idx < self.offset {
            return 0.0;
        }
        let upto = (t_idx - self.offset).min(self.probs.len() as u64 - 1) as usize;
        let sum = self.probs.iter().take(upto + 1).sum::<f64>();
        // The prefix sum can exceed 1 only by accumulated rounding error,
        // which MASS_TOLERANCE bounds; the clamp keeps F(t) a probability.
        debug_assert!(
            sum <= 1.0 + MASS_TOLERANCE,
            "pmf mass drifted beyond MASS_TOLERANCE: {sum}"
        );
        sum.min(1.0)
    }

    /// Precomputes the cumulative prefix sums for repeated CDF lookups.
    ///
    /// [`CdfTable::value_at`] returns exactly what [`Pmf::cdf`] would (the
    /// prefix sums are accumulated in the same left-to-right order, so the
    /// rounding is bit-identical), but each lookup is O(1) instead of O(n).
    /// This is the view the model cache stores per replica.
    pub fn cumulative(&self) -> CdfTable {
        let mut cum = Vec::with_capacity(self.probs.len());
        let mut acc = 0.0;
        for &p in &self.probs {
            acc += p;
            cum.push(acc);
        }
        CdfTable {
            bucket: self.bucket,
            offset: self.offset,
            cum,
        }
    }

    /// The survival function `P(X > t) = 1 − F(t)`.
    pub fn prob_gt(&self, t: Duration) -> f64 {
        (1.0 - self.cdf(t)).max(0.0)
    }

    /// Mean of the distribution (using bucket lower edges).
    pub fn mean(&self) -> Duration {
        let bucket_ns = self.bucket.as_nanos() as f64;
        let mean_idx: f64 = self
            .probs
            .iter()
            .enumerate()
            .map(|(i, p)| (self.offset as f64 + i as f64) * p)
            .sum();
        Duration::from_nanos((mean_idx * bucket_ns).round() as u64)
    }

    /// Standard deviation of the distribution.
    pub fn std_dev(&self) -> Duration {
        let mean_idx: f64 = self
            .probs
            .iter()
            .enumerate()
            .map(|(i, p)| (self.offset as f64 + i as f64) * p)
            .sum();
        let var_idx: f64 = self
            .probs
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let d = self.offset as f64 + i as f64 - mean_idx;
                d * d * p
            })
            .sum();
        Duration::from_nanos((var_idx.sqrt() * self.bucket.as_nanos() as f64).round() as u64)
    }

    /// The `p`-quantile: the smallest bucket value `v` with `F(v) ≥ p`.
    ///
    /// `p` is clamped to `[0, 1]`. `quantile(1.0)` is the support maximum.
    pub fn quantile(&self, p: f64) -> Duration {
        let p = p.clamp(0.0, 1.0);
        let mut acc = 0.0;
        for (i, prob) in self.probs.iter().enumerate() {
            acc += prob;
            if acc + MASS_TOLERANCE >= p {
                return Duration::from_nanos((self.offset + i as u64) * self.bucket.as_nanos());
            }
        }
        self.support_max()
    }

    /// Iterates over `(bucket lower edge, probability)` pairs, skipping
    /// zero-probability buckets.
    pub fn buckets(&self) -> impl Iterator<Item = (Duration, f64)> + '_ {
        let bucket_ns = self.bucket.as_nanos();
        self.probs
            .iter()
            .enumerate()
            .filter(|(_, p)| **p > 0.0)
            .map(move |(i, p)| {
                (
                    Duration::from_nanos((self.offset + i as u64) * bucket_ns),
                    *p,
                )
            })
    }

    /// Discrete convolution: the distribution of the **sum** of two
    /// independent variables (the independence assumption of §5.3).
    ///
    /// # Errors
    ///
    /// Returns [`PmfError::BucketMismatch`] if the bucket widths differ.
    pub fn convolve(&self, other: &Pmf) -> Result<Pmf, PmfError> {
        if self.bucket != other.bucket {
            return Err(PmfError::BucketMismatch {
                left: self.bucket,
                right: other.bucket,
            });
        }
        let mut probs = Vec::new();
        convolve_into(&self.probs, &other.probs, &mut probs);
        // Convolution is a sum of all pairwise products, so the output mass
        // must equal the product of the input masses up to rounding — the
        // same invariant MASS_TOLERANCE bounds for the cdf clamp.
        debug_assert!(
            (probs.iter().sum::<f64>() - self.mass() * other.mass()).abs() <= MASS_TOLERANCE,
            "convolution drifted probability mass beyond MASS_TOLERANCE"
        );
        Ok(Pmf {
            bucket: self.bucket,
            offset: self.offset + other.offset,
            probs,
        })
    }

    /// The distribution of the sum of `n` independent copies of this
    /// variable: the `q`-fold self-convolution of the `QueueScaled` wait
    /// estimate (`W ≈ S^{*q}`).
    ///
    /// Uses exponentiation by squaring — ⌊log₂ n⌋ squarings plus
    /// `popcount(n) − 1` accumulating convolutions (5 for `n = 32`, ≤ 8 for
    /// any `n ≤ 32`, versus `n` sequential convolutions) — and reuses
    /// `scratch`'s buffers across calls so the hot path allocates only the
    /// result vector.
    ///
    /// Intermediate products are tail-pruned with `epsilon` (see
    /// [`Pmf::prune_tails`]; `0.0` disables pruning), bounding the support
    /// growth that makes deep convolutions quadratic. `n = 0` yields the
    /// point mass at zero.
    pub fn self_convolve(&self, n: u32, epsilon: f64, scratch: &mut ConvScratch) -> Pmf {
        if n == 0 {
            return Pmf {
                bucket: self.bucket,
                offset: 0,
                probs: vec![1.0],
            };
        }
        let mut base = std::mem::take(&mut scratch.base);
        base.clear();
        base.extend_from_slice(&self.probs);
        let mut base_offset = self.offset;
        let mut acc = std::mem::take(&mut scratch.acc);
        acc.clear();
        let mut acc_offset = 0u64;
        let mut have_acc = false;
        let mut tmp = std::mem::take(&mut scratch.tmp);
        let mut k = n;
        loop {
            if k & 1 == 1 {
                if have_acc {
                    convolve_into(&acc, &base, &mut tmp);
                    std::mem::swap(&mut acc, &mut tmp);
                    acc_offset += base_offset;
                    prune_in_place(&mut acc, &mut acc_offset, epsilon);
                } else {
                    acc.extend_from_slice(&base);
                    acc_offset = base_offset;
                    have_acc = true;
                }
            }
            k >>= 1;
            if k == 0 {
                break;
            }
            convolve_into(&base, &base, &mut tmp);
            std::mem::swap(&mut base, &mut tmp);
            base_offset *= 2;
            prune_in_place(&mut base, &mut base_offset, epsilon);
        }
        scratch.base = base;
        scratch.tmp = tmp;
        // Pruning renormalizes, so the n-fold sum must keep the n-th power
        // of the input mass up to the shared MASS_TOLERANCE bound.
        debug_assert!(
            (acc.iter().sum::<f64>() - self.mass().powi(n as i32)).abs() <= MASS_TOLERANCE,
            "self-convolution drifted probability mass beyond MASS_TOLERANCE"
        );
        // `acc` moves into the result; the scratch slot refills next call.
        Pmf {
            bucket: self.bucket,
            offset: acc_offset,
            probs: acc,
        }
    }

    /// Drops up to `epsilon` of total probability mass from the two tails
    /// (at most `epsilon / 2` per tail) and renormalizes so the remaining
    /// mass equals the original.
    ///
    /// Bounds the support growth of repeated convolutions: far tails carry
    /// vanishing mass but widen every subsequent convolution quadratically.
    /// With `epsilon ≤ 1e-12` the CDF at any deadline moves by less than
    /// the pruned mass — orders of magnitude below the ≥ 1/l resolution of
    /// the window estimator — so replica *ranking* is unaffected.
    /// `epsilon ≤ 0` is a no-op.
    pub fn prune_tails(&mut self, epsilon: f64) {
        prune_in_place(&mut self.probs, &mut self.offset, epsilon);
    }

    /// Shifts the distribution right by a constant delay (adding a
    /// deterministic term, e.g. the latest gateway-to-gateway delay).
    ///
    /// Equivalent to convolving with [`Pmf::point`] but O(1).
    #[must_use]
    pub fn shift_by(&self, delay: Duration) -> Pmf {
        let mut out = self.clone();
        out.offset += delay.as_nanos() / self.bucket.as_nanos();
        out
    }

    /// Re-quantizes the pmf to a different bucket width.
    ///
    /// Coarsening (larger buckets) merges mass and makes convolution —
    /// the dominant cost of the model (Figure 3) — cheaper at the price of
    /// timing resolution; refining spreads each bucket's mass onto its
    /// lower edge (no information is invented). Mass is preserved exactly.
    ///
    /// # Errors
    ///
    /// Returns [`PmfError::ZeroBucketWidth`] for a zero target width.
    pub fn rebucket(&self, bucket: Duration) -> Result<Pmf, PmfError> {
        if bucket.is_zero() {
            return Err(PmfError::ZeroBucketWidth);
        }
        if bucket == self.bucket {
            return Ok(self.clone());
        }
        let old_ns = self.bucket.as_nanos();
        let new_ns = bucket.as_nanos();
        let entries = self
            .probs
            .iter()
            .enumerate()
            .filter(|(_, p)| **p > 0.0)
            .map(|(i, p)| ((self.offset + i as u64) * old_ns / new_ns, *p));
        let entries: Vec<(u64, f64)> = entries.collect();
        let (lo, hi) = index_bounds(entries.iter().map(|(i, _)| *i));
        let mut probs = vec![0.0; span(lo, hi)];
        for (idx, p) in entries {
            accumulate(&mut probs, (idx - lo) as usize, p);
        }
        Ok(Pmf {
            bucket,
            offset: lo,
            probs,
        })
    }

    /// A mixture of pmfs with the given non-negative weights (normalized).
    ///
    /// Used by the multi-method extension (§8 ext. 1): a request whose method
    /// is unknown ahead of time mixes the per-method distributions.
    ///
    /// # Errors
    ///
    /// Returns [`PmfError::EmptySamples`] when `parts` is empty or all
    /// weights are non-positive, and [`PmfError::BucketMismatch`] when the
    /// components disagree on bucket width.
    pub fn mixture(parts: &[(f64, &Pmf)]) -> Result<Pmf, PmfError> {
        let active: Vec<&(f64, &Pmf)> = parts
            .iter()
            .filter(|(w, _)| *w > 0.0 && w.is_finite())
            .collect();
        if active.is_empty() {
            return Err(PmfError::EmptySamples);
        }
        let bucket = active
            .first()
            .map(|(_, p)| p.bucket)
            .ok_or(PmfError::EmptySamples)?;
        for (_, pmf) in &active {
            if pmf.bucket != bucket {
                return Err(PmfError::BucketMismatch {
                    left: bucket,
                    right: pmf.bucket,
                });
            }
        }
        let total_w: f64 = active.iter().map(|(w, _)| *w).sum();
        let lo = index_bounds(active.iter().map(|(_, p)| p.offset)).0;
        let hi = index_bounds(
            active
                .iter()
                .map(|(_, p)| p.offset + p.probs.len() as u64 - 1),
        )
        .1;
        let mut probs = vec![0.0; span(lo, hi)];
        for (w, pmf) in &active {
            let scale = w / total_w;
            for (i, &p) in pmf.probs.iter().enumerate() {
                accumulate(&mut probs, (pmf.offset - lo) as usize + i, p * scale);
            }
        }
        Ok(Pmf {
            bucket,
            offset: lo,
            probs,
        })
    }
}

/// Dense discrete convolution of two probability vectors into `out`.
///
/// Identical accumulation order to the historical `Pmf::convolve` loop, so
/// results are bit-for-bit stable across the refactor.
fn convolve_into(a: &[f64], b: &[f64], out: &mut Vec<f64>) {
    out.clear();
    out.resize(a.len() + b.len() - 1, 0.0);
    for (i, &p) in a.iter().enumerate() {
        if p == 0.0 {
            continue;
        }
        // `out[i + j] = out[i..i + b.len()][j]` is in range by the resize
        // above; the skip-based view says so without indexed access.
        for (slot, &q) in out.iter_mut().skip(i).zip(b.iter()) {
            if q == 0.0 {
                continue;
            }
            *slot += p * q;
        }
    }
}

/// Smallest and largest index produced by `indices`.
///
/// Callers guarantee a non-empty iterator (they return
/// [`PmfError::EmptySamples`] first); on an empty one the bounds come back
/// inverted (`u64::MAX`, `0`) and [`span`] reports the violation.
fn index_bounds<I: Iterator<Item = u64>>(indices: I) -> (u64, u64) {
    indices.fold((u64::MAX, 0), |(lo, hi), i| (lo.min(i), hi.max(i)))
}

/// Bucket count of the inclusive index range `[lo, hi]`.
fn span(lo: u64, hi: u64) -> usize {
    debug_assert!(lo <= hi, "pmf index bounds inverted: [{lo}, {hi}]");
    // aqua-lint: allow(no-panic-in-hot-path) a span beyond usize::MAX cannot be allocated anyway; failing loudly beats truncating
    usize::try_from(hi.saturating_sub(lo) + 1).expect("bucket span fits in usize")
}

/// Adds `w` of probability mass to `probs[idx]`.
///
/// Every caller derives `idx` from the same bounds that sized `probs`
/// (`idx = bucket - lo ≤ hi - lo < probs.len()`), so the slot always
/// exists; a debug assertion guards the invariant instead of a panic.
fn accumulate(probs: &mut [f64], idx: usize, w: f64) {
    if let Some(slot) = probs.get_mut(idx) {
        *slot += w;
    } else {
        debug_assert!(false, "pmf bucket index {idx} outside allocated span");
    }
}

/// Trims ≤ `epsilon / 2` of mass from each tail of `probs` (never below one
/// bucket) and rescales the survivors so total mass is unchanged.
fn prune_in_place(probs: &mut Vec<f64>, offset: &mut u64, epsilon: f64) {
    if epsilon <= 0.0 || probs.len() <= 1 {
        return;
    }
    let total: f64 = probs.iter().sum();
    let budget = epsilon * total * 0.5;
    let mut start = 0usize;
    let mut cut_front = 0.0;
    for &p in probs.iter().take(probs.len() - 1) {
        if cut_front + p > budget {
            break;
        }
        cut_front += p;
        start += 1;
    }
    let mut end = probs.len();
    let mut cut_back = 0.0;
    for &p in probs.iter().skip(start + 1).rev() {
        if cut_back + p > budget {
            break;
        }
        cut_back += p;
        end -= 1;
    }
    if start == 0 && end == probs.len() {
        return;
    }
    probs.truncate(end);
    probs.drain(..start);
    *offset += start as u64;
    let removed = cut_front + cut_back;
    if removed > 0.0 {
        let scale = total / (total - removed);
        for p in probs.iter_mut() {
            *p *= scale;
        }
    }
}

/// The cumulative prefix sums of a [`Pmf`]: an O(1)-per-query view of
/// `F(t)`, built once by [`Pmf::cumulative`] and memoized by the model
/// cache while a replica's windows are unchanged.
#[derive(Debug, Clone, PartialEq)]
pub struct CdfTable {
    bucket: Duration,
    offset: u64,
    /// `cum[i] = Σ probs[..=i]`, accumulated left-to-right exactly like
    /// [`Pmf::cdf`] does.
    cum: Vec<f64>,
}

impl CdfTable {
    /// `F(t) = P(X ≤ t)` — identical to [`Pmf::cdf`] on the source pmf,
    /// including the rounding of the prefix sum, but without re-summing.
    pub fn value_at(&self, t: Duration) -> f64 {
        let t_idx = t.as_nanos() / self.bucket.as_nanos();
        if t_idx < self.offset {
            return 0.0;
        }
        let upto = (t_idx - self.offset).min(self.cum.len() as u64 - 1) as usize;
        self.cum.get(upto).copied().unwrap_or(1.0).min(1.0)
    }

    /// The bucket width of the source pmf.
    #[inline]
    pub fn bucket_width(&self) -> Duration {
        self.bucket
    }

    /// Number of buckets covered (same as the source pmf's `len`).
    #[inline]
    pub fn len(&self) -> usize {
        self.cum.len()
    }

    /// Always `false`; mirrors [`Pmf::is_empty`].
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Reusable buffers for [`Pmf::self_convolve`].
///
/// Holding one of these per model cache keeps the q-fold convolution free
/// of steady-state allocations: the squaring chain ping-pongs between the
/// `base` and `tmp` buffers, and `acc` seeds the result vector.
#[derive(Debug, Default)]
pub struct ConvScratch {
    base: Vec<f64>,
    acc: Vec<f64>,
    tmp: Vec<f64>,
}

impl ConvScratch {
    /// Creates an empty scratch space (buffers grow on first use).
    pub fn new() -> Self {
        ConvScratch::default()
    }
}

impl fmt::Debug for Pmf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Pmf")
            .field("bucket", &self.bucket)
            .field("support", &(self.support_min()..=self.support_max()))
            .field("mean", &self.mean())
            .field("mass", &self.mass())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn from_samples_relative_frequency() {
        let pmf = Pmf::from_samples([ms(10), ms(10), ms(20), ms(30)], ms(1)).unwrap();
        let buckets: Vec<_> = pmf.buckets().collect();
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[0], (ms(10), 0.5));
        assert_eq!(buckets[1], (ms(20), 0.25));
        assert_eq!(buckets[2], (ms(30), 0.25));
        assert!((pmf.mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_samples_rejects_empty_and_zero_bucket() {
        assert_eq!(
            Pmf::from_samples(std::iter::empty(), ms(1)).unwrap_err(),
            PmfError::EmptySamples
        );
        assert_eq!(
            Pmf::from_samples([ms(1)], Duration::ZERO).unwrap_err(),
            PmfError::ZeroBucketWidth
        );
    }

    #[test]
    fn samples_within_a_bucket_collapse() {
        let pmf = Pmf::from_samples(
            [Duration::from_micros(100), Duration::from_micros(900)],
            ms(1),
        )
        .unwrap();
        assert_eq!(pmf.len(), 1);
        assert_eq!(pmf.cdf(Duration::ZERO), 1.0, "both samples map to bucket 0");
    }

    #[test]
    fn cdf_step_semantics() {
        let pmf = Pmf::from_samples([ms(10), ms(20)], ms(1)).unwrap();
        assert_eq!(pmf.cdf(ms(9)), 0.0);
        assert_eq!(pmf.cdf(ms(10)), 0.5);
        assert_eq!(pmf.cdf(ms(19)), 0.5);
        assert_eq!(pmf.cdf(ms(20)), 1.0);
        assert_eq!(pmf.cdf(ms(1000)), 1.0);
        assert!((pmf.prob_gt(ms(10)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn point_mass_cdf() {
        let pmf = Pmf::point(ms(5), ms(1)).unwrap();
        assert_eq!(pmf.cdf(ms(4)), 0.0);
        assert_eq!(pmf.cdf(ms(5)), 1.0);
        assert_eq!(pmf.mean(), ms(5));
        assert_eq!(pmf.support_min(), ms(5));
        assert_eq!(pmf.support_max(), ms(5));
    }

    #[test]
    fn convolution_of_points_adds() {
        let a = Pmf::point(ms(3), ms(1)).unwrap();
        let b = Pmf::point(ms(4), ms(1)).unwrap();
        let c = a.convolve(&b).unwrap();
        assert_eq!(c.mean(), ms(7));
        assert_eq!(c.cdf(ms(6)), 0.0);
        assert_eq!(c.cdf(ms(7)), 1.0);
    }

    #[test]
    fn convolution_mass_and_mean_additive() {
        let a = Pmf::from_samples([ms(1), ms(2), ms(2), ms(5)], ms(1)).unwrap();
        let b = Pmf::from_samples([ms(10), ms(30)], ms(1)).unwrap();
        let c = a.convolve(&b).unwrap();
        assert!((c.mass() - 1.0).abs() < 1e-9);
        assert_eq!(
            c.mean().as_nanos(),
            a.mean().as_nanos() + b.mean().as_nanos()
        );
    }

    #[test]
    fn convolution_commutes() {
        let a = Pmf::from_samples([ms(1), ms(4)], ms(1)).unwrap();
        let b = Pmf::from_samples([ms(2), ms(2), ms(9)], ms(1)).unwrap();
        let ab = a.convolve(&b).unwrap();
        let ba = b.convolve(&a).unwrap();
        for t in 0..20 {
            assert!((ab.cdf(ms(t)) - ba.cdf(ms(t))).abs() < 1e-12);
        }
    }

    #[test]
    fn convolution_bucket_mismatch_rejected() {
        let a = Pmf::point(ms(1), ms(1)).unwrap();
        let b = Pmf::point(ms(1), ms(2)).unwrap();
        assert!(matches!(
            a.convolve(&b).unwrap_err(),
            PmfError::BucketMismatch { .. }
        ));
    }

    #[test]
    fn shift_matches_point_convolution() {
        let a = Pmf::from_samples([ms(2), ms(6), ms(6)], ms(1)).unwrap();
        let shifted = a.shift_by(ms(10));
        let convolved = a.convolve(&Pmf::point(ms(10), ms(1)).unwrap()).unwrap();
        for t in 0..30 {
            assert!((shifted.cdf(ms(t)) - convolved.cdf(ms(t))).abs() < 1e-12);
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        let pmf = Pmf::from_samples([ms(10), ms(20), ms(30), ms(40)], ms(1)).unwrap();
        assert_eq!(pmf.quantile(0.0), ms(10));
        assert_eq!(pmf.quantile(0.25), ms(10));
        assert_eq!(pmf.quantile(0.5), ms(20));
        assert_eq!(pmf.quantile(0.75), ms(30));
        assert_eq!(pmf.quantile(1.0), ms(40));
    }

    #[test]
    fn std_dev_of_point_is_zero() {
        assert_eq!(Pmf::point(ms(9), ms(1)).unwrap().std_dev(), Duration::ZERO);
    }

    #[test]
    fn std_dev_of_symmetric_two_point() {
        let pmf = Pmf::from_samples([ms(10), ms(20)], ms(1)).unwrap();
        assert_eq!(pmf.std_dev(), ms(5));
    }

    #[test]
    fn from_weighted_normalizes() {
        let pmf = Pmf::from_weighted([(ms(1), 1.0), (ms(2), 3.0)], ms(1)).unwrap();
        assert!((pmf.cdf(ms(1)) - 0.25).abs() < 1e-12);
        assert!((pmf.mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_weighted_ignores_nonpositive_weights() {
        let pmf = Pmf::from_weighted([(ms(1), -2.0), (ms(2), 0.0), (ms(3), 1.0)], ms(1)).unwrap();
        assert_eq!(pmf.support_min(), ms(3));
        assert!(matches!(
            Pmf::from_weighted([(ms(1), 0.0)], ms(1)).unwrap_err(),
            PmfError::EmptySamples
        ));
    }

    #[test]
    fn rebucket_coarsens_and_preserves_mass() {
        let pmf = Pmf::from_samples([ms(10), ms(11), ms(12), ms(19)], ms(1)).unwrap();
        let coarse = pmf.rebucket(ms(5)).unwrap();
        assert_eq!(coarse.bucket_width(), ms(5));
        assert!((coarse.mass() - 1.0).abs() < 1e-12);
        // 10, 11, 12 land in bucket 2 (= 10 ms); 19 in bucket 3 (= 15 ms).
        assert!((coarse.cdf(ms(10)) - 0.75).abs() < 1e-12);
        assert!((coarse.cdf(ms(15)) - 1.0).abs() < 1e-12);
        // Means agree within one coarse bucket.
        let diff = pmf.mean().as_millis_f64() - coarse.mean().as_millis_f64();
        assert!(diff.abs() <= 5.0, "{diff}");
    }

    #[test]
    fn rebucket_identity_and_refine() {
        let pmf = Pmf::from_samples([ms(10), ms(20)], ms(5)).unwrap();
        assert_eq!(pmf.rebucket(ms(5)).unwrap(), pmf);
        let fine = pmf.rebucket(ms(1)).unwrap();
        assert_eq!(fine.cdf(ms(10)), 0.5, "mass stays on lower edges");
        assert!((fine.mass() - 1.0).abs() < 1e-12);
        assert!(pmf.rebucket(Duration::ZERO).is_err());
    }

    #[test]
    fn rebucket_speeds_up_convolution_support() {
        let samples: Vec<Duration> = (0..50).map(|i| ms(100 + i * 7)).collect();
        let fine = Pmf::from_samples(samples, ms(1)).unwrap();
        let coarse = fine.rebucket(ms(10)).unwrap();
        assert!(coarse.len() < fine.len() / 5, "support shrank");
    }

    #[test]
    fn mixture_averages_cdfs() {
        let a = Pmf::point(ms(10), ms(1)).unwrap();
        let b = Pmf::point(ms(20), ms(1)).unwrap();
        let mix = Pmf::mixture(&[(1.0, &a), (3.0, &b)]).unwrap();
        assert!((mix.cdf(ms(10)) - 0.25).abs() < 1e-12);
        assert!((mix.cdf(ms(20)) - 1.0).abs() < 1e-12);
        assert!((mix.mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mixture_rejects_empty_and_mismatched() {
        assert!(matches!(
            Pmf::mixture(&[]).unwrap_err(),
            PmfError::EmptySamples
        ));
        let a = Pmf::point(ms(1), ms(1)).unwrap();
        let b = Pmf::point(ms(1), ms(2)).unwrap();
        assert!(matches!(
            Pmf::mixture(&[(1.0, &a), (1.0, &b)]).unwrap_err(),
            PmfError::BucketMismatch { .. }
        ));
    }

    #[test]
    fn debug_is_informative() {
        let pmf = Pmf::point(ms(2), ms(1)).unwrap();
        let s = format!("{pmf:?}");
        assert!(s.contains("Pmf"), "{s}");
        assert!(s.contains("mean"), "{s}");
    }

    #[test]
    fn from_bucket_counts_matches_samples() {
        let samples = [ms(10), ms(10), ms(20), ms(30), ms(30), ms(30)];
        let by_samples = Pmf::from_samples(samples, ms(1)).unwrap();
        let by_counts = Pmf::from_bucket_counts([(10, 2), (20, 1), (30, 3)], ms(1)).unwrap();
        assert_eq!(by_counts.support_min(), by_samples.support_min());
        assert_eq!(by_counts.support_max(), by_samples.support_max());
        for t in 0..40 {
            assert!((by_counts.cdf(ms(t)) - by_samples.cdf(ms(t))).abs() < 1e-12);
        }
        assert!((by_counts.mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_bucket_counts_rejects_empty_and_zero_bucket() {
        assert_eq!(
            Pmf::from_bucket_counts([(3, 0)], ms(1)).unwrap_err(),
            PmfError::EmptySamples
        );
        assert_eq!(
            Pmf::from_bucket_counts([(3, 1)], Duration::ZERO).unwrap_err(),
            PmfError::ZeroBucketWidth
        );
    }

    #[test]
    fn cumulative_table_matches_cdf_exactly() {
        let pmf = Pmf::from_samples(
            (0..50).map(|i| ms(100 + (i * i) % 37)).collect::<Vec<_>>(),
            ms(1),
        )
        .unwrap();
        let table = pmf.cumulative();
        for t in 90..150 {
            assert_eq!(
                table.value_at(ms(t)),
                pmf.cdf(ms(t)),
                "cached cdf diverged at t = {t} ms"
            );
        }
        assert_eq!(table.value_at(Duration::ZERO), 0.0);
        assert_eq!(table.len(), pmf.len());
        assert_eq!(table.bucket_width(), pmf.bucket_width());
    }

    #[test]
    fn self_convolve_matches_sequential() {
        let pmf = Pmf::from_samples([ms(3), ms(5), ms(5), ms(9)], ms(1)).unwrap();
        let mut scratch = ConvScratch::new();
        for n in 0..=9u32 {
            let fast = pmf.self_convolve(n, 0.0, &mut scratch);
            let mut slow = Pmf::point(Duration::ZERO, ms(1)).unwrap();
            for _ in 0..n {
                slow = slow.convolve(&pmf).unwrap();
            }
            assert_eq!(fast.support_min(), slow.support_min(), "n = {n}");
            assert_eq!(fast.support_max(), slow.support_max(), "n = {n}");
            for t in 0..100 {
                assert!(
                    (fast.cdf(ms(t)) - slow.cdf(ms(t))).abs() < 1e-12,
                    "n = {n}, t = {t}"
                );
            }
        }
    }

    #[test]
    fn self_convolve_pruning_preserves_mass_and_cdf() {
        let pmf = Pmf::from_weighted([(ms(1), 1.0), (ms(2), 1e6), (ms(40), 1.0)], ms(1)).unwrap();
        let mut scratch = ConvScratch::new();
        let exact = pmf.self_convolve(8, 0.0, &mut scratch);
        let pruned = pmf.self_convolve(8, 1e-12, &mut scratch);
        assert!(pruned.len() <= exact.len(), "pruning never grows support");
        assert!((pruned.mass() - exact.mass()).abs() < MASS_TOLERANCE);
        for t in (0..400).step_by(7) {
            assert!(
                (pruned.cdf(ms(t)) - exact.cdf(ms(t))).abs() < 1e-9,
                "t = {t}"
            );
        }
    }

    #[test]
    fn prune_tails_drops_negligible_tails_only() {
        let mut pmf = Pmf::from_weighted(
            [
                (ms(1), 1e-15),
                (ms(10), 1.0),
                (ms(11), 1.0),
                (ms(90), 1e-15),
            ],
            ms(1),
        )
        .unwrap();
        let before = pmf.mass();
        pmf.prune_tails(1e-12);
        assert_eq!(pmf.support_min(), ms(10));
        assert_eq!(pmf.support_max(), ms(11));
        assert!((pmf.mass() - before).abs() < 1e-15, "mass renormalized");
        // A zero epsilon is a no-op.
        let copy = pmf.clone();
        pmf.prune_tails(0.0);
        assert_eq!(pmf, copy);
    }

    #[test]
    fn mass_drift_bounded_after_repeated_convolve_rebucket_round_trips() {
        // Regression for the MASS_TOLERANCE contract: a deep pipeline of
        // convolutions, rebucket round-trips, and pruning must keep the
        // total mass within the documented bound, or the cdf clamp and the
        // quantile slack stop being sound.
        let samples: Vec<Duration> = (0..100).map(|i| ms(50 + (i * 13) % 97)).collect();
        let base = Pmf::from_samples(samples, ms(1)).unwrap();
        let mut scratch = ConvScratch::new();
        let mut acc = base.self_convolve(32, 1e-12, &mut scratch);
        for _ in 0..8 {
            acc = acc.rebucket(ms(5)).unwrap().rebucket(ms(1)).unwrap();
            acc = acc.convolve(&base).unwrap();
            acc.prune_tails(1e-12);
        }
        let drift = (acc.mass() - 1.0).abs();
        assert!(
            drift < MASS_TOLERANCE,
            "mass drifted by {drift:e} — exceeds MASS_TOLERANCE"
        );
        // quantile/cdf still agree at the drifted mass: the p = 1.0 quantile
        // may land before the last bucket (the slack forgives a sub-tolerance
        // tail), but its cdf must be 1.0 up to the documented bound.
        let q = acc.quantile(1.0);
        assert!(q <= acc.support_max());
        assert!(acc.cdf(q) >= 1.0 - MASS_TOLERANCE);
        assert_eq!(acc.cdf(acc.support_max()), 1.0, "clamped at full mass");
    }
}
