//! The local scheduling agent that glues repository, model, and Algorithm 1
//! (§4, §5.4.1).
//!
//! Every client gateway owns one [`ReplicaSelector`] per service. On each
//! request it:
//!
//! 1. adjusts the client's deadline by the most recently measured algorithm
//!    overhead δ (§5.3.3),
//! 2. evaluates `F_Ri(t − δ)` for every replica in the repository using the
//!    online model (§5.3.1),
//! 3. runs Algorithm 1 to pick the replica subset (§5.3.2),
//! 4. measures how long steps 2–3 took and records it as the next δ.
//!
//! On the very first request to a service — or whenever a replica without
//! history joins — there is no performance data, so "the selection strategy
//! selects all the replicas in the list. This allows the replicas to publish
//! their performance updates to the clients" (§5.4.1).

use crate::model::{ModelConfig, ResponseTimeModel};
use crate::overhead::OverheadTracker;
use crate::qos::{QosSpec, ReplicaId};
use crate::repository::{InfoRepository, MethodId};
use crate::select::{select_replicas, select_replicas_tolerating, Candidate, Selection};
use crate::time::Duration;

/// Policy for replicas that do not yet have enough history for the model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ColdStartPolicy {
    /// Multicast to **all** replicas whenever any replica lacks data — the
    /// paper's behaviour, which bootstraps the repository in one round.
    #[default]
    SelectAll,
    /// Give unknown replicas a fixed optimistic probability so they keep
    /// being explored without forcing a full multicast.
    Optimistic(f64),
}

/// Configuration of a [`ReplicaSelector`].
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SelectorConfig {
    /// Model parameters (bucket width, delay estimator, method scope).
    pub model: ModelConfig,
    /// How cold replicas are treated.
    pub cold_start: ColdStartPolicy,
    /// How many simultaneous replica crashes the selection must tolerate
    /// (the paper's Algorithm 1 is `1`; §5.3.2 sketches the general case).
    pub crashes: usize,
}

impl Default for SelectorConfig {
    fn default() -> Self {
        SelectorConfig {
            model: ModelConfig::default(),
            cold_start: ColdStartPolicy::default(),
            crashes: 1,
        }
    }
}

/// Why a particular selection came out the way it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SelectionReason {
    /// Algorithm 1 ran over fully warmed-up candidates.
    Model,
    /// Some replica lacked history and the cold-start policy forced a full
    /// multicast.
    ColdStart,
    /// The repository was empty (no known replicas).
    NoReplicas,
}

/// The result of one scheduling decision, including the intermediate values
/// useful for diagnostics and the Figure 3 instrumentation.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SelectionDecision {
    /// The chosen replica set.
    pub selection: Selection,
    /// Per-replica probabilities that fed Algorithm 1 (empty on cold start).
    pub candidates: Vec<Candidate>,
    /// Why this decision was produced.
    pub reason: SelectionReason,
    /// The deadline actually used, `t − δ`.
    pub adjusted_deadline: Duration,
    /// Time spent computing the response-time distributions (the ~90% of
    /// Figure 3's overhead).
    pub model_time: Duration,
    /// Time spent in Algorithm 1 proper (the ~10%).
    pub select_time: Duration,
}

impl SelectionDecision {
    /// Total measured overhead δ for this decision.
    pub fn overhead(&self) -> Duration {
        self.model_time.saturating_add(self.select_time)
    }
}

/// The scheduler of §4: selects, per request, the replica subset that meets
/// the client's QoS with the requested probability.
///
/// # Examples
///
/// ```
/// use aqua_core::scheduler::{ReplicaSelector, SelectorConfig, SelectionReason};
/// use aqua_core::repository::PerfReport;
/// use aqua_core::qos::{QosSpec, ReplicaId};
/// use aqua_core::time::{Duration, Instant};
///
/// # fn main() -> Result<(), aqua_core::qos::QosError> {
/// let ms = Duration::from_millis;
/// let mut selector = ReplicaSelector::new(5, SelectorConfig::default());
/// for i in 0..3 {
///     selector.repository_mut().insert_replica(ReplicaId::new(i));
/// }
/// let qos = QosSpec::new(ms(200), 0.9)?;
///
/// // First request: no history → multicast to everyone.
/// let cold = selector.select(&qos);
/// assert_eq!(cold.reason, SelectionReason::ColdStart);
/// assert_eq!(cold.selection.redundancy(), 3);
///
/// // Replies warm the repository …
/// for i in 0..3 {
///     let r = ReplicaId::new(i);
///     selector.repository_mut().record_perf(
///         r, PerfReport::new(ms(100 + i), ms(1), 0), Instant::EPOCH);
///     selector.repository_mut().record_gateway_delay(r, ms(3), Instant::EPOCH);
/// }
/// // … and subsequent selections are model-based.
/// let warm = selector.select(&qos);
/// assert_eq!(warm.reason, SelectionReason::Model);
/// assert_eq!(warm.selection.redundancy(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ReplicaSelector {
    repository: InfoRepository,
    model: ResponseTimeModel,
    overhead: OverheadTracker,
    config: SelectorConfig,
}

impl ReplicaSelector {
    /// Creates a selector whose repository keeps `window` samples per
    /// replica (`l` in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize, config: SelectorConfig) -> Self {
        ReplicaSelector {
            repository: InfoRepository::new(window),
            model: ResponseTimeModel::new(config.model),
            overhead: OverheadTracker::new(),
            config,
        }
    }

    /// Read access to the gateway information repository.
    pub fn repository(&self) -> &InfoRepository {
        &self.repository
    }

    /// Mutable access to the repository, for recording perf updates,
    /// gateway delays, and view changes.
    pub fn repository_mut(&mut self) -> &mut InfoRepository {
        &mut self.repository
    }

    /// The overhead tracker (latest/mean/max δ).
    pub fn overhead(&self) -> &OverheadTracker {
        &self.overhead
    }

    /// The active configuration.
    pub fn config(&self) -> &SelectorConfig {
        &self.config
    }

    /// Makes a scheduling decision for one request, measuring δ with the
    /// process wall clock and recording it for the next request.
    pub fn select(&mut self, qos: &QosSpec) -> SelectionDecision {
        self.select_for_method(qos, None)
    }

    /// Like [`ReplicaSelector::select`] but classifying per method
    /// (multi-interface extension, §8 ext. 1).
    pub fn select_for_method(
        &mut self,
        qos: &QosSpec,
        method: Option<MethodId>,
    ) -> SelectionDecision {
        let started = std::time::Instant::now();
        let adjusted_deadline = self.overhead.adjusted_deadline(qos.deadline());

        if self.repository.is_empty() {
            return SelectionDecision {
                selection: select_replicas(&[], qos.min_probability()),
                candidates: Vec::new(),
                reason: SelectionReason::NoReplicas,
                adjusted_deadline,
                model_time: Duration::from(started.elapsed()),
                select_time: Duration::ZERO,
            };
        }

        let mut candidates = Vec::with_capacity(self.repository.len());
        let mut cold = false;
        for (id, stats) in self.repository.iter() {
            match self
                .model
                .probability_by_for(stats, adjusted_deadline, method)
            {
                Some(p) => candidates.push(Candidate::new(id, p)),
                None => match self.config.cold_start {
                    ColdStartPolicy::SelectAll => {
                        cold = true;
                        break;
                    }
                    ColdStartPolicy::Optimistic(p) => {
                        candidates.push(Candidate::new(id, p.clamp(0.0, 1.0)));
                    }
                },
            }
        }
        let model_time = Duration::from(started.elapsed());

        if cold {
            let all: Vec<ReplicaId> = self.repository.replica_ids().collect();
            let selection = cold_start_selection(all);
            let decision = SelectionDecision {
                selection,
                candidates: Vec::new(),
                reason: SelectionReason::ColdStart,
                adjusted_deadline,
                model_time,
                select_time: Duration::ZERO,
            };
            self.overhead.record(decision.overhead());
            return decision;
        }

        let select_started = std::time::Instant::now();
        let selection =
            select_replicas_tolerating(&candidates, qos.min_probability(), self.config.crashes);
        let select_time = Duration::from(select_started.elapsed());

        let decision = SelectionDecision {
            selection,
            candidates,
            reason: SelectionReason::Model,
            adjusted_deadline,
            model_time,
            select_time,
        };
        self.overhead.record(decision.overhead());
        decision
    }
}

/// Builds the "select everything" decision used during cold start.
fn cold_start_selection(all: Vec<ReplicaId>) -> Selection {
    // Reuse Algorithm 1 with an unattainable requirement so it returns the
    // complete set M with consistent bookkeeping.
    let candidates: Vec<Candidate> = all.into_iter().map(|id| Candidate::new(id, 0.0)).collect();
    select_replicas(&candidates, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repository::PerfReport;
    use crate::time::Instant;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn warm(selector: &mut ReplicaSelector, id: u64, service_ms: u64) {
        let r = ReplicaId::new(id);
        selector.repository_mut().insert_replica(r);
        for _ in 0..3 {
            selector.repository_mut().record_perf(
                r,
                PerfReport::new(ms(service_ms), ms(0), 0),
                Instant::EPOCH,
            );
        }
        selector
            .repository_mut()
            .record_gateway_delay(r, ms(2), Instant::EPOCH);
    }

    #[test]
    fn empty_repository_selects_nothing() {
        let mut selector = ReplicaSelector::new(5, SelectorConfig::default());
        let qos = QosSpec::new(ms(100), 0.9).unwrap();
        let d = selector.select(&qos);
        assert_eq!(d.reason, SelectionReason::NoReplicas);
        assert!(d.selection.replicas().is_empty());
    }

    #[test]
    fn cold_start_selects_all() {
        let mut selector = ReplicaSelector::new(5, SelectorConfig::default());
        for i in 0..4 {
            selector.repository_mut().insert_replica(ReplicaId::new(i));
        }
        let qos = QosSpec::new(ms(100), 0.0).unwrap();
        let d = selector.select(&qos);
        assert_eq!(d.reason, SelectionReason::ColdStart);
        assert_eq!(d.selection.redundancy(), 4);
    }

    #[test]
    fn partially_cold_repository_still_selects_all() {
        let mut selector = ReplicaSelector::new(5, SelectorConfig::default());
        warm(&mut selector, 0, 50);
        selector.repository_mut().insert_replica(ReplicaId::new(1)); // cold
        let qos = QosSpec::new(ms(100), 0.0).unwrap();
        let d = selector.select(&qos);
        assert_eq!(d.reason, SelectionReason::ColdStart);
        assert_eq!(d.selection.redundancy(), 2);
    }

    #[test]
    fn optimistic_policy_avoids_full_multicast() {
        let mut selector = ReplicaSelector::new(
            5,
            SelectorConfig {
                cold_start: ColdStartPolicy::Optimistic(0.5),
                ..SelectorConfig::default()
            },
        );
        warm(&mut selector, 0, 50);
        warm(&mut selector, 1, 60);
        selector.repository_mut().insert_replica(ReplicaId::new(2)); // cold
        let qos = QosSpec::new(ms(100), 0.0).unwrap();
        let d = selector.select(&qos);
        assert_eq!(d.reason, SelectionReason::Model);
        assert_eq!(d.candidates.len(), 3, "cold replica got a probability");
        assert_eq!(d.selection.redundancy(), 2, "Pc=0 still needs only 2");
    }

    #[test]
    fn warm_selection_uses_model_and_records_overhead() {
        let mut selector = ReplicaSelector::new(5, SelectorConfig::default());
        for i in 0..5 {
            warm(&mut selector, i, 50 + 10 * i);
        }
        let qos = QosSpec::new(ms(200), 0.9).unwrap();
        assert_eq!(selector.overhead().samples(), 0);
        let d = selector.select(&qos);
        assert_eq!(d.reason, SelectionReason::Model);
        assert_eq!(d.selection.redundancy(), 2);
        assert_eq!(selector.overhead().samples(), 1);
        assert!(d.overhead() >= d.select_time);
        // Tight deadlines need more redundancy.
        let tight = QosSpec::new(ms(55), 0.9).unwrap();
        let d2 = selector.select(&tight);
        assert!(d2.selection.redundancy() >= d.selection.redundancy());
    }

    #[test]
    fn adjusted_deadline_shrinks_after_first_measurement() {
        let mut selector = ReplicaSelector::new(5, SelectorConfig::default());
        warm(&mut selector, 0, 50);
        warm(&mut selector, 1, 60);
        let qos = QosSpec::new(ms(100), 0.0).unwrap();
        let first = selector.select(&qos);
        assert_eq!(first.adjusted_deadline, ms(100), "no δ before first run");
        let second = selector.select(&qos);
        assert!(
            second.adjusted_deadline <= ms(100),
            "δ from the first run now discounts the deadline"
        );
        assert_eq!(
            second.adjusted_deadline,
            ms(100).saturating_sub(first.overhead())
        );
    }

    #[test]
    fn decision_exposes_candidates_sorted_by_repository_order() {
        let mut selector = ReplicaSelector::new(5, SelectorConfig::default());
        warm(&mut selector, 2, 80);
        warm(&mut selector, 0, 40);
        let qos = QosSpec::new(ms(200), 0.5).unwrap();
        let d = selector.select(&qos);
        let ids: Vec<u64> = d.candidates.iter().map(|c| c.id.index()).collect();
        assert_eq!(ids, vec![0, 2], "repository iterates in id order");
    }
}
