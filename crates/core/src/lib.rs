//! # aqua-core — dynamic replica selection for tolerating timing faults
//!
//! A faithful, dependency-light implementation of the probabilistic model
//! and replica selection algorithm from *"A Dynamic Replica Selection
//! Algorithm for Tolerating Timing Faults"* (Krishnamurthy, Sanders, Cukier;
//! DSN 2001), the timing fault handler of the AQuA middleware.
//!
//! The crate is deliberately **transport-agnostic** ("sans-IO"): it contains
//! the measurement bookkeeping, the response-time model, and the selection
//! algorithm, but no networking. The same code drives both the
//! discrete-event simulation (`lan-sim` + `aqua-gateway`) and the
//! real-socket deployment (`aqua-runtime`).
//!
//! ## The pieces
//!
//! * [`time`] — nanosecond [`time::Duration`] / [`time::Instant`] newtypes
//!   usable with both virtual and wall-clock time.
//! * [`window`] — the sliding measurement window (`l` in the paper).
//! * [`pmf`] — empirical probability mass functions: relative-frequency
//!   estimation, convolution, CDFs (§5.3.1).
//! * [`repository`] — the gateway information repository (§5.2).
//! * [`model`] — the online response-time model `R = S + W + T` (Eq. 2).
//! * [`select`] — Algorithm 1 with the single-crash guarantee (Eq. 3).
//! * [`qos`] — client QoS specifications (§4).
//! * [`failure`] — timing failure detection and QoS callbacks (§5.4.2).
//! * [`overhead`] — δ accounting for deadline adjustment (§5.3.3).
//! * [`scheduler`] — the per-client scheduling agent tying it all together.
//! * [`snapshot`] — immutable, epoch-published planning views for
//!   lock-free concurrent planning.
//!
//! ## Quick start
//!
//! ```
//! use aqua_core::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ms = Duration::from_millis;
//!
//! // A scheduler with the paper's sliding window of 5.
//! let mut selector = ReplicaSelector::new(5, SelectorConfig::default());
//!
//! // The group has three replicas.
//! for i in 0..3 {
//!     selector.repository_mut().insert_replica(ReplicaId::new(i));
//! }
//!
//! // Feed measurements (normally piggybacked on replies).
//! for i in 0..3 {
//!     let r = ReplicaId::new(i);
//!     for _ in 0..5 {
//!         selector.repository_mut().record_perf(
//!             r,
//!             PerfReport::new(ms(90 + 10 * i), ms(5), 1),
//!             Instant::EPOCH,
//!         );
//!     }
//!     selector.repository_mut().record_gateway_delay(r, ms(3), Instant::EPOCH);
//! }
//!
//! // "Respond within 150 ms with probability at least 0.9."
//! let qos = QosSpec::new(ms(150), 0.9)?;
//! let decision = selector.select(&qos);
//! assert!(decision.selection.redundancy() >= 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

/// Marker attributes, re-exported so call sites read `#[aqua::hot_path]`.
///
/// The attributes are no-ops at runtime; `aqua-lint` keys its
/// `no-alloc-in-select` rule on them (allocation is forbidden inside
/// marked functions). Import the module, not the attribute:
///
/// ```
/// use aqua_core::aqua;
///
/// #[aqua::hot_path]
/// fn tight_loop() {}
/// # tight_loop();
/// ```
pub mod aqua {
    pub use aqua_macros::hot_path;
}

pub mod analytic;
pub mod failure;
pub mod model;
pub mod overhead;
pub mod pmf;
pub mod qos;
pub mod repository;
pub mod scheduler;
pub mod select;
pub mod snapshot;
pub mod time;
pub mod window;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::failure::{TimingFailureDetector, TimingVerdict};
    pub use crate::model::{
        DelayEstimator, MethodScope, ModelCache, ModelCacheStats, ModelConfig, QueueEstimator,
        ResponseTimeModel,
    };
    pub use crate::overhead::OverheadTracker;
    pub use crate::pmf::Pmf;
    pub use crate::qos::{QosSpec, ReplicaId};
    pub use crate::repository::{InfoRepository, MethodId, PerfReport, ReplicaStats};
    pub use crate::scheduler::{
        ColdStartPolicy, ReplicaSelector, SelectionDecision, SelectionReason, SelectorConfig,
    };
    pub use crate::select::{
        combined_probability, select_replicas, select_replicas_tolerating, Candidate, Selection,
    };
    pub use crate::snapshot::{PlanningView, ReplicaSnapshot, SnapshotCell};
    pub use crate::time::{Duration, Instant};
    pub use crate::window::{BucketedWindow, SlidingWindow};
}
