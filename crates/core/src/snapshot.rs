//! Read-mostly planning snapshots for lock-free request planning.
//!
//! The paper's selection path (§5.3) reads the information repository on
//! every request but mutates it only when perf reports arrive. This module
//! packages the read side as an immutable, epoch-published **planning
//! view**: per-replica cumulative response-time tables ([`CdfTable`],
//! already memoized by the model cache of `model.rs`) plus the freshness
//! metadata needed to decide when a replica's entry is stale. Publishers
//! rebuild a new [`PlanningView`] off the hot path whenever generation
//! counters move and swap it into a [`SnapshotCell`] with a brief
//! pointer-sized critical section; planners [`SnapshotCell::load`] the
//! current `Arc` and run Algorithm 1 with no shared-state writes at all.
//!
//! Freshness is unchanged from the serialized design: every published entry
//! is derived from the same sliding windows of the last `l` observations
//! (§5.2), so a plan computed from a snapshot is exactly a plan the
//! serialized handler could have computed at publication time.

use std::sync::{Arc, RwLock};

use crate::aqua;
use crate::model::{MethodScope, ResponseTimeModel};
use crate::pmf::{CdfTable, ConvScratch};
use crate::qos::{QosSpec, ReplicaId};
use crate::repository::{InfoRepository, MethodId, ReplicaStats};
use crate::time::Duration;

/// The method slot a cached table is filed under: the method index for
/// per-method models, or this sentinel for the aggregate scope.
pub const AGGREGATE_SLOT: u64 = u64::MAX;

/// Maps a request's (optional) method id to the slot its table lives in,
/// mirroring the keying of the generation-keyed model cache.
#[inline]
pub fn method_slot(scope: MethodScope, method: Option<MethodId>) -> u64 {
    match scope {
        MethodScope::PerMethod => u64::from(method.unwrap_or_default().index()),
        MethodScope::Aggregate => AGGREGATE_SLOT,
    }
}

/// One replica's published planning state: its cumulative response-time
/// tables per method slot plus the generation counters they were built at.
#[derive(Debug, Clone)]
pub struct ReplicaSnapshot {
    id: ReplicaId,
    warm: bool,
    selectable: bool,
    epoch: u64,
    perf_generation: u64,
    delay_generation: u64,
    outstanding: u32,
    /// `(slot, table)` pairs sorted by slot for binary-search lookup.
    cdfs: Vec<(u64, Arc<CdfTable>)>,
}

impl ReplicaSnapshot {
    /// Builds a snapshot of `stats` by running the full response-time
    /// pipeline (§5.3.1) for every method slot the replica has history
    /// for. This is the publisher-side cost, paid off the hot path.
    pub fn build(
        id: ReplicaId,
        stats: &ReplicaStats,
        model: &ResponseTimeModel,
        scratch: &mut ConvScratch,
    ) -> Self {
        let mut cdfs: Vec<(u64, Arc<CdfTable>)> = Vec::new();
        match model.config().method_scope {
            MethodScope::PerMethod => {
                for (method, _) in stats.histories() {
                    if let Some(pmf) = model.response_pmf_with(stats, Some(method), scratch) {
                        cdfs.push((u64::from(method.index()), Arc::new(pmf.cumulative())));
                    }
                }
            }
            MethodScope::Aggregate => {
                if let Some(pmf) = model.response_pmf_with(stats, None, scratch) {
                    cdfs.push((AGGREGATE_SLOT, Arc::new(pmf.cumulative())));
                }
            }
        }
        cdfs.sort_unstable_by_key(|entry| entry.0);
        ReplicaSnapshot {
            id,
            warm: stats.is_warm(),
            selectable: !stats.is_on_probation(),
            epoch: stats.epoch(),
            perf_generation: stats.perf_generation(),
            delay_generation: stats.delay_generation(),
            outstanding: stats.outstanding(),
            cdfs,
        }
    }

    /// The replica this snapshot describes.
    #[inline]
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// Whether the replica had both perf history and a delay measurement
    /// at publication time (the cold-start criterion of §5.4.1).
    #[inline]
    pub fn is_warm(&self) -> bool {
        self.warm
    }

    /// Whether the replica was selectable (not on probation, §5.4.2).
    #[inline]
    pub fn is_selectable(&self) -> bool {
        self.selectable
    }

    /// The repository epoch the snapshot was built at. A replica that was
    /// removed and re-inserted gets a new epoch, so a stale snapshot can
    /// never be mistaken for the re-joined replica's state (the ABA guard
    /// the interleaving checker exercises).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// `true` when `stats` still carries exactly the generations this
    /// snapshot was built from — i.e. republishing would be a no-op.
    pub fn is_current(&self, stats: &ReplicaStats) -> bool {
        self.epoch == stats.epoch()
            && self.perf_generation == stats.perf_generation()
            && self.delay_generation == stats.delay_generation()
            && self.outstanding == stats.outstanding()
    }

    /// `F_Ri(deadline)` for the given method slot, read straight from the
    /// published table. `None` when the replica has no distribution for
    /// the slot (no history yet, or the model could not produce one).
    #[aqua::hot_path]
    pub fn probability_by(&self, slot: u64, deadline: Duration) -> Option<f64> {
        let at = self
            .cdfs
            .binary_search_by_key(&slot, |entry| entry.0)
            .ok()?;
        let (_, cdf) = self.cdfs.get(at)?;
        Some(cdf.value_at(deadline))
    }

    /// Number of method slots with a published table.
    #[inline]
    pub fn slot_count(&self) -> usize {
        self.cdfs.len()
    }
}

/// An immutable, versioned view of the whole replication group, published
/// atomically through a [`SnapshotCell`].
#[derive(Debug, Clone)]
pub struct PlanningView {
    version: u64,
    /// Sorted by replica id for binary-search lookup.
    replicas: Vec<Arc<ReplicaSnapshot>>,
    /// The merged repository the snapshots were derived from — the source
    /// of truth for facade reads (membership, warmness, raw windows).
    repository: Arc<InfoRepository>,
    /// The QoS spec in force at publication. Planning inputs travel
    /// together: a renegotiation (§5.4.2) republishes, so a plan never
    /// mixes an old deadline with new tables or vice versa.
    qos: QosSpec,
}

impl PlanningView {
    /// An empty version-0 view over a repository with window size
    /// `window` (what a handler publishes before any replica joins).
    pub fn empty(window: usize, qos: QosSpec) -> Self {
        PlanningView {
            version: 0,
            replicas: Vec::new(),
            repository: Arc::new(InfoRepository::new(window)),
            qos,
        }
    }

    /// Assembles a view; `replicas` is sorted by id internally.
    pub fn assemble(
        version: u64,
        mut replicas: Vec<Arc<ReplicaSnapshot>>,
        repository: Arc<InfoRepository>,
        qos: QosSpec,
    ) -> Self {
        replicas.sort_unstable_by_key(|r| r.id());
        PlanningView {
            version,
            replicas,
            repository,
            qos,
        }
    }

    /// The QoS spec this view was published under.
    #[inline]
    pub fn qos(&self) -> QosSpec {
        self.qos
    }

    /// The publication version; strictly increasing across publishes.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// All replica snapshots, sorted by id.
    #[inline]
    pub fn replicas(&self) -> &[Arc<ReplicaSnapshot>] {
        &self.replicas
    }

    /// The snapshot for `id`, if the replica was a member at publication.
    #[aqua::hot_path]
    pub fn replica(&self, id: ReplicaId) -> Option<&ReplicaSnapshot> {
        let at = self.replicas.binary_search_by_key(&id, |r| r.id()).ok()?;
        self.replicas.get(at).map(|r| r.as_ref())
    }

    /// `F_Ri(deadline)` for `id` at the given method slot (the hot-path
    /// read Algorithm 1 runs per candidate).
    #[aqua::hot_path]
    pub fn probability_by(&self, id: ReplicaId, slot: u64, deadline: Duration) -> Option<f64> {
        self.replica(id)?.probability_by(slot, deadline)
    }

    /// Whether every selectable member was warm at publication time — the
    /// cold-start criterion driving the full multicast of §5.4.1.
    pub fn all_warm(&self) -> bool {
        let mut any = false;
        for r in &self.replicas {
            if r.is_selectable() {
                any = true;
                if !r.is_warm() {
                    return false;
                }
            }
        }
        any
    }

    /// The merged repository backing this view.
    #[inline]
    pub fn repository(&self) -> &InfoRepository {
        &self.repository
    }

    /// Shares the backing repository (publishers clone it copy-on-write).
    #[inline]
    pub fn repository_arc(&self) -> Arc<InfoRepository> {
        Arc::clone(&self.repository)
    }
}

/// The publication point: an `Arc` pointer swapped under a [`RwLock`]
/// whose critical sections are pointer-sized (clone on read, replace on
/// write), so readers never wait on a rebuild and writers never wait on a
/// plan. Lock poisoning is recovered by adopting the inner value — every
/// critical section is a plain pointer move, so a panicking thread cannot
/// leave the cell mid-update.
#[derive(Debug)]
pub struct SnapshotCell {
    current: RwLock<Arc<PlanningView>>,
}

impl SnapshotCell {
    /// Creates a cell publishing `initial`.
    pub fn new(initial: PlanningView) -> Self {
        SnapshotCell {
            current: RwLock::new(Arc::new(initial)),
        }
    }

    /// The currently published view. The read lock is held only for the
    /// `Arc` clone; the returned view stays valid (immutable) regardless
    /// of later publishes.
    pub fn load(&self) -> Arc<PlanningView> {
        let guard = self
            .current
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        Arc::clone(&guard)
    }

    /// Publishes `view` if it is strictly newer than the current one.
    ///
    /// Returns `false` (leaving the cell untouched) when `view.version()`
    /// is not greater than the published version — the guard that makes a
    /// delayed publisher harmless instead of an ABA hazard.
    pub fn publish(&self, view: Arc<PlanningView>) -> bool {
        let mut guard = self
            .current
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if view.version() <= guard.version() {
            return false;
        }
        *guard = view;
        true
    }

    /// The published version without retaining the view.
    pub fn version(&self) -> u64 {
        self.load().version()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelConfig;
    use crate::repository::PerfReport;
    use crate::time::Instant;

    fn spec() -> QosSpec {
        QosSpec::new(ms(200), 0.9).unwrap()
    }

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn warmed_repo(n: usize, l: usize) -> InfoRepository {
        let mut repo = InfoRepository::new(l);
        for i in 0..n {
            let r = ReplicaId::new(i as u64);
            repo.insert_replica(r);
            for k in 0..l {
                repo.record_perf(
                    r,
                    PerfReport::new(
                        ms(30 + ((i * 5 + k * 11) % 40) as u64),
                        ms((k % 4) as u64),
                        0,
                    ),
                    Instant::EPOCH,
                );
            }
            repo.record_gateway_delay(r, ms(2), Instant::EPOCH);
        }
        repo
    }

    fn build_view(repo: &InfoRepository, model: &ResponseTimeModel, version: u64) -> PlanningView {
        let mut scratch = ConvScratch::new();
        let snaps: Vec<Arc<ReplicaSnapshot>> = repo
            .iter()
            .map(|(id, stats)| Arc::new(ReplicaSnapshot::build(id, stats, model, &mut scratch)))
            .collect();
        PlanningView::assemble(version, snaps, Arc::new(repo.clone()), spec())
    }

    #[test]
    fn snapshot_probability_matches_model() {
        let repo = warmed_repo(4, 20);
        let model = ResponseTimeModel::new(ModelConfig::default());
        let view = build_view(&repo, &model, 1);
        let slot = method_slot(model.config().method_scope, None);
        for (id, stats) in repo.iter() {
            let direct = model
                .probability_by(stats, ms(120))
                .expect("warm replica has a distribution");
            let published = view
                .probability_by(id, slot, ms(120))
                .expect("snapshot published a table");
            assert!(
                (direct - published).abs() < 1e-12,
                "{id}: direct {direct} vs published {published}"
            );
        }
    }

    #[test]
    fn missing_slot_and_replica_yield_none() {
        let repo = warmed_repo(2, 5);
        let model = ResponseTimeModel::new(ModelConfig::default());
        let view = build_view(&repo, &model, 1);
        assert!(view.probability_by(ReplicaId::new(9), 0, ms(100)).is_none());
        assert!(view
            .probability_by(ReplicaId::new(0), 12345, ms(100))
            .is_none());
    }

    #[test]
    fn aggregate_scope_uses_sentinel_slot() {
        let repo = warmed_repo(1, 5);
        let config = ModelConfig {
            method_scope: MethodScope::Aggregate,
            ..ModelConfig::default()
        };
        let model = ResponseTimeModel::new(config);
        let view = build_view(&repo, &model, 1);
        assert_eq!(method_slot(MethodScope::Aggregate, None), AGGREGATE_SLOT);
        assert!(view
            .probability_by(ReplicaId::new(0), AGGREGATE_SLOT, ms(100))
            .is_some());
    }

    #[test]
    fn is_current_tracks_generations() {
        let mut repo = warmed_repo(1, 5);
        let model = ResponseTimeModel::new(ModelConfig::default());
        let mut scratch = ConvScratch::new();
        let id = ReplicaId::new(0);
        let snap = ReplicaSnapshot::build(id, repo.stats(id).unwrap(), &model, &mut scratch);
        assert!(snap.is_current(repo.stats(id).unwrap()));
        repo.record_perf(id, PerfReport::new(ms(33), ms(1), 0), Instant::EPOCH);
        assert!(!snap.is_current(repo.stats(id).unwrap()));
    }

    #[test]
    fn cold_replica_publishes_no_tables_and_breaks_all_warm() {
        let mut repo = warmed_repo(2, 5);
        repo.insert_replica(ReplicaId::new(7));
        let model = ResponseTimeModel::new(ModelConfig::default());
        let view = build_view(&repo, &model, 1);
        let cold = view.replica(ReplicaId::new(7)).unwrap();
        assert!(!cold.is_warm());
        assert_eq!(cold.slot_count(), 0);
        assert!(!view.all_warm());
    }

    #[test]
    fn publish_rejects_stale_versions() {
        let cell = SnapshotCell::new(PlanningView::empty(5, spec()));
        assert_eq!(cell.version(), 0);
        let v2 = Arc::new(PlanningView::assemble(
            2,
            Vec::new(),
            Arc::new(InfoRepository::new(5)),
            spec(),
        ));
        let v1 = Arc::new(PlanningView::assemble(
            1,
            Vec::new(),
            Arc::new(InfoRepository::new(5)),
            spec(),
        ));
        assert!(cell.publish(Arc::clone(&v2)));
        assert_eq!(cell.version(), 2);
        assert!(!cell.publish(v1), "older version must be refused");
        assert!(!cell.publish(v2), "same version must be refused");
        assert_eq!(cell.version(), 2);
    }

    #[test]
    fn loaded_view_survives_republish() {
        let cell = SnapshotCell::new(PlanningView::empty(5, spec()));
        let before = cell.load();
        let repo = warmed_repo(1, 5);
        let model = ResponseTimeModel::new(ModelConfig::default());
        cell.publish(Arc::new(build_view(&repo, &model, 1)));
        assert_eq!(before.version(), 0);
        assert!(before.replicas().is_empty());
        assert_eq!(cell.load().version(), 1);
        assert_eq!(cell.load().replicas().len(), 1);
    }
}
