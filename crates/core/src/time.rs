//! Time primitives shared by the model, the simulator, and the runtime.
//!
//! All of AQuA's measurements (service time `ts`, queuing delay `tq`,
//! gateway-to-gateway delay `td`, response time `tr`) are durations, and the
//! simulator needs an absolute notion of virtual time. Both are represented
//! with nanosecond precision as unsigned 64-bit counters, which covers
//! roughly 584 years of simulated time — far more than any experiment needs.
//!
//! The types deliberately mirror [`std::time::Duration`] and
//! [`std::time::Instant`] but are `Copy`, ordered, hashable, serializable,
//! and convertible to/from their `std` counterparts, so the same model code
//! runs inside the discrete-event simulator and on real sockets.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A span of (virtual or real) time with nanosecond resolution.
///
/// # Examples
///
/// ```
/// use aqua_core::time::Duration;
///
/// let deadline = Duration::from_millis(200);
/// let overhead = Duration::from_micros(350);
/// assert!(deadline.saturating_sub(overhead) < deadline);
/// assert_eq!(Duration::from_millis(2) + Duration::from_millis(3),
///            Duration::from_millis(5));
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Duration(u64);

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Duration = Duration(0);
    /// The largest representable duration.
    pub const MAX: Duration = Duration(u64::MAX);

    /// Creates a duration from whole nanoseconds.
    #[inline]
    pub const fn from_nanos(nanos: u64) -> Self {
        Duration(nanos)
    }

    /// Creates a duration from whole microseconds.
    ///
    /// # Panics
    ///
    /// Panics if the value overflows the nanosecond representation.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        Duration(micros * 1_000)
    }

    /// Creates a duration from whole milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if the value overflows the nanosecond representation.
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        Duration(millis * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    ///
    /// # Panics
    ///
    /// Panics if the value overflows the nanosecond representation.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        Duration(secs * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to nanoseconds.
    ///
    /// Negative and non-finite inputs saturate to [`Duration::ZERO`]; values
    /// larger than the representable range saturate to [`Duration::MAX`].
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return Duration::ZERO;
        }
        let nanos = secs * 1e9;
        if nanos >= u64::MAX as f64 {
            Duration::MAX
        } else {
            Duration(nanos.round() as u64)
        }
    }

    /// Creates a duration from fractional milliseconds, rounding to
    /// nanoseconds, with the same saturation rules as
    /// [`Duration::from_secs_f64`].
    #[inline]
    pub fn from_millis_f64(millis: f64) -> Self {
        Duration::from_secs_f64(millis / 1e3)
    }

    /// Returns the duration in whole nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration in whole microseconds, truncating.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the duration in whole milliseconds, truncating.
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the duration as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration as fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns `true` if this is the zero duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Adds two durations, returning `None` on overflow.
    #[inline]
    pub const fn checked_add(self, rhs: Duration) -> Option<Duration> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(Duration(v)),
            None => None,
        }
    }

    /// Subtracts `rhs`, clamping at zero instead of underflowing.
    #[inline]
    pub const fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }

    /// Adds `rhs`, clamping at [`Duration::MAX`] instead of overflowing.
    #[inline]
    pub const fn saturating_add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }

    /// Multiplies by a scalar, clamping at [`Duration::MAX`].
    #[inline]
    pub const fn saturating_mul(self, rhs: u64) -> Duration {
        Duration(self.0.saturating_mul(rhs))
    }

    /// Scales by a non-negative float, rounding to nanoseconds.
    ///
    /// Negative or non-finite factors yield [`Duration::ZERO`].
    #[inline]
    pub fn mul_f64(self, factor: f64) -> Duration {
        Duration::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// Returns the smaller of two durations.
    #[inline]
    pub fn min(self, other: Duration) -> Duration {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two durations.
    #[inline]
    pub fn max(self, other: Duration) -> Duration {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Duration {
    /// Formats with the coarsest exact unit for round values (`250ms`,
    /// `17us`) and two decimals in a magnitude-appropriate unit otherwise
    /// (`93.08ms`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns == 0 {
            write!(f, "0ns")
        } else if ns.is_multiple_of(1_000_000_000) {
            write!(f, "{}s", ns / 1_000_000_000)
        } else if ns.is_multiple_of(1_000_000) && ns < 1_000_000_000 {
            write!(f, "{}ms", ns / 1_000_000)
        } else if ns.is_multiple_of(1_000) && ns < 1_000_000 {
            write!(f, "{}us", ns / 1_000)
        } else if ns >= 1_000_000_000 {
            write!(f, "{:.2}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.2}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.2}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        // aqua-lint: allow(no-panic-in-hot-path) overflow on Duration arithmetic is a bug, not a recoverable condition; std Durations panic the same way
        Duration(self.0.checked_add(rhs.0).expect("duration overflow"))
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        // aqua-lint: allow(no-panic-in-hot-path) underflow on Duration arithmetic is a bug, not a recoverable condition; std Durations panic the same way
        Duration(self.0.checked_sub(rhs.0).expect("duration underflow"))
    }
}

impl SubAssign for Duration {
    #[inline]
    fn sub_assign(&mut self, rhs: Duration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: u64) -> Duration {
        // aqua-lint: allow(no-panic-in-hot-path) overflow on Duration scaling is a bug, not a recoverable condition; std Durations panic the same way
        Duration(self.0.checked_mul(rhs).expect("duration overflow"))
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    #[inline]
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, |acc, d| acc.saturating_add(d))
    }
}

impl From<std::time::Duration> for Duration {
    fn from(d: std::time::Duration) -> Self {
        let nanos = d.as_nanos();
        if nanos >= u64::MAX as u128 {
            Duration::MAX
        } else {
            Duration(nanos as u64)
        }
    }
}

impl From<Duration> for std::time::Duration {
    fn from(d: Duration) -> Self {
        std::time::Duration::from_nanos(d.0)
    }
}

/// A point in (virtual or real) time, measured from an arbitrary epoch.
///
/// In the discrete-event simulator the epoch is simulation start; in the
/// socket runtime it is process start. The paper's measurement protocol only
/// ever subtracts two instants taken *on the same machine* (§5.4.2: "we do
/// not require that the clocks be synchronized because we always measure the
/// two end-points of a timing interval on the same machine"), which this API
/// naturally encourages: the only way to get a [`Duration`] out of instants
/// is to subtract them.
///
/// # Examples
///
/// ```
/// use aqua_core::time::{Duration, Instant};
///
/// let t0 = Instant::from_nanos(1_000);
/// let t4 = t0 + Duration::from_millis(3);
/// assert_eq!(t4.duration_since(t0), Duration::from_millis(3));
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Instant(u64);

impl Instant {
    /// The epoch (time zero).
    pub const EPOCH: Instant = Instant(0);

    /// Creates an instant `nanos` nanoseconds after the epoch.
    #[inline]
    pub const fn from_nanos(nanos: u64) -> Self {
        Instant(nanos)
    }

    /// Creates an instant `millis` milliseconds after the epoch.
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        Instant(millis * 1_000_000)
    }

    /// Creates an instant `secs` seconds after the epoch.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        Instant(secs * 1_000_000_000)
    }

    /// Nanoseconds elapsed since the epoch.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds elapsed since the epoch.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional milliseconds elapsed since the epoch.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Elapsed time from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    #[inline]
    pub fn duration_since(self, earlier: Instant) -> Duration {
        Duration(
            self.0
                .checked_sub(earlier.0)
                // aqua-lint: allow(no-panic-in-hot-path) the panic is this method's documented contract; saturating_duration_since is the non-panicking variant
                .expect("`earlier` is later than `self`"),
        )
    }

    /// Elapsed time from `earlier` to `self`, or [`Duration::ZERO`] if
    /// `earlier` is later.
    #[inline]
    pub const fn saturating_duration_since(self, earlier: Instant) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the instant `d` after `self`, clamping at the representable
    /// maximum.
    #[inline]
    pub const fn saturating_add(self, d: Duration) -> Instant {
        Instant(self.0.saturating_add(d.as_nanos()))
    }
}

impl fmt::Debug for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", Duration(self.0))
    }
}

impl fmt::Display for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", Duration(self.0))
    }
}

impl Add<Duration> for Instant {
    type Output = Instant;
    #[inline]
    fn add(self, rhs: Duration) -> Instant {
        // aqua-lint: allow(no-panic-in-hot-path) overflow on Instant arithmetic is a bug, not a recoverable condition; std Instants panic the same way
        Instant(self.0.checked_add(rhs.0).expect("instant overflow"))
    }
}

impl AddAssign<Duration> for Instant {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<Duration> for Instant {
    type Output = Instant;
    #[inline]
    fn sub(self, rhs: Duration) -> Instant {
        // aqua-lint: allow(no-panic-in-hot-path) underflow on Instant arithmetic is a bug, not a recoverable condition; std Instants panic the same way
        Instant(self.0.checked_sub(rhs.0).expect("instant underflow"))
    }
}

impl Sub<Instant> for Instant {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Instant) -> Duration {
        self.duration_since(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(Duration::from_secs(1), Duration::from_millis(1_000));
        assert_eq!(Duration::from_millis(1), Duration::from_micros(1_000));
        assert_eq!(Duration::from_micros(1), Duration::from_nanos(1_000));
    }

    #[test]
    fn duration_float_roundtrip() {
        let d = Duration::from_secs_f64(0.125);
        assert_eq!(d.as_nanos(), 125_000_000);
        assert!((d.as_secs_f64() - 0.125).abs() < 1e-12);
        assert_eq!(Duration::from_millis_f64(1.5).as_micros(), 1_500);
    }

    #[test]
    fn duration_float_saturates() {
        assert_eq!(Duration::from_secs_f64(-1.0), Duration::ZERO);
        assert_eq!(Duration::from_secs_f64(f64::NAN), Duration::ZERO);
        assert_eq!(Duration::from_secs_f64(1e30), Duration::MAX);
    }

    #[test]
    fn duration_arithmetic() {
        let a = Duration::from_millis(3);
        let b = Duration::from_millis(2);
        assert_eq!(a + b, Duration::from_millis(5));
        assert_eq!(a - b, Duration::from_millis(1));
        assert_eq!(a * 4, Duration::from_millis(12));
        assert_eq!(a / 3, Duration::from_millis(1));
        assert_eq!(b.saturating_sub(a), Duration::ZERO);
        assert_eq!(Duration::MAX.saturating_add(a), Duration::MAX);
        assert_eq!(Duration::MAX.saturating_mul(2), Duration::MAX);
    }

    #[test]
    #[should_panic(expected = "duration underflow")]
    fn duration_sub_underflow_panics() {
        let _ = Duration::from_millis(1) - Duration::from_millis(2);
    }

    #[test]
    fn duration_mul_f64() {
        assert_eq!(
            Duration::from_millis(100).mul_f64(0.5),
            Duration::from_millis(50)
        );
        assert_eq!(Duration::from_millis(100).mul_f64(-1.0), Duration::ZERO);
    }

    #[test]
    fn duration_ordering_and_minmax() {
        let a = Duration::from_micros(10);
        let b = Duration::from_micros(20);
        assert!(a < b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn duration_sum() {
        let total: Duration = (1..=4).map(Duration::from_millis).sum();
        assert_eq!(total, Duration::from_millis(10));
    }

    #[test]
    fn duration_display_picks_coarsest_unit() {
        assert_eq!(Duration::from_secs(2).to_string(), "2s");
        assert_eq!(Duration::from_millis(250).to_string(), "250ms");
        assert_eq!(Duration::from_micros(17).to_string(), "17us");
        assert_eq!(Duration::from_nanos(999).to_string(), "999ns");
        assert_eq!(Duration::ZERO.to_string(), "0ns");
    }

    #[test]
    fn duration_display_fractional_values() {
        assert_eq!(Duration::from_nanos(93_077_604).to_string(), "93.08ms");
        assert_eq!(Duration::from_nanos(1_500_000).to_string(), "1.50ms");
        assert_eq!(Duration::from_nanos(2_345).to_string(), "2.35us");
        assert_eq!(Duration::from_nanos(1_250_000_000).to_string(), "1.25s");
    }

    #[test]
    fn std_conversions_roundtrip() {
        let d = Duration::from_micros(12_345);
        let std: std::time::Duration = d.into();
        assert_eq!(Duration::from(std), d);
    }

    #[test]
    fn instant_arithmetic() {
        let t0 = Instant::EPOCH + Duration::from_millis(5);
        let t1 = t0 + Duration::from_millis(7);
        assert_eq!(t1.duration_since(t0), Duration::from_millis(7));
        assert_eq!(t1 - t0, Duration::from_millis(7));
        assert_eq!(t0.saturating_duration_since(t1), Duration::ZERO);
        assert_eq!(t1 - Duration::from_millis(7), t0);
    }

    #[test]
    #[should_panic(expected = "later than")]
    fn instant_duration_since_panics_on_reversal() {
        let t0 = Instant::from_millis(10);
        let t1 = Instant::from_millis(20);
        let _ = t0.duration_since(t1);
    }

    #[test]
    fn instant_display() {
        assert_eq!(Instant::from_millis(3).to_string(), "t+3ms");
    }
}
