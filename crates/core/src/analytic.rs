//! Closed-form reference distributions for validating the empirical model.
//!
//! The online model of §5.3.1 is nonparametric — relative frequencies over
//! a sliding window. To test it, we need ground truth: when the service
//! times are *drawn from* a known distribution, the empirical `F_R(t)` must
//! converge to the analytic one. This module provides the closed forms
//! (and an `erf` implementation to power the normal CDF) used by the test
//! suites and by harness sanity checks.

use crate::time::Duration;

/// Abramowitz & Stegun 7.1.26 rational approximation of the error
/// function; absolute error ≤ 1.5 × 10⁻⁷ — far below the tolerances used
/// in any test here.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// A distribution over durations with a closed-form CDF.
pub trait AnalyticDistribution {
    /// `P(X ≤ t)`.
    fn cdf(&self, t: Duration) -> f64;

    /// The distribution mean, if finite.
    fn mean(&self) -> Option<Duration>;
}

/// Normal(μ, σ), truncated below at zero (matching how the simulated
/// servers clamp negative draws).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NormalDist {
    /// Mean of the untruncated distribution.
    pub mean: Duration,
    /// Standard deviation.
    pub std_dev: Duration,
}

impl NormalDist {
    /// The paper's synthetic load: Normal(100 ms, σ 50 ms).
    pub fn paper_load() -> Self {
        NormalDist {
            mean: Duration::from_millis(100),
            std_dev: Duration::from_millis(50),
        }
    }

    /// CDF of the *untruncated* normal at `t` (may be > 0 at t = 0).
    pub fn untruncated_cdf(&self, t: Duration) -> f64 {
        let z = (t.as_secs_f64() - self.mean.as_secs_f64())
            / (self.std_dev.as_secs_f64() * std::f64::consts::SQRT_2);
        0.5 * (1.0 + erf(z))
    }
}

impl AnalyticDistribution for NormalDist {
    fn cdf(&self, t: Duration) -> f64 {
        // Truncation at zero piles the negative mass onto 0, so for t ≥ 0
        // the CDF equals the untruncated one.
        self.untruncated_cdf(t)
    }

    fn mean(&self) -> Option<Duration> {
        Some(self.mean)
    }
}

/// Exponential with the given mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentialDist {
    /// Mean (1/λ).
    pub mean: Duration,
}

impl AnalyticDistribution for ExponentialDist {
    fn cdf(&self, t: Duration) -> f64 {
        let lambda = 1.0 / self.mean.as_secs_f64().max(f64::MIN_POSITIVE);
        1.0 - (-lambda * t.as_secs_f64()).exp()
    }

    fn mean(&self) -> Option<Duration> {
        Some(self.mean)
    }
}

/// A deterministic (degenerate) distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointDist {
    /// The single value.
    pub value: Duration,
}

impl AnalyticDistribution for PointDist {
    fn cdf(&self, t: Duration) -> f64 {
        if t >= self.value {
            1.0
        } else {
            0.0
        }
    }

    fn mean(&self) -> Option<Duration> {
        Some(self.value)
    }
}

/// Closed form of Eq. 1 for `n` i.i.d. replicas: the probability that at
/// least one of `n` independent replicas with per-replica CDF value `p`
/// responds in time.
///
/// # Examples
///
/// ```
/// use aqua_core::analytic::at_least_one;
///
/// assert!((at_least_one(0.5, 2) - 0.75).abs() < 1e-12);
/// assert_eq!(at_least_one(0.3, 0), 0.0);
/// ```
pub fn at_least_one(p: f64, n: usize) -> f64 {
    1.0 - (1.0 - p.clamp(0.0, 1.0)).powi(n as i32)
}

/// The minimum number of i.i.d. replicas with per-replica probability `p`
/// needed so that at least one responds in time with probability ≥ `target`
/// (∞-safe: returns `None` when `p` ≤ 0 and `target` > 0).
///
/// This is the closed-form prediction behind Figure 4's curves, up to the
/// reservation of `m0`.
pub fn replicas_needed(p: f64, target: f64) -> Option<u32> {
    let p = p.clamp(0.0, 1.0);
    let target = target.clamp(0.0, 1.0);
    if target <= 0.0 {
        return Some(0);
    }
    if p <= 0.0 {
        return None;
    }
    if p >= 1.0 {
        return Some(1);
    }
    // 1 − (1−p)^k ≥ target  ⇔  k ≥ ln(1−target) / ln(1−p)
    let k = (1.0 - target).ln() / (1.0 - p).ln();
    Some(k.ceil().max(1.0) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn erf_reference_values() {
        // Known values to 6 decimals.
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(0.5) - 0.520_500).abs() < 1e-5);
        assert!((erf(1.0) - 0.842_701).abs() < 1e-5);
        assert!((erf(2.0) - 0.995_322).abs() < 1e-5);
        assert!((erf(-1.0) + 0.842_701).abs() < 1e-5, "odd function");
        assert!(erf(5.0) > 0.999_999);
    }

    #[test]
    fn normal_cdf_quartiles() {
        let dist = NormalDist::paper_load();
        assert!((dist.cdf(ms(100)) - 0.5).abs() < 1e-6, "median at the mean");
        // ±1σ ≈ 15.87% / 84.13%.
        assert!((dist.cdf(ms(50)) - 0.1587).abs() < 1e-3);
        assert!((dist.cdf(ms(150)) - 0.8413).abs() < 1e-3);
        assert_eq!(dist.mean(), Some(ms(100)));
    }

    #[test]
    fn exponential_cdf() {
        let dist = ExponentialDist { mean: ms(100) };
        assert!((dist.cdf(ms(100)) - (1.0 - (-1.0f64).exp())).abs() < 1e-9);
        assert_eq!(dist.cdf(Duration::ZERO), 0.0);
        assert!(dist.cdf(ms(1_000)) > 0.9999);
    }

    #[test]
    fn point_cdf_is_a_step() {
        let dist = PointDist { value: ms(42) };
        assert_eq!(dist.cdf(ms(41)), 0.0);
        assert_eq!(dist.cdf(ms(42)), 1.0);
    }

    #[test]
    fn at_least_one_matches_combined_probability() {
        for p in [0.0, 0.3, 0.7, 1.0] {
            for n in 0..5 {
                let direct = at_least_one(p, n);
                let via_core = crate::select::combined_probability(&vec![p; n]);
                assert!((direct - via_core).abs() < 1e-12, "p={p} n={n}");
            }
        }
    }

    #[test]
    fn replicas_needed_inverts_at_least_one() {
        for p in [0.1, 0.3, 0.5, 0.9] {
            for target in [0.5, 0.9, 0.99] {
                let k = replicas_needed(p, target).unwrap();
                assert!(at_least_one(p, k as usize) >= target - 1e-12);
                if k > 1 {
                    assert!(at_least_one(p, (k - 1) as usize) < target);
                }
            }
        }
        assert_eq!(replicas_needed(0.0, 0.5), None);
        assert_eq!(replicas_needed(0.5, 0.0), Some(0));
        assert_eq!(replicas_needed(1.0, 0.99), Some(1));
    }

    #[test]
    fn empirical_pmf_converges_to_analytic_normal() {
        // Draw many samples from Normal(100, 20) using a simple
        // Box–Muller (keeping core free of a rand dependency in tests is
        // not needed — rand is a dev-dependency).
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(7);
        let mut samples = Vec::with_capacity(20_000);
        while samples.len() < 20_000 {
            let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            let v = 100.0 + 20.0 * z;
            samples.push(Duration::from_millis_f64(v.max(0.0)));
        }
        let pmf = crate::pmf::Pmf::from_samples(samples, ms(1)).unwrap();
        let dist = NormalDist {
            mean: ms(100),
            std_dev: ms(20),
        };
        for t in (40..=160).step_by(10) {
            let e = pmf.cdf(ms(t));
            // Floor bucketing counts every sample in [t, t+1) as ≤ t, so
            // the empirical CDF at t estimates the true CDF at ~t + ½
            // bucket; compare against that point.
            let a = dist.cdf(Duration::from_millis_f64(t as f64 + 0.5));
            assert!(
                (e - a).abs() < 0.015,
                "empirical {e:.3} vs analytic {a:.3} at {t} ms"
            );
        }
    }
}
