//! Fixed-capacity sliding windows over recent measurements.
//!
//! The gateway information repository (paper §5.2) records "the service time
//! … for the most recent `l` requests serviced by that replica" and likewise
//! for the queuing delay. `l` is "chosen so that it includes a reasonable
//! number of recent requests but eliminates obsolete measurements". The
//! paper's experiments use `l ∈ {5, 10, 20}` (Figure 3) and `l = 5` for the
//! end-to-end runs.

use core::fmt;
use std::collections::BTreeMap;

use crate::aqua;
use crate::time::Duration;

/// A bounded ring buffer that keeps only the most recent `capacity` samples.
///
/// Pushing into a full window evicts the oldest sample. Iteration order is
/// oldest → newest.
///
/// # Examples
///
/// ```
/// use aqua_core::window::SlidingWindow;
///
/// let mut w = SlidingWindow::new(3);
/// for x in [1, 2, 3, 4] {
///     w.push(x);
/// }
/// assert_eq!(w.iter().copied().collect::<Vec<_>>(), vec![2, 3, 4]);
/// assert_eq!(w.latest(), Some(&4));
/// ```
#[derive(Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SlidingWindow<T> {
    samples: Vec<T>,
    capacity: usize,
    /// Index of the oldest sample once the buffer has wrapped.
    head: usize,
    /// Total number of samples ever pushed (for diagnostics).
    pushed: u64,
}

impl<T> SlidingWindow<T> {
    /// Creates an empty window holding at most `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero: a zero-length history cannot support
    /// the relative-frequency estimate of §5.3.1.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "sliding window capacity must be positive");
        SlidingWindow {
            samples: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            pushed: 0,
        }
    }

    /// The maximum number of samples retained (`l` in the paper).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The number of samples currently held.
    #[inline]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if no samples have been recorded yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Returns `true` once the window holds `capacity` samples.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.samples.len() == self.capacity
    }

    /// Total number of samples ever pushed, including evicted ones.
    #[inline]
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Records a new sample, evicting the oldest if the window is full.
    pub fn push(&mut self, sample: T) {
        let _ = self.push_evicting(sample);
    }

    /// Like [`SlidingWindow::push`], but hands back the evicted sample so
    /// callers maintaining derived state (e.g. the bucket counts of a
    /// [`BucketedWindow`]) can retire its contribution in O(1) instead of
    /// rescanning the window.
    #[aqua::hot_path]
    pub fn push_evicting(&mut self, sample: T) -> Option<T> {
        self.pushed += 1;
        if self.samples.len() < self.capacity {
            self.samples.push(sample);
            None
        } else {
            // aqua-lint: allow(no-panic-in-hot-path) head < capacity == len whenever the window is full
            let evicted = core::mem::replace(&mut self.samples[self.head], sample);
            self.head = (self.head + 1) % self.capacity;
            Some(evicted)
        }
    }

    /// The most recently pushed sample, if any.
    pub fn latest(&self) -> Option<&T> {
        if self.samples.is_empty() {
            None
        } else if self.samples.len() < self.capacity {
            self.samples.last()
        } else {
            let idx = (self.head + self.capacity - 1) % self.capacity;
            self.samples.get(idx)
        }
    }

    /// The oldest retained sample, if any.
    pub fn oldest(&self) -> Option<&T> {
        if self.samples.is_empty() {
            None
        } else if self.samples.len() < self.capacity {
            self.samples.first()
        } else {
            self.samples.get(self.head)
        }
    }

    /// Iterates over retained samples from oldest to newest.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter {
            window: self,
            pos: 0,
        }
    }

    /// Removes all samples but keeps the capacity.
    pub fn clear(&mut self) {
        self.samples.clear();
        self.head = 0;
    }

    /// Grows or shrinks the capacity, keeping the newest samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn set_capacity(&mut self, capacity: usize) {
        assert!(capacity > 0, "sliding window capacity must be positive");
        let kept: Vec<T> = {
            let mut ordered: Vec<T> = Vec::with_capacity(self.samples.len());
            // Drain in oldest→newest order.
            let len = self.samples.len();
            let head = self.head;
            let mut tmp: Vec<Option<T>> = self.samples.drain(..).map(Some).collect();
            for i in 0..len {
                let idx = if len == self.capacity {
                    (head + i) % len
                } else {
                    i
                };
                if let Some(sample) = tmp.get_mut(idx).and_then(Option::take) {
                    ordered.push(sample);
                }
            }
            debug_assert_eq!(ordered.len(), len, "each slot drained exactly once");
            let skip = ordered.len().saturating_sub(capacity);
            ordered.drain(..skip);
            ordered
        };
        self.capacity = capacity;
        self.samples = kept;
        self.head = 0;
    }
}

impl<T: fmt::Debug> fmt::Debug for SlidingWindow<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SlidingWindow")
            .field("capacity", &self.capacity)
            .field("samples", &self.iter().collect::<Vec<_>>())
            .finish()
    }
}

impl<'a, T> IntoIterator for &'a SlidingWindow<T> {
    type Item = &'a T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

impl<T> Extend<T> for SlidingWindow<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for sample in iter {
            self.push(sample);
        }
    }
}

/// Iterator over a [`SlidingWindow`] from oldest to newest sample.
#[derive(Debug)]
pub struct Iter<'a, T> {
    window: &'a SlidingWindow<T>,
    pos: usize,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        if self.pos >= self.window.samples.len() {
            return None;
        }
        let idx = if self.window.samples.len() == self.window.capacity {
            (self.window.head + self.pos) % self.window.capacity
        } else {
            self.pos
        };
        self.pos += 1;
        self.window.samples.get(idx)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.window.samples.len() - self.pos;
        (remaining, Some(remaining))
    }
}

impl<T> ExactSizeIterator for Iter<'_, T> {}

/// A sliding window over durations that maintains its per-bucket sample
/// counts **incrementally**: each push updates exactly two counters (the
/// new sample's bucket and, once the window is full, the evicted sample's),
/// so building the relative-frequency pmf of §5.3.1 no longer rescans the
/// `l` retained samples.
///
/// The window also carries a monotonically increasing **generation**,
/// bumped by every mutation. A consumer that memoizes anything derived
/// from the window (the model cache) stores the generation it computed
/// from and recomputes only when the generation moved.
///
/// # Examples
///
/// ```
/// use aqua_core::time::Duration;
/// use aqua_core::window::BucketedWindow;
///
/// let ms = Duration::from_millis;
/// let mut w = BucketedWindow::new(3, ms(1));
/// let g0 = w.generation();
/// for d in [ms(5), ms(5), ms(7), ms(9)] {
///     w.push(d); // capacity 3: the first 5 ms sample is evicted
/// }
/// assert_eq!(w.bucket_counts().collect::<Vec<_>>(), vec![(5, 1), (7, 1), (9, 1)]);
/// assert!(w.generation() > g0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BucketedWindow {
    samples: SlidingWindow<Duration>,
    bucket: Duration,
    /// `counts[i]` = number of retained samples in bucket `i` (lower edge
    /// `i · bucket`). Invariant: values are ≥ 1 and sum to `samples.len()`.
    counts: BTreeMap<u64, u32>,
    /// Bumped on every mutation; never reset (not even by `clear`).
    generation: u64,
}

impl BucketedWindow {
    /// Creates an empty window of `capacity` samples counted at `bucket`
    /// granularity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (see [`SlidingWindow::new`]) or the
    /// bucket width is zero.
    pub fn new(capacity: usize, bucket: Duration) -> Self {
        assert!(!bucket.is_zero(), "bucketed window bucket must be positive");
        BucketedWindow {
            samples: SlidingWindow::new(capacity),
            bucket,
            counts: BTreeMap::new(),
            generation: 0,
        }
    }

    /// The underlying samples, oldest first.
    #[inline]
    pub fn samples(&self) -> &SlidingWindow<Duration> {
        &self.samples
    }

    /// The bucket width the counts are quantized to.
    #[inline]
    pub fn bucket_width(&self) -> Duration {
        self.bucket
    }

    /// The per-bucket counts as `(bucket index, count)` pairs in ascending
    /// bucket order — the exact input shape of
    /// [`crate::pmf::Pmf::from_bucket_counts`].
    pub fn bucket_counts(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        self.counts.iter().map(|(i, c)| (*i, *c))
    }

    /// The mutation generation: strictly increases on every `push`,
    /// `clear`, or `set_capacity`.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Maximum number of retained samples (`l`).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.samples.capacity()
    }

    /// Number of samples currently held.
    #[inline]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if no samples have been recorded yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Returns `true` once the window holds `capacity` samples.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.samples.is_full()
    }

    /// The most recently pushed sample, if any.
    pub fn latest(&self) -> Option<Duration> {
        self.samples.latest().copied()
    }

    /// Total samples ever pushed, including evicted ones.
    #[inline]
    pub fn total_pushed(&self) -> u64 {
        self.samples.total_pushed()
    }

    /// Records a sample: O(log buckets) to adjust the two affected counts,
    /// O(1) amortized in the window size.
    #[aqua::hot_path]
    pub fn push(&mut self, sample: Duration) {
        self.generation += 1;
        let idx = sample.as_nanos() / self.bucket.as_nanos();
        if let Some(evicted) = self.samples.push_evicting(sample) {
            let old_idx = evicted.as_nanos() / self.bucket.as_nanos();
            if let Some(count) = self.counts.get_mut(&old_idx) {
                *count -= 1;
                if *count == 0 {
                    self.counts.remove(&old_idx);
                }
            }
        }
        *self.counts.entry(idx).or_insert(0) += 1;
    }

    /// Removes all samples, keeping capacity and bucket width.
    pub fn clear(&mut self) {
        self.generation += 1;
        self.samples.clear();
        self.counts.clear();
    }

    /// Grows or shrinks the capacity, keeping the newest samples and
    /// rebuilding the counts to match.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.generation += 1;
        self.samples.set_capacity(capacity);
        self.counts.clear();
        let bucket_ns = self.bucket.as_nanos();
        for sample in self.samples.iter() {
            *self
                .counts
                .entry(sample.as_nanos() / bucket_ns)
                .or_insert(0) += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = SlidingWindow::<u32>::new(0);
    }

    #[test]
    fn fills_then_evicts_oldest() {
        let mut w = SlidingWindow::new(3);
        assert!(w.is_empty());
        w.push(1);
        w.push(2);
        assert!(!w.is_full());
        assert_eq!(w.oldest(), Some(&1));
        w.push(3);
        assert!(w.is_full());
        w.push(4);
        w.push(5);
        assert_eq!(w.iter().copied().collect::<Vec<_>>(), vec![3, 4, 5]);
        assert_eq!(w.latest(), Some(&5));
        assert_eq!(w.oldest(), Some(&3));
        assert_eq!(w.len(), 3);
        assert_eq!(w.total_pushed(), 5);
    }

    #[test]
    fn latest_and_oldest_on_partial_fill() {
        let mut w = SlidingWindow::new(5);
        assert_eq!(w.latest(), None);
        assert_eq!(w.oldest(), None);
        w.push(10);
        w.push(20);
        assert_eq!(w.latest(), Some(&20));
        assert_eq!(w.oldest(), Some(&10));
    }

    #[test]
    fn clear_resets_contents_not_capacity() {
        let mut w = SlidingWindow::new(2);
        w.extend([1, 2, 3]);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.capacity(), 2);
        w.push(9);
        assert_eq!(w.iter().copied().collect::<Vec<_>>(), vec![9]);
    }

    #[test]
    fn extend_wraps_like_repeated_push() {
        let mut w = SlidingWindow::new(4);
        w.extend(0..10);
        assert_eq!(w.iter().copied().collect::<Vec<_>>(), vec![6, 7, 8, 9]);
    }

    #[test]
    fn shrink_capacity_keeps_newest() {
        let mut w = SlidingWindow::new(5);
        w.extend([1, 2, 3, 4, 5, 6]); // retained: 2..=6
        w.set_capacity(3);
        assert_eq!(w.capacity(), 3);
        assert_eq!(w.iter().copied().collect::<Vec<_>>(), vec![4, 5, 6]);
        w.push(7);
        assert_eq!(w.iter().copied().collect::<Vec<_>>(), vec![5, 6, 7]);
    }

    #[test]
    fn grow_capacity_keeps_order() {
        let mut w = SlidingWindow::new(2);
        w.extend([1, 2, 3]); // retained: 2, 3
        w.set_capacity(4);
        w.push(4);
        w.push(5);
        assert_eq!(w.iter().copied().collect::<Vec<_>>(), vec![2, 3, 4, 5]);
    }

    #[test]
    fn iter_is_exact_size() {
        let mut w = SlidingWindow::new(3);
        w.extend([1, 2, 3, 4]);
        let it = w.iter();
        assert_eq!(it.len(), 3);
    }

    #[test]
    fn debug_shows_samples_in_order() {
        let mut w = SlidingWindow::new(2);
        w.extend([1, 2, 3]);
        let dbg = format!("{w:?}");
        assert!(dbg.contains("[2, 3]"), "unexpected debug output: {dbg}");
    }

    #[test]
    fn push_evicting_returns_displaced_sample() {
        let mut w = SlidingWindow::new(2);
        assert_eq!(w.push_evicting(1), None);
        assert_eq!(w.push_evicting(2), None);
        assert_eq!(w.push_evicting(3), Some(1));
        assert_eq!(w.push_evicting(4), Some(2));
        assert_eq!(w.iter().copied().collect::<Vec<_>>(), vec![3, 4]);
        assert_eq!(w.total_pushed(), 4);
    }

    mod bucketed {
        use super::*;

        fn ms(v: u64) -> Duration {
            Duration::from_millis(v)
        }

        /// The counts invariant, checked against a full rescan.
        fn assert_counts_consistent(w: &BucketedWindow) {
            let mut expected: BTreeMap<u64, u32> = BTreeMap::new();
            for s in w.samples().iter() {
                *expected
                    .entry(s.as_nanos() / w.bucket_width().as_nanos())
                    .or_insert(0) += 1;
            }
            let actual: BTreeMap<u64, u32> = w.bucket_counts().collect();
            assert_eq!(actual, expected);
        }

        #[test]
        #[should_panic(expected = "bucket must be positive")]
        fn zero_bucket_rejected() {
            let _ = BucketedWindow::new(3, Duration::ZERO);
        }

        #[test]
        fn counts_track_pushes_and_evictions() {
            let mut w = BucketedWindow::new(3, ms(1));
            for d in [ms(5), ms(5), ms(7), ms(5), ms(9), ms(9)] {
                w.push(d);
                assert_counts_consistent(&w);
            }
            assert_eq!(
                w.bucket_counts().collect::<Vec<_>>(),
                vec![(5, 1), (9, 2)],
                "retained samples are 5, 9, 9"
            );
            assert_eq!(w.len(), 3);
            assert_eq!(w.latest(), Some(ms(9)));
        }

        #[test]
        fn generation_moves_on_every_mutation() {
            let mut w = BucketedWindow::new(2, ms(1));
            let g0 = w.generation();
            w.push(ms(1));
            let g1 = w.generation();
            assert!(g1 > g0);
            w.clear();
            let g2 = w.generation();
            assert!(g2 > g1);
            w.set_capacity(4);
            assert!(w.generation() > g2);
        }

        #[test]
        fn clear_and_set_capacity_keep_counts_consistent() {
            let mut w = BucketedWindow::new(4, ms(2));
            for d in [ms(1), ms(2), ms(3), ms(8), ms(9)] {
                w.push(d);
            }
            assert_counts_consistent(&w);
            w.set_capacity(2);
            assert_counts_consistent(&w);
            assert_eq!(w.len(), 2, "newest two survive the shrink");
            w.clear();
            assert!(w.is_empty());
            assert_eq!(w.bucket_counts().count(), 0);
            w.push(ms(5));
            assert_counts_consistent(&w);
        }

        #[test]
        fn counts_feed_pmf_identically_to_samples() {
            use crate::pmf::Pmf;
            let mut w = BucketedWindow::new(10, ms(1));
            for i in 0..25u64 {
                w.push(ms(10 + (i * 7) % 13));
            }
            let from_counts = Pmf::from_bucket_counts(w.bucket_counts(), ms(1)).unwrap();
            let from_samples = Pmf::from_samples(w.samples().iter().copied(), ms(1)).unwrap();
            for t in 0..40 {
                assert!((from_counts.cdf(ms(t)) - from_samples.cdf(ms(t))).abs() < 1e-12);
            }
        }
    }
}
