//! Fixed-capacity sliding windows over recent measurements.
//!
//! The gateway information repository (paper §5.2) records "the service time
//! … for the most recent `l` requests serviced by that replica" and likewise
//! for the queuing delay. `l` is "chosen so that it includes a reasonable
//! number of recent requests but eliminates obsolete measurements". The
//! paper's experiments use `l ∈ {5, 10, 20}` (Figure 3) and `l = 5` for the
//! end-to-end runs.

use core::fmt;

/// A bounded ring buffer that keeps only the most recent `capacity` samples.
///
/// Pushing into a full window evicts the oldest sample. Iteration order is
/// oldest → newest.
///
/// # Examples
///
/// ```
/// use aqua_core::window::SlidingWindow;
///
/// let mut w = SlidingWindow::new(3);
/// for x in [1, 2, 3, 4] {
///     w.push(x);
/// }
/// assert_eq!(w.iter().copied().collect::<Vec<_>>(), vec![2, 3, 4]);
/// assert_eq!(w.latest(), Some(&4));
/// ```
#[derive(Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SlidingWindow<T> {
    samples: Vec<T>,
    capacity: usize,
    /// Index of the oldest sample once the buffer has wrapped.
    head: usize,
    /// Total number of samples ever pushed (for diagnostics).
    pushed: u64,
}

impl<T> SlidingWindow<T> {
    /// Creates an empty window holding at most `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero: a zero-length history cannot support
    /// the relative-frequency estimate of §5.3.1.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "sliding window capacity must be positive");
        SlidingWindow {
            samples: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            pushed: 0,
        }
    }

    /// The maximum number of samples retained (`l` in the paper).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The number of samples currently held.
    #[inline]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if no samples have been recorded yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Returns `true` once the window holds `capacity` samples.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.samples.len() == self.capacity
    }

    /// Total number of samples ever pushed, including evicted ones.
    #[inline]
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Records a new sample, evicting the oldest if the window is full.
    pub fn push(&mut self, sample: T) {
        self.pushed += 1;
        if self.samples.len() < self.capacity {
            self.samples.push(sample);
        } else {
            self.samples[self.head] = sample;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// The most recently pushed sample, if any.
    pub fn latest(&self) -> Option<&T> {
        if self.samples.is_empty() {
            None
        } else if self.samples.len() < self.capacity {
            self.samples.last()
        } else {
            let idx = (self.head + self.capacity - 1) % self.capacity;
            Some(&self.samples[idx])
        }
    }

    /// The oldest retained sample, if any.
    pub fn oldest(&self) -> Option<&T> {
        if self.samples.is_empty() {
            None
        } else if self.samples.len() < self.capacity {
            self.samples.first()
        } else {
            Some(&self.samples[self.head])
        }
    }

    /// Iterates over retained samples from oldest to newest.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter {
            window: self,
            pos: 0,
        }
    }

    /// Removes all samples but keeps the capacity.
    pub fn clear(&mut self) {
        self.samples.clear();
        self.head = 0;
    }

    /// Grows or shrinks the capacity, keeping the newest samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn set_capacity(&mut self, capacity: usize) {
        assert!(capacity > 0, "sliding window capacity must be positive");
        let kept: Vec<T> = {
            let mut ordered: Vec<T> = Vec::with_capacity(self.samples.len());
            // Drain in oldest→newest order.
            let len = self.samples.len();
            let head = self.head;
            let mut tmp: Vec<Option<T>> = self.samples.drain(..).map(Some).collect();
            for i in 0..len {
                let idx = if len == self.capacity {
                    (head + i) % len
                } else {
                    i
                };
                ordered.push(tmp[idx].take().expect("each slot drained once"));
            }
            let skip = ordered.len().saturating_sub(capacity);
            ordered.drain(..skip);
            ordered
        };
        self.capacity = capacity;
        self.samples = kept;
        self.head = 0;
    }
}

impl<T: fmt::Debug> fmt::Debug for SlidingWindow<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SlidingWindow")
            .field("capacity", &self.capacity)
            .field("samples", &self.iter().collect::<Vec<_>>())
            .finish()
    }
}

impl<'a, T> IntoIterator for &'a SlidingWindow<T> {
    type Item = &'a T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

impl<T> Extend<T> for SlidingWindow<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for sample in iter {
            self.push(sample);
        }
    }
}

/// Iterator over a [`SlidingWindow`] from oldest to newest sample.
#[derive(Debug)]
pub struct Iter<'a, T> {
    window: &'a SlidingWindow<T>,
    pos: usize,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        if self.pos >= self.window.samples.len() {
            return None;
        }
        let idx = if self.window.samples.len() == self.window.capacity {
            (self.window.head + self.pos) % self.window.capacity
        } else {
            self.pos
        };
        self.pos += 1;
        Some(&self.window.samples[idx])
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.window.samples.len() - self.pos;
        (remaining, Some(remaining))
    }
}

impl<T> ExactSizeIterator for Iter<'_, T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = SlidingWindow::<u32>::new(0);
    }

    #[test]
    fn fills_then_evicts_oldest() {
        let mut w = SlidingWindow::new(3);
        assert!(w.is_empty());
        w.push(1);
        w.push(2);
        assert!(!w.is_full());
        assert_eq!(w.oldest(), Some(&1));
        w.push(3);
        assert!(w.is_full());
        w.push(4);
        w.push(5);
        assert_eq!(w.iter().copied().collect::<Vec<_>>(), vec![3, 4, 5]);
        assert_eq!(w.latest(), Some(&5));
        assert_eq!(w.oldest(), Some(&3));
        assert_eq!(w.len(), 3);
        assert_eq!(w.total_pushed(), 5);
    }

    #[test]
    fn latest_and_oldest_on_partial_fill() {
        let mut w = SlidingWindow::new(5);
        assert_eq!(w.latest(), None);
        assert_eq!(w.oldest(), None);
        w.push(10);
        w.push(20);
        assert_eq!(w.latest(), Some(&20));
        assert_eq!(w.oldest(), Some(&10));
    }

    #[test]
    fn clear_resets_contents_not_capacity() {
        let mut w = SlidingWindow::new(2);
        w.extend([1, 2, 3]);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.capacity(), 2);
        w.push(9);
        assert_eq!(w.iter().copied().collect::<Vec<_>>(), vec![9]);
    }

    #[test]
    fn extend_wraps_like_repeated_push() {
        let mut w = SlidingWindow::new(4);
        w.extend(0..10);
        assert_eq!(w.iter().copied().collect::<Vec<_>>(), vec![6, 7, 8, 9]);
    }

    #[test]
    fn shrink_capacity_keeps_newest() {
        let mut w = SlidingWindow::new(5);
        w.extend([1, 2, 3, 4, 5, 6]); // retained: 2..=6
        w.set_capacity(3);
        assert_eq!(w.capacity(), 3);
        assert_eq!(w.iter().copied().collect::<Vec<_>>(), vec![4, 5, 6]);
        w.push(7);
        assert_eq!(w.iter().copied().collect::<Vec<_>>(), vec![5, 6, 7]);
    }

    #[test]
    fn grow_capacity_keeps_order() {
        let mut w = SlidingWindow::new(2);
        w.extend([1, 2, 3]); // retained: 2, 3
        w.set_capacity(4);
        w.push(4);
        w.push(5);
        assert_eq!(w.iter().copied().collect::<Vec<_>>(), vec![2, 3, 4, 5]);
    }

    #[test]
    fn iter_is_exact_size() {
        let mut w = SlidingWindow::new(3);
        w.extend([1, 2, 3, 4]);
        let it = w.iter();
        assert_eq!(it.len(), 3);
    }

    #[test]
    fn debug_shows_samples_in_order() {
        let mut w = SlidingWindow::new(2);
        w.extend([1, 2, 3]);
        let dbg = format!("{w:?}");
        assert!(dbg.contains("[2, 3]"), "unexpected debug output: {dbg}");
    }
}
