//! The gateway information repository (§5.2).
//!
//! Each timing fault handler keeps a repository **local to the client
//! gateway** that stores, for every replica offering the handler's service:
//!
//! * the current number of outstanding requests in the replica's queue,
//! * the most recently measured two-way gateway-to-gateway delay,
//! * a *service time vector* and a *queuing delay vector* holding the
//!   measurements for the most recent `l` requests (the sliding window).
//!
//! The repository is updated from the performance data piggybacked on every
//! reply and from the updates that replicas push to their subscribers
//! (§5.4.1), and entries are removed when the group-membership layer reports
//! a crash (§5.4).

use std::collections::BTreeMap;
use std::fmt;

use crate::qos::ReplicaId;
use crate::time::{Duration, Instant};
use crate::window::{BucketedWindow, SlidingWindow};

/// Default bucket width for the incrementally maintained window counts:
/// matches `ModelConfig::default().bucket` (1 ms, ≤ 1% of the deadlines
/// studied), so the default model builds its pmfs straight from the counts.
pub const DEFAULT_BUCKET: Duration = Duration::from_millis(1);

/// Identifier of a service method, for the multi-interface extension
/// (paper §8, extension 1).
///
/// Handlers that do not classify performance data per method use
/// [`MethodId::DEFAULT`] everywhere, which reproduces the paper's
/// single-method behaviour exactly.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MethodId(u32);

impl MethodId {
    /// The single method of a paper-style single-interface service.
    pub const DEFAULT: MethodId = MethodId(0);

    /// Creates a method id from a raw index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        MethodId(index)
    }

    /// The raw index.
    #[inline]
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl Default for MethodId {
    fn default() -> Self {
        MethodId::DEFAULT
    }
}

impl fmt::Debug for MethodId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

impl fmt::Display for MethodId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// The performance data a replica publishes after servicing a request:
/// piggybacked on the reply and pushed to all subscribers (§5.4.1).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PerfReport {
    /// Service duration `ts` measured around the application upcall.
    pub service_time: Duration,
    /// Queuing delay `tq = t3 − t2` spent in the FIFO request queue.
    pub queuing_delay: Duration,
    /// Number of outstanding requests left in the replica's queue.
    pub queue_len: u32,
    /// Which method was invoked (multi-interface extension).
    pub method: MethodId,
}

impl PerfReport {
    /// Convenience constructor for single-method services.
    pub fn new(service_time: Duration, queuing_delay: Duration, queue_len: u32) -> Self {
        PerfReport {
            service_time,
            queuing_delay,
            queue_len,
            method: MethodId::DEFAULT,
        }
    }

    /// Returns a copy tagged with a method id.
    #[must_use]
    pub fn with_method(mut self, method: MethodId) -> Self {
        self.method = method;
        self
    }
}

/// Per-method measurement history: the service time and queuing delay
/// vectors of §5.2, kept with incrementally maintained bucket counts so the
/// model can rebuild its pmfs in O(distinct buckets) instead of O(l).
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MethodHistory {
    service_times: BucketedWindow,
    queuing_delays: BucketedWindow,
    /// Bumped on every recorded report; the model cache's per-method
    /// invalidation key.
    generation: u64,
}

impl MethodHistory {
    fn new(window: usize, bucket: Duration) -> Self {
        MethodHistory {
            service_times: BucketedWindow::new(window, bucket),
            queuing_delays: BucketedWindow::new(window, bucket),
            generation: 0,
        }
    }

    fn record(&mut self, service_time: Duration, queuing_delay: Duration) {
        self.generation += 1;
        self.service_times.push(service_time);
        self.queuing_delays.push(queuing_delay);
    }

    /// The recorded service times, oldest first.
    pub fn service_times(&self) -> &SlidingWindow<Duration> {
        self.service_times.samples()
    }

    /// The recorded queuing delays, oldest first.
    pub fn queuing_delays(&self) -> &SlidingWindow<Duration> {
        self.queuing_delays.samples()
    }

    /// The service-time window with its incremental bucket counts.
    pub fn service_window(&self) -> &BucketedWindow {
        &self.service_times
    }

    /// The queuing-delay window with its incremental bucket counts.
    pub fn queuing_window(&self) -> &BucketedWindow {
        &self.queuing_delays
    }

    /// Monotone counter bumped on every report recorded for this method.
    /// While it is unchanged, pmfs derived from this history are still
    /// valid (the cache-invalidation contract).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of requests recorded (capped at the window size).
    pub fn len(&self) -> usize {
        self.service_times.len()
    }

    /// Returns `true` if no measurements have been recorded.
    pub fn is_empty(&self) -> bool {
        self.service_times.is_empty()
    }
}

/// Everything the repository knows about one replica.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ReplicaStats {
    histories: BTreeMap<MethodId, MethodHistory>,
    gateway_delays: BucketedWindow,
    outstanding: u32,
    last_update: Option<Instant>,
    window: usize,
    bucket: Duration,
    probation: u32,
    /// Repository-global insertion stamp: a replica that is removed and
    /// later re-inserted gets a **different** epoch, so cache entries keyed
    /// on `(epoch, generation)` can never confuse the fresh entry's
    /// restarted generations with the old entry's (the ABA hazard).
    epoch: u64,
    /// Bumped on every perf report for *any* method and on probation
    /// transitions: the aggregate-scope invalidation key (and the carrier
    /// of `outstanding`/probation changes that per-method generations
    /// don't see).
    perf_generation: u64,
}

impl ReplicaStats {
    fn new(window: usize, bucket: Duration, epoch: u64) -> Self {
        ReplicaStats {
            histories: BTreeMap::new(),
            gateway_delays: BucketedWindow::new(window, bucket),
            outstanding: 0,
            last_update: None,
            window,
            bucket,
            probation: 0,
            epoch,
            perf_generation: 0,
        }
    }

    /// History for one method, if any measurement has been recorded for it.
    pub fn history(&self, method: MethodId) -> Option<&MethodHistory> {
        self.histories.get(&method)
    }

    /// Iterates over `(method, history)` pairs with recorded data.
    pub fn histories(&self) -> impl Iterator<Item = (MethodId, &MethodHistory)> {
        self.histories.iter().map(|(m, h)| (*m, h))
    }

    /// The most recently measured two-way gateway-to-gateway delay `td`.
    pub fn last_gateway_delay(&self) -> Option<Duration> {
        self.gateway_delays.latest()
    }

    /// The recent history of gateway delays (extension A4; the paper keeps
    /// only the last value but notes the windowed variant is "simple").
    pub fn gateway_delays(&self) -> &SlidingWindow<Duration> {
        self.gateway_delays.samples()
    }

    /// The gateway-delay window with its incremental bucket counts.
    pub fn gateway_delay_window(&self) -> &BucketedWindow {
        &self.gateway_delays
    }

    /// Monotone counter for the gateway-delay slot: moves exactly when a
    /// delay measurement is recorded.
    pub fn delay_generation(&self) -> u64 {
        self.gateway_delays.generation()
    }

    /// Monotone counter bumped by every perf report (any method) and every
    /// probation transition — see the field docs.
    pub fn perf_generation(&self) -> u64 {
        self.perf_generation
    }

    /// The repository-global insertion stamp of this entry (ABA guard for
    /// generation-keyed caches).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The replica's current number of outstanding queued requests.
    pub fn outstanding(&self) -> u32 {
        self.outstanding
    }

    /// When this entry last changed, if ever.
    pub fn last_update(&self) -> Option<Instant> {
        self.last_update
    }

    /// Returns `true` once the entry has at least one service-time sample,
    /// one queuing-delay sample, and one gateway-delay measurement — the
    /// minimum for the model of §5.3.1 to produce a prediction.
    pub fn is_warm(&self) -> bool {
        self.histories.values().any(|h| !h.is_empty()) && !self.gateway_delays.is_empty()
    }

    /// Returns `true` while the replica is on probation: it recently
    /// (re)joined and fewer than the required number of fresh samples have
    /// arrived, so its history is not yet trustworthy and the selection
    /// strategies skip it (it still receives shadow traffic to warm up).
    pub fn is_on_probation(&self) -> bool {
        self.probation > 0
    }

    /// Fresh samples still needed before the replica leaves probation.
    pub fn probation_remaining(&self) -> u32 {
        self.probation
    }

    fn record_perf(&mut self, report: PerfReport, now: Instant) {
        let window = self.window;
        let bucket = self.bucket;
        self.perf_generation += 1;
        self.probation = self.probation.saturating_sub(1);
        let history = self
            .histories
            .entry(report.method)
            .or_insert_with(|| MethodHistory::new(window, bucket));
        history.record(report.service_time, report.queuing_delay);
        self.outstanding = report.queue_len;
        self.last_update = Some(now);
    }

    fn record_gateway_delay(&mut self, delay: Duration, now: Instant) {
        self.gateway_delays.push(delay);
        self.last_update = Some(now);
    }

    fn put_on_probation(&mut self, samples: u32) {
        self.perf_generation += 1;
        self.probation = samples;
    }
}

/// The gateway information repository of §5.2: one entry per replica of the
/// service the owning handler communicates with.
///
/// # Examples
///
/// ```
/// use aqua_core::repository::{InfoRepository, PerfReport};
/// use aqua_core::qos::ReplicaId;
/// use aqua_core::time::{Duration, Instant};
///
/// let mut repo = InfoRepository::new(5);
/// let r0 = ReplicaId::new(0);
/// repo.insert_replica(r0);
/// repo.record_perf(
///     r0,
///     PerfReport::new(Duration::from_millis(100), Duration::from_millis(2), 1),
///     Instant::EPOCH,
/// );
/// repo.record_gateway_delay(r0, Duration::from_millis(3), Instant::EPOCH);
/// assert!(repo.stats(r0).unwrap().is_warm());
/// ```
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct InfoRepository {
    replicas: BTreeMap<ReplicaId, ReplicaStats>,
    window: usize,
    bucket: Duration,
    /// Monotone insertion counter: every entry creation takes the next
    /// value as its [`ReplicaStats::epoch`], so a removed-then-re-added
    /// replica is distinguishable from the entry it replaced.
    next_epoch: u64,
}

impl InfoRepository {
    /// Creates an empty repository whose sliding windows hold `window`
    /// samples (`l` in the paper; the experiments use 5), counting samples
    /// at the [`DEFAULT_BUCKET`] (1 ms) granularity.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        InfoRepository::with_bucket(window, DEFAULT_BUCKET)
    }

    /// Like [`InfoRepository::new`] with an explicit count-bucket width.
    /// Pick the model's `ModelConfig::bucket` so pmfs build straight from
    /// the incremental counts (a mismatched model falls back to rescanning
    /// the raw samples — correct, just slower).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero or `bucket` is zero.
    pub fn with_bucket(window: usize, bucket: Duration) -> Self {
        assert!(window > 0, "repository window must be positive");
        assert!(!bucket.is_zero(), "repository bucket must be positive");
        InfoRepository {
            replicas: BTreeMap::new(),
            window,
            bucket,
            next_epoch: 0,
        }
    }

    /// The sliding-window size `l`.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The count-bucket width of the replica windows.
    pub fn bucket(&self) -> Duration {
        self.bucket
    }

    /// Registers a replica (on service discovery or a join view change).
    ///
    /// Returns `true` if the replica was not already present. Existing
    /// history is preserved when re-inserting a known replica.
    pub fn insert_replica(&mut self, id: ReplicaId) -> bool {
        let window = self.window;
        let bucket = self.bucket;
        let next_epoch = &mut self.next_epoch;
        let mut inserted = false;
        self.replicas.entry(id).or_insert_with(|| {
            inserted = true;
            *next_epoch += 1;
            ReplicaStats::new(window, bucket, *next_epoch)
        });
        inserted
    }

    /// Puts `id` on probation for `samples` fresh reports, inserting a blank
    /// entry if the replica is unknown (the rejoin case: eviction dropped
    /// its history, so a recovered replica starts from scratch).
    ///
    /// While on probation the replica is excluded from
    /// [`InfoRepository::selectable`] — the strategies will not *trust* it —
    /// but the handler keeps multicasting to it so the `l` samples that end
    /// the probation actually arrive.
    pub fn set_probation(&mut self, id: ReplicaId, samples: u32) {
        let window = self.window;
        let bucket = self.bucket;
        let next_epoch = &mut self.next_epoch;
        let stats = self.replicas.entry(id).or_insert_with(|| {
            *next_epoch += 1;
            ReplicaStats::new(window, bucket, *next_epoch)
        });
        stats.put_on_probation(samples);
    }

    /// Removes a replica (on a crash view change, §5.4): it "will therefore
    /// not be considered in the selection process for future requests".
    ///
    /// Returns the removed entry, if the replica was known.
    pub fn remove_replica(&mut self, id: ReplicaId) -> Option<ReplicaStats> {
        self.replicas.remove(&id)
    }

    /// Installs a fully-built stats entry for `id`, replacing any existing
    /// one. This is the merge primitive for sharded ingestion: per-replica
    /// shards record into their own repositories, and a publisher copies
    /// the refreshed entries into the merged view it is about to publish.
    ///
    /// The insertion counter is advanced past the entry's epoch so a later
    /// [`InfoRepository::insert_replica`] can never mint a duplicate epoch.
    pub fn insert_stats(&mut self, id: ReplicaId, stats: ReplicaStats) {
        self.next_epoch = self.next_epoch.max(stats.epoch());
        self.replicas.insert(id, stats);
    }

    /// Replaces the membership with `view`, dropping state for departed
    /// replicas and creating blank entries for new ones.
    pub fn apply_view<I>(&mut self, view: I)
    where
        I: IntoIterator<Item = ReplicaId>,
    {
        let members: Vec<ReplicaId> = view.into_iter().collect();
        self.replicas.retain(|id, _| members.contains(id));
        for id in members {
            self.insert_replica(id);
        }
    }

    /// Whether the repository has an entry for `id`.
    pub fn contains(&self, id: ReplicaId) -> bool {
        self.replicas.contains_key(&id)
    }

    /// Number of replicas currently known.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Returns `true` if no replicas are known.
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// The replica ids in deterministic (ascending) order.
    pub fn replica_ids(&self) -> impl Iterator<Item = ReplicaId> + '_ {
        self.replicas.keys().copied()
    }

    /// The stats entry for one replica.
    pub fn stats(&self, id: ReplicaId) -> Option<&ReplicaStats> {
        self.replicas.get(&id)
    }

    /// Iterates over `(replica, stats)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ReplicaId, &ReplicaStats)> {
        self.replicas.iter().map(|(id, s)| (*id, s))
    }

    /// Like [`InfoRepository::iter`], but skips replicas on probation: the
    /// candidates a selection strategy may trust.
    pub fn selectable(&self) -> impl Iterator<Item = (ReplicaId, &ReplicaStats)> {
        self.iter().filter(|(_, s)| !s.is_on_probation())
    }

    /// The ids of replicas not on probation, in ascending order.
    pub fn selectable_ids(&self) -> impl Iterator<Item = ReplicaId> + '_ {
        self.selectable().map(|(id, _)| id)
    }

    /// Records a performance report for `id` (ignored for unknown replicas,
    /// which can happen when an update races a crash view change).
    pub fn record_perf(&mut self, id: ReplicaId, report: PerfReport, now: Instant) {
        if let Some(stats) = self.replicas.get_mut(&id) {
            stats.record_perf(report, now);
        }
    }

    /// Records a measured two-way gateway-to-gateway delay for `id`.
    pub fn record_gateway_delay(&mut self, id: ReplicaId, delay: Duration, now: Instant) {
        if let Some(stats) = self.replicas.get_mut(&id) {
            stats.record_gateway_delay(delay, now);
        }
    }

    /// Returns `true` if every selectable replica has enough data for the
    /// model.
    ///
    /// The paper's handler multicasts to **all** replicas until performance
    /// updates have initialized the repository (§5.4.1); this predicate
    /// drives that cold-start rule. Replicas on probation are ignored: they
    /// are warmed by shadow traffic, not by falling back to full multicast.
    pub fn all_warm(&self) -> bool {
        let mut any = false;
        for (_, stats) in self.selectable() {
            if !stats.is_warm() {
                return false;
            }
            any = true;
        }
        any
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn report(ts: u64, tq: u64, qlen: u32) -> PerfReport {
        PerfReport::new(ms(ts), ms(tq), qlen)
    }

    #[test]
    fn insert_and_remove_replicas() {
        let mut repo = InfoRepository::new(3);
        let a = ReplicaId::new(1);
        let b = ReplicaId::new(2);
        assert!(repo.insert_replica(a));
        assert!(!repo.insert_replica(a), "double insert is idempotent");
        assert!(repo.insert_replica(b));
        assert_eq!(repo.len(), 2);
        assert!(repo.contains(a));
        assert!(repo.remove_replica(a).is_some());
        assert!(!repo.contains(a));
        assert!(repo.remove_replica(a).is_none());
    }

    #[test]
    fn perf_updates_fill_windows_and_queue_len() {
        let mut repo = InfoRepository::new(2);
        let r = ReplicaId::new(0);
        repo.insert_replica(r);
        let t = Instant::from_millis(10);
        repo.record_perf(r, report(100, 5, 3), t);
        repo.record_perf(r, report(110, 6, 2), t + ms(1));
        repo.record_perf(r, report(120, 7, 1), t + ms(2));
        let stats = repo.stats(r).unwrap();
        let hist = stats.history(MethodId::DEFAULT).unwrap();
        assert_eq!(
            hist.service_times().iter().copied().collect::<Vec<_>>(),
            vec![ms(110), ms(120)],
            "window of 2 keeps only the newest two"
        );
        assert_eq!(
            hist.queuing_delays().iter().copied().collect::<Vec<_>>(),
            vec![ms(6), ms(7)]
        );
        assert_eq!(stats.outstanding(), 1, "queue length is latest value");
        assert_eq!(stats.last_update(), Some(t + ms(2)));
    }

    #[test]
    fn gateway_delay_keeps_latest_and_history() {
        let mut repo = InfoRepository::new(3);
        let r = ReplicaId::new(0);
        repo.insert_replica(r);
        repo.record_gateway_delay(r, ms(4), Instant::EPOCH);
        repo.record_gateway_delay(r, ms(6), Instant::from_millis(1));
        let stats = repo.stats(r).unwrap();
        assert_eq!(stats.last_gateway_delay(), Some(ms(6)));
        assert_eq!(stats.gateway_delays().len(), 2);
    }

    #[test]
    fn warm_requires_perf_and_delay() {
        let mut repo = InfoRepository::new(2);
        let r = ReplicaId::new(0);
        repo.insert_replica(r);
        assert!(!repo.stats(r).unwrap().is_warm());
        repo.record_perf(r, report(100, 1, 0), Instant::EPOCH);
        assert!(!repo.stats(r).unwrap().is_warm(), "missing delay");
        repo.record_gateway_delay(r, ms(3), Instant::EPOCH);
        assert!(repo.stats(r).unwrap().is_warm());
        assert!(repo.all_warm());
    }

    #[test]
    fn all_warm_is_false_for_empty_repository() {
        let repo = InfoRepository::new(2);
        assert!(!repo.all_warm());
    }

    #[test]
    fn updates_for_unknown_replicas_are_dropped() {
        let mut repo = InfoRepository::new(2);
        let ghost = ReplicaId::new(9);
        repo.record_perf(ghost, report(1, 1, 1), Instant::EPOCH);
        repo.record_gateway_delay(ghost, ms(1), Instant::EPOCH);
        assert!(!repo.contains(ghost));
    }

    #[test]
    fn apply_view_adds_and_removes() {
        let mut repo = InfoRepository::new(2);
        let a = ReplicaId::new(1);
        let b = ReplicaId::new(2);
        let c = ReplicaId::new(3);
        repo.insert_replica(a);
        repo.insert_replica(b);
        repo.record_perf(a, report(10, 0, 0), Instant::EPOCH);
        repo.apply_view([a, c]);
        assert!(repo.contains(a) && repo.contains(c) && !repo.contains(b));
        assert!(
            repo.stats(a).unwrap().history(MethodId::DEFAULT).is_some(),
            "surviving members keep their history"
        );
    }

    #[test]
    fn per_method_histories_are_separate() {
        let mut repo = InfoRepository::new(4);
        let r = ReplicaId::new(0);
        repo.insert_replica(r);
        let fast = MethodId::new(1);
        let slow = MethodId::new(2);
        repo.record_perf(r, report(10, 0, 0).with_method(fast), Instant::EPOCH);
        repo.record_perf(r, report(500, 0, 0).with_method(slow), Instant::EPOCH);
        let stats = repo.stats(r).unwrap();
        assert_eq!(stats.histories().count(), 2);
        assert_eq!(
            stats.history(fast).unwrap().service_times().latest(),
            Some(&ms(10))
        );
        assert_eq!(
            stats.history(slow).unwrap().service_times().latest(),
            Some(&ms(500))
        );
        assert!(stats.history(MethodId::DEFAULT).is_none());
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = InfoRepository::new(0);
    }

    #[test]
    fn probation_clears_after_enough_fresh_samples() {
        let mut repo = InfoRepository::new(3);
        let r = ReplicaId::new(4);
        repo.set_probation(r, 3);
        assert!(repo.contains(r), "probation inserts unknown replicas");
        assert!(repo.stats(r).unwrap().is_on_probation());
        assert_eq!(repo.stats(r).unwrap().probation_remaining(), 3);
        assert_eq!(repo.selectable_ids().count(), 0);
        for i in 0..3 {
            repo.record_perf(r, report(50, 1, 0), Instant::from_millis(i));
        }
        assert!(!repo.stats(r).unwrap().is_on_probation());
        assert_eq!(repo.selectable_ids().collect::<Vec<_>>(), vec![r]);
    }

    #[test]
    fn probation_preserves_existing_entries_and_history() {
        let mut repo = InfoRepository::new(2);
        let r = ReplicaId::new(0);
        repo.insert_replica(r);
        repo.record_perf(r, report(10, 0, 0), Instant::EPOCH);
        repo.set_probation(r, 2);
        assert!(
            repo.stats(r).unwrap().history(MethodId::DEFAULT).is_some(),
            "probation does not wipe history"
        );
    }

    #[test]
    fn all_warm_ignores_probation_replicas() {
        let mut repo = InfoRepository::new(2);
        let a = ReplicaId::new(0);
        let b = ReplicaId::new(1);
        repo.insert_replica(a);
        repo.record_perf(a, report(10, 0, 0), Instant::EPOCH);
        repo.record_gateway_delay(a, ms(1), Instant::EPOCH);
        assert!(repo.all_warm());
        // A cold rejoiner on probation must not push the handler back into
        // full cold-start multicast…
        repo.set_probation(b, 5);
        assert!(repo.all_warm());
        // …but a repository with only probation entries is not warm.
        repo.remove_replica(a);
        assert!(!repo.all_warm());
    }

    #[test]
    fn generations_move_exactly_with_their_slot() {
        let mut repo = InfoRepository::new(3);
        let r = ReplicaId::new(0);
        repo.insert_replica(r);
        let (g_perf0, g_delay0) = {
            let s = repo.stats(r).unwrap();
            (s.perf_generation(), s.delay_generation())
        };
        repo.record_perf(r, report(10, 1, 0), Instant::EPOCH);
        {
            let s = repo.stats(r).unwrap();
            assert!(s.perf_generation() > g_perf0, "perf bumps perf slot");
            assert_eq!(s.delay_generation(), g_delay0, "perf leaves delay slot");
            assert_eq!(s.history(MethodId::DEFAULT).unwrap().generation(), 1);
        }
        let g_perf1 = repo.stats(r).unwrap().perf_generation();
        repo.record_gateway_delay(r, ms(2), Instant::EPOCH);
        {
            let s = repo.stats(r).unwrap();
            assert!(s.delay_generation() > g_delay0, "delay bumps delay slot");
            assert_eq!(s.perf_generation(), g_perf1, "delay leaves perf slot");
        }
        // A report for another method moves the per-replica perf slot but
        // not the first method's history generation.
        repo.record_perf(
            r,
            report(10, 1, 2).with_method(MethodId::new(7)),
            Instant::EPOCH,
        );
        let s = repo.stats(r).unwrap();
        assert!(s.perf_generation() > g_perf1);
        assert_eq!(s.history(MethodId::DEFAULT).unwrap().generation(), 1);
    }

    #[test]
    fn probation_transitions_bump_perf_generation() {
        let mut repo = InfoRepository::new(2);
        let r = ReplicaId::new(0);
        repo.insert_replica(r);
        let g0 = repo.stats(r).unwrap().perf_generation();
        repo.set_probation(r, 2);
        assert!(repo.stats(r).unwrap().perf_generation() > g0);
    }

    #[test]
    fn epoch_distinguishes_reinserted_replicas() {
        let mut repo = InfoRepository::new(2);
        let r = ReplicaId::new(3);
        repo.insert_replica(r);
        let first_epoch = repo.stats(r).unwrap().epoch();
        repo.remove_replica(r);
        repo.insert_replica(r);
        let second_epoch = repo.stats(r).unwrap().epoch();
        assert_ne!(
            first_epoch, second_epoch,
            "a re-added replica must not look like the entry it replaced"
        );
        // Probation-driven insertion of an unknown replica stamps one too.
        let p = ReplicaId::new(9);
        repo.set_probation(p, 1);
        assert!(repo.stats(p).unwrap().epoch() > second_epoch);
    }

    #[test]
    fn method_windows_expose_consistent_counts() {
        let mut repo = InfoRepository::new(4);
        let r = ReplicaId::new(0);
        repo.insert_replica(r);
        for ts in [10u64, 10, 20, 30, 30] {
            repo.record_perf(r, report(ts, 1, 0), Instant::EPOCH);
        }
        let hist = repo.stats(r).unwrap().history(MethodId::DEFAULT).unwrap();
        // Window of 4 keeps 10, 20, 30, 30; 1 ms buckets.
        assert_eq!(
            hist.service_window().bucket_counts().collect::<Vec<_>>(),
            vec![(10, 1), (20, 1), (30, 2)]
        );
        assert_eq!(
            hist.queuing_window().bucket_counts().collect::<Vec<_>>(),
            vec![(1, 4)]
        );
    }

    #[test]
    fn replica_ids_are_sorted() {
        let mut repo = InfoRepository::new(1);
        for i in [5u64, 1, 3] {
            repo.insert_replica(ReplicaId::new(i));
        }
        let ids: Vec<u64> = repo.replica_ids().map(ReplicaId::index).collect();
        assert_eq!(ids, vec![1, 3, 5]);
    }
}
