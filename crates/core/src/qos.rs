//! Client quality-of-service specifications.
//!
//! A client "expresses its requirements as a quality of service (QoS)
//! specification … the time by which the client wants to receive a response
//! after it transmits its request to this service, and the minimum
//! probability with which it wants this time constraint to be met" (§4).

use core::fmt;

use crate::time::Duration;

/// Identifier of a server replica inside an AQuA replication group.
///
/// # Examples
///
/// ```
/// use aqua_core::qos::ReplicaId;
///
/// let r = ReplicaId::new(3);
/// assert_eq!(r.to_string(), "r3");
/// assert_eq!(r.index(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ReplicaId(u64);

impl ReplicaId {
    /// Creates a replica id from a raw index.
    #[inline]
    pub const fn new(index: u64) -> Self {
        ReplicaId(index)
    }

    /// The raw index.
    #[inline]
    pub const fn index(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<u64> for ReplicaId {
    fn from(index: u64) -> Self {
        ReplicaId(index)
    }
}

/// Errors from validating a [`QosSpec`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QosError {
    /// The requested deadline was zero.
    ZeroDeadline,
    /// The requested probability was outside `[0, 1]` or not finite.
    InvalidProbability(f64),
}

impl fmt::Display for QosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QosError::ZeroDeadline => write!(f, "qos deadline must be positive"),
            QosError::InvalidProbability(p) => {
                write!(f, "qos probability must be within [0, 1], got {p}")
            }
        }
    }
}

impl std::error::Error for QosError {}

/// A client's timing requirement: a deadline `t` and the minimum probability
/// `Pc(t)` with which responses must meet it.
///
/// The paper's experiments use deadlines of 100–200 ms with probabilities
/// 0.9, 0.5, and 0 (the worst-case study).
///
/// # Examples
///
/// ```
/// use aqua_core::qos::QosSpec;
/// use aqua_core::time::Duration;
///
/// # fn main() -> Result<(), aqua_core::qos::QosError> {
/// let qos = QosSpec::new(Duration::from_millis(200), 0.9)?;
/// assert_eq!(qos.deadline(), Duration::from_millis(200));
/// assert_eq!(qos.min_probability(), 0.9);
/// // A timing failure rate above 1 − Pc violates the specification.
/// assert_eq!(qos.max_failure_probability(), 0.09999999999999998);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct QosSpec {
    deadline: Duration,
    min_probability: f64,
}

impl QosSpec {
    /// Creates a validated QoS specification.
    ///
    /// # Errors
    ///
    /// Returns [`QosError::ZeroDeadline`] for a zero deadline, and
    /// [`QosError::InvalidProbability`] for a probability outside `[0, 1]`.
    pub fn new(deadline: Duration, min_probability: f64) -> Result<Self, QosError> {
        if deadline.is_zero() {
            return Err(QosError::ZeroDeadline);
        }
        if !min_probability.is_finite() || !(0.0..=1.0).contains(&min_probability) {
            return Err(QosError::InvalidProbability(min_probability));
        }
        Ok(QosSpec {
            deadline,
            min_probability,
        })
    }

    /// The response-time deadline `t`.
    #[inline]
    pub fn deadline(self) -> Duration {
        self.deadline
    }

    /// The minimum probability `Pc(t)` of timely responses.
    #[inline]
    pub fn min_probability(self) -> f64 {
        self.min_probability
    }

    /// The highest tolerable timing-failure probability, `1 − Pc(t)`.
    #[inline]
    pub fn max_failure_probability(self) -> f64 {
        1.0 - self.min_probability
    }

    /// Returns a copy with a different deadline (runtime renegotiation, §4).
    ///
    /// # Errors
    ///
    /// Returns [`QosError::ZeroDeadline`] for a zero deadline.
    pub fn with_deadline(self, deadline: Duration) -> Result<Self, QosError> {
        QosSpec::new(deadline, self.min_probability)
    }

    /// Returns a copy with a different minimum probability.
    ///
    /// # Errors
    ///
    /// Returns [`QosError::InvalidProbability`] for a probability outside
    /// `[0, 1]`.
    pub fn with_min_probability(self, p: f64) -> Result<Self, QosError> {
        QosSpec::new(self.deadline, p)
    }
}

impl fmt::Debug for QosSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "QosSpec({} with p ≥ {})",
            self.deadline, self.min_probability
        )
    }
}

impl fmt::Display for QosSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "deadline {} met with probability ≥ {}",
            self.deadline, self.min_probability
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replica_id_roundtrip() {
        let id = ReplicaId::from(7u64);
        assert_eq!(id.index(), 7);
        assert_eq!(format!("{id}"), "r7");
        assert_eq!(format!("{id:?}"), "r7");
    }

    #[test]
    fn qos_validation() {
        assert!(QosSpec::new(Duration::from_millis(100), 0.0).is_ok());
        assert!(QosSpec::new(Duration::from_millis(100), 1.0).is_ok());
        assert_eq!(
            QosSpec::new(Duration::ZERO, 0.5).unwrap_err(),
            QosError::ZeroDeadline
        );
        assert!(matches!(
            QosSpec::new(Duration::from_millis(1), 1.5).unwrap_err(),
            QosError::InvalidProbability(_)
        ));
        assert!(matches!(
            QosSpec::new(Duration::from_millis(1), f64::NAN).unwrap_err(),
            QosError::InvalidProbability(_)
        ));
        assert!(matches!(
            QosSpec::new(Duration::from_millis(1), -0.1).unwrap_err(),
            QosError::InvalidProbability(_)
        ));
    }

    #[test]
    fn qos_renegotiation() {
        let qos = QosSpec::new(Duration::from_millis(100), 0.9).unwrap();
        let looser = qos.with_deadline(Duration::from_millis(200)).unwrap();
        assert_eq!(looser.deadline(), Duration::from_millis(200));
        assert_eq!(looser.min_probability(), 0.9);
        let weaker = qos.with_min_probability(0.5).unwrap();
        assert_eq!(weaker.min_probability(), 0.5);
        assert!(qos.with_deadline(Duration::ZERO).is_err());
        assert!(qos.with_min_probability(2.0).is_err());
    }

    #[test]
    fn failure_budget() {
        let qos = QosSpec::new(Duration::from_millis(100), 0.75).unwrap();
        assert!((qos.max_failure_probability() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn qos_display() {
        let qos = QosSpec::new(Duration::from_millis(150), 0.5).unwrap();
        assert_eq!(qos.to_string(), "deadline 150ms met with probability ≥ 0.5");
    }
}
