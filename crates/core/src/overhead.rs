//! Accounting for the selection algorithm's own cost (§5.3.3).
//!
//! "In a practical implementation, the overhead incurred by the selection
//! algorithm has to be considered by modifying Algorithm 1 to select those
//! replicas that can respond within `t − δ` time units rather than `t` time
//! units … we measure this overhead, δ, each time the selection algorithm is
//! executed, and use the most recently measured value of δ."

use core::fmt;

use crate::time::Duration;
use crate::window::SlidingWindow;

/// Records the measured per-request overhead δ of model evaluation plus
/// subset selection, and adjusts client deadlines by it.
///
/// # Examples
///
/// ```
/// use aqua_core::overhead::OverheadTracker;
/// use aqua_core::time::Duration;
///
/// let mut tracker = OverheadTracker::new();
/// assert_eq!(tracker.last(), None);
/// tracker.record(Duration::from_micros(400));
/// let t = Duration::from_millis(100);
/// assert_eq!(tracker.adjusted_deadline(t), t - Duration::from_micros(400));
/// ```
#[derive(Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OverheadTracker {
    history: SlidingWindow<Duration>,
}

impl Default for OverheadTracker {
    fn default() -> Self {
        OverheadTracker::new()
    }
}

impl OverheadTracker {
    /// Default number of recent overhead measurements retained for
    /// diagnostics (the adjustment itself only uses the latest value).
    pub const DEFAULT_HISTORY: usize = 32;

    /// Creates a tracker with the default history size.
    pub fn new() -> Self {
        OverheadTracker {
            history: SlidingWindow::new(Self::DEFAULT_HISTORY),
        }
    }

    /// Creates a tracker retaining `history` measurements.
    ///
    /// # Panics
    ///
    /// Panics if `history` is zero.
    pub fn with_history(history: usize) -> Self {
        OverheadTracker {
            history: SlidingWindow::new(history),
        }
    }

    /// Records a freshly measured δ.
    pub fn record(&mut self, overhead: Duration) {
        self.history.push(overhead);
    }

    /// The most recently measured δ, if any.
    pub fn last(&self) -> Option<Duration> {
        self.history.latest().copied()
    }

    /// Mean of the retained measurements ([`Duration::ZERO`] when empty).
    pub fn mean(&self) -> Duration {
        if self.history.is_empty() {
            return Duration::ZERO;
        }
        let total: Duration = self.history.iter().copied().sum();
        total / self.history.len() as u64
    }

    /// Largest retained measurement ([`Duration::ZERO`] when empty).
    pub fn max(&self) -> Duration {
        self.history
            .iter()
            .copied()
            .fold(Duration::ZERO, Duration::max)
    }

    /// Number of measurements recorded so far (including evicted ones).
    pub fn samples(&self) -> u64 {
        self.history.total_pushed()
    }

    /// `t − δ` using the most recent δ (or `t` unchanged before the first
    /// measurement), clamped at zero.
    pub fn adjusted_deadline(&self, deadline: Duration) -> Duration {
        deadline.saturating_sub(self.last().unwrap_or(Duration::ZERO))
    }
}

impl fmt::Debug for OverheadTracker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OverheadTracker")
            .field("last", &self.last())
            .field("mean", &self.mean())
            .field("samples", &self.samples())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> Duration {
        Duration::from_micros(v)
    }

    #[test]
    fn empty_tracker_leaves_deadline_untouched() {
        let tracker = OverheadTracker::new();
        assert_eq!(tracker.adjusted_deadline(us(100)), us(100));
        assert_eq!(tracker.mean(), Duration::ZERO);
        assert_eq!(tracker.max(), Duration::ZERO);
    }

    #[test]
    fn adjustment_uses_latest_measurement() {
        let mut tracker = OverheadTracker::new();
        tracker.record(us(100));
        tracker.record(us(300));
        assert_eq!(tracker.last(), Some(us(300)));
        assert_eq!(tracker.adjusted_deadline(us(1_000)), us(700));
    }

    #[test]
    fn adjustment_clamps_at_zero() {
        let mut tracker = OverheadTracker::new();
        tracker.record(us(500));
        assert_eq!(tracker.adjusted_deadline(us(100)), Duration::ZERO);
    }

    #[test]
    fn mean_and_max_over_history() {
        let mut tracker = OverheadTracker::with_history(3);
        for v in [100, 200, 600] {
            tracker.record(us(v));
        }
        assert_eq!(tracker.mean(), us(300));
        assert_eq!(tracker.max(), us(600));
        assert_eq!(tracker.samples(), 3);
        // Window rolls: 100 evicted.
        tracker.record(us(100));
        assert_eq!(tracker.mean(), us(300));
        assert_eq!(tracker.samples(), 4);
    }
}
