//! Cache-equivalence property tests: for *any* interleaving of repository
//! mutations and *any* estimator combination, a query answered through the
//! generation-keyed [`ModelCache`] must equal the from-scratch pipeline
//! within 1e-12 (they share one pipeline, so in practice they are
//! bit-identical — the tolerance guards future refactors).

use aqua_core::prelude::*;
use proptest::prelude::*;

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

/// One repository mutation, drawn at random.
#[derive(Debug, Clone)]
enum Op {
    Perf {
        replica: u64,
        method: u32,
        service_ms: u64,
        queue_ms: u64,
        outstanding: u32,
    },
    Delay {
        replica: u64,
        delay_ms: u64,
    },
    Remove {
        replica: u64,
    },
    Insert {
        replica: u64,
    },
    Probation {
        replica: u64,
        samples: u32,
    },
}

const POOL: u64 = 4;
const METHODS: u32 = 2;

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (0..POOL, 0..METHODS, 1u64..400, 0u64..100, 0u32..6).prop_map(
            |(replica, method, service_ms, queue_ms, outstanding)| Op::Perf {
                replica,
                method,
                service_ms,
                queue_ms,
                outstanding,
            }
        ),
        3 => (0..POOL, 0u64..50).prop_map(|(replica, delay_ms)| Op::Delay { replica, delay_ms }),
        1 => (0..POOL).prop_map(|replica| Op::Remove { replica }),
        2 => (0..POOL).prop_map(|replica| Op::Insert { replica }),
        1 => (0..POOL, 0u32..4).prop_map(|(replica, samples)| Op::Probation { replica, samples }),
    ]
}

fn apply(repo: &mut InfoRepository, op: &Op) {
    match *op {
        Op::Perf {
            replica,
            method,
            service_ms,
            queue_ms,
            outstanding,
        } => {
            let id = ReplicaId::new(replica);
            if repo.contains(id) {
                repo.record_perf(
                    id,
                    PerfReport::new(ms(service_ms), ms(queue_ms), outstanding)
                        .with_method(MethodId::new(method)),
                    Instant::EPOCH,
                );
            }
        }
        Op::Delay { replica, delay_ms } => {
            let id = ReplicaId::new(replica);
            if repo.contains(id) {
                repo.record_gateway_delay(id, ms(delay_ms), Instant::EPOCH);
            }
        }
        Op::Remove { replica } => {
            repo.remove_replica(ReplicaId::new(replica));
        }
        Op::Insert { replica } => {
            repo.insert_replica(ReplicaId::new(replica));
        }
        Op::Probation { replica, samples } => repo.set_probation(ReplicaId::new(replica), samples),
    }
}

/// Every estimator combination the model supports.
fn all_configs() -> Vec<ModelConfig> {
    let mut configs = Vec::new();
    for scope in [MethodScope::PerMethod, MethodScope::Aggregate] {
        for queue in [QueueEstimator::History, QueueEstimator::QueueScaled] {
            for delay in [DelayEstimator::LastValue, DelayEstimator::WindowPmf] {
                configs.push(ModelConfig {
                    method_scope: scope,
                    queue_estimator: queue,
                    delay_estimator: delay,
                    ..ModelConfig::default()
                });
            }
        }
    }
    configs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The heart of the tentpole's correctness argument: one persistent
    /// cache per estimator combination survives an arbitrary interleaving
    /// of `record_perf` / `record_gateway_delay` / `remove_replica` /
    /// probation transitions / re-insertions, and after every operation
    /// agrees with the from-scratch model for every replica, method, and a
    /// spread of deadlines.
    #[test]
    fn cached_cdf_matches_from_scratch_for_all_estimators(
        ops in prop::collection::vec(op(), 1..40),
    ) {
        let configs = all_configs();
        let mut repo = InfoRepository::new(5);
        for i in 0..POOL {
            repo.insert_replica(ReplicaId::new(i));
        }
        let models: Vec<ResponseTimeModel> = configs
            .into_iter()
            .map(ResponseTimeModel::new)
            .collect();
        let mut caches: Vec<ModelCache> = models.iter().map(|_| ModelCache::new()).collect();

        for op in &ops {
            apply(&mut repo, op);
            for (model, cache) in models.iter().zip(caches.iter_mut()) {
                for raw in 0..POOL {
                    let id = ReplicaId::new(raw);
                    let Some(stats) = repo.stats(id) else { continue };
                    for method in [None, Some(MethodId::new(0)), Some(MethodId::new(1))] {
                        for deadline_ms in [0u64, 50, 200, 800, 3_000] {
                            let deadline = ms(deadline_ms);
                            let cached = model.probability_by_cached(
                                cache, id, stats, deadline, method,
                            );
                            let fresh = model.probability_by_for(stats, deadline, method);
                            match (cached, fresh) {
                                (Some(c), Some(f)) => prop_assert!(
                                    (c - f).abs() <= 1e-12,
                                    "cached {c} vs fresh {f} for {id:?} {method:?} @{deadline_ms}ms ({})",
                                    model_label(model),
                                ),
                                (None, None) => {}
                                (c, f) => prop_assert!(
                                    false,
                                    "presence mismatch: cached {c:?} vs fresh {f:?} for {id:?} \
                                     {method:?} @{deadline_ms}ms ({})",
                                    model_label(model),
                                ),
                            }
                        }
                    }
                }
            }
        }

        // The cache must actually be caching: across this many repeat
        // queries at least some hits are expected whenever any window
        // warmed up at all.
        let totals: u64 = caches.iter().map(|c| c.stats().hits + c.stats().misses).sum();
        let hits: u64 = caches.iter().map(|c| c.stats().hits).sum();
        if totals > 0 {
            prop_assert!(hits > 0 || totals < 10, "no hits across {totals} queries");
        }
    }
}

fn model_label(model: &ResponseTimeModel) -> String {
    format!("{:?}", model.config())
}
