//! Property-based tests for the core model and selection algorithm.

use aqua_core::prelude::*;
use proptest::prelude::*;

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

/// Strategy: a non-empty vector of millisecond durations ≤ 1 s.
fn duration_samples() -> impl Strategy<Value = Vec<Duration>> {
    prop::collection::vec(0u64..1_000, 1..40).prop_map(|v| v.into_iter().map(ms).collect())
}

/// Strategy: a vector of probabilities in [0, 1].
fn probabilities(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..=1.0, 0..max_len)
}

proptest! {
    // ---------------- Pmf invariants ----------------

    #[test]
    fn pmf_mass_is_one(samples in duration_samples()) {
        let pmf = Pmf::from_samples(samples, ms(1)).unwrap();
        prop_assert!((pmf.mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pmf_cdf_is_monotone_and_bounded(samples in duration_samples()) {
        let pmf = Pmf::from_samples(samples, ms(1)).unwrap();
        let mut last = 0.0;
        for t in (0..1_100).step_by(13) {
            let p = pmf.cdf(ms(t));
            prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
            prop_assert!(p + 1e-12 >= last, "cdf decreased at t={t}");
            last = p;
        }
        prop_assert!(pmf.cdf(pmf.support_max()) > 1.0 - 1e-9);
    }

    #[test]
    fn pmf_cdf_zero_below_support(samples in duration_samples()) {
        let pmf = Pmf::from_samples(samples, ms(1)).unwrap();
        if pmf.support_min() > Duration::ZERO {
            prop_assert_eq!(pmf.cdf(pmf.support_min() - ms(1)), 0.0);
        }
    }

    #[test]
    fn convolution_preserves_mass_and_adds_means(
        a in duration_samples(),
        b in duration_samples(),
    ) {
        let pa = Pmf::from_samples(a, ms(1)).unwrap();
        let pb = Pmf::from_samples(b, ms(1)).unwrap();
        let c = pa.convolve(&pb).unwrap();
        prop_assert!((c.mass() - 1.0).abs() < 1e-8);
        let sum = pa.mean().as_millis_f64() + pb.mean().as_millis_f64();
        prop_assert!((c.mean().as_millis_f64() - sum).abs() < 0.5, "bucket rounding only");
    }

    #[test]
    fn convolution_commutes_on_cdf(
        a in duration_samples(),
        b in duration_samples(),
    ) {
        let pa = Pmf::from_samples(a, ms(1)).unwrap();
        let pb = Pmf::from_samples(b, ms(1)).unwrap();
        let ab = pa.convolve(&pb).unwrap();
        let ba = pb.convolve(&pa).unwrap();
        for t in (0..2_200).step_by(97) {
            prop_assert!((ab.cdf(ms(t)) - ba.cdf(ms(t))).abs() < 1e-9);
        }
    }

    #[test]
    fn convolution_dominates_components(
        a in duration_samples(),
        b in duration_samples(),
    ) {
        // Adding a non-negative term can only delay the response:
        // F_{A+B}(t) ≤ min(F_A(t), F_B(t)).
        let pa = Pmf::from_samples(a, ms(1)).unwrap();
        let pb = Pmf::from_samples(b, ms(1)).unwrap();
        let c = pa.convolve(&pb).unwrap();
        for t in (0..2_200).step_by(53) {
            let t = ms(t);
            prop_assert!(c.cdf(t) <= pa.cdf(t) + 1e-9);
            prop_assert!(c.cdf(t) <= pb.cdf(t) + 1e-9);
        }
    }

    #[test]
    fn quantile_cdf_galois(samples in duration_samples(), p in 0.0f64..=1.0) {
        let pmf = Pmf::from_samples(samples, ms(1)).unwrap();
        let q = pmf.quantile(p);
        prop_assert!(pmf.cdf(q) + 1e-9 >= p);
        if q > pmf.support_min() {
            prop_assert!(pmf.cdf(q - ms(1)) < p + 1e-9);
        }
    }

    #[test]
    fn shift_translates_cdf(samples in duration_samples(), shift in 0u64..500) {
        let pmf = Pmf::from_samples(samples, ms(1)).unwrap();
        let shifted = pmf.shift_by(ms(shift));
        for t in (0..1_600).step_by(41) {
            let expect = if t >= shift { pmf.cdf(ms(t - shift)) } else { 0.0 };
            prop_assert!((shifted.cdf(ms(t)) - expect).abs() < 1e-9);
        }
    }

    // ---------------- Sliding window ----------------

    #[test]
    fn window_keeps_suffix(values in prop::collection::vec(any::<u32>(), 1..100),
                           cap in 1usize..20) {
        let mut w = SlidingWindow::new(cap);
        w.extend(values.iter().copied());
        let expect: Vec<u32> = values.iter().rev().take(cap).rev().copied().collect();
        prop_assert_eq!(w.iter().copied().collect::<Vec<_>>(), expect);
        prop_assert_eq!(w.len(), values.len().min(cap));
    }

    // ---------------- Algorithm 1 invariants ----------------

    #[test]
    fn selection_contains_best_and_at_least_two(
        probs in probabilities(12),
        pc in 0.0f64..=1.0,
    ) {
        let cands: Vec<Candidate> = probs
            .iter()
            .enumerate()
            .map(|(i, p)| Candidate::new(ReplicaId::new(i as u64), *p))
            .collect();
        let s = select_replicas(&cands, pc);
        if cands.is_empty() {
            prop_assert!(s.replicas().is_empty());
            return Ok(());
        }
        // The most promising replica is always selected.
        let best = cands
            .iter()
            .max_by(|a, b| {
                a.probability
                    .partial_cmp(&b.probability)
                    .unwrap()
                    .then_with(|| b.id.cmp(&a.id))
            })
            .unwrap()
            .id;
        prop_assert!(s.replicas().contains(&best));
        // Any non-fallback selection has at least 2 members (m0 + X).
        if !s.is_fallback_all() {
            prop_assert!(s.redundancy() >= 2);
        } else {
            prop_assert_eq!(s.redundancy(), cands.len());
        }
    }

    #[test]
    fn selection_meets_requested_probability(
        probs in probabilities(12),
        pc in 0.0f64..=1.0,
    ) {
        let cands: Vec<Candidate> = probs
            .iter()
            .enumerate()
            .map(|(i, p)| Candidate::new(ReplicaId::new(i as u64), *p))
            .collect();
        let s = select_replicas(&cands, pc);
        if !s.is_fallback_all() {
            prop_assert!(s.crash_tolerant_probability() + 1e-12 >= pc);
            prop_assert!(s.predicted_probability() + 1e-12 >= pc);
        }
    }

    #[test]
    fn selection_survives_any_single_crash(
        probs in probabilities(12),
        pc in 0.0f64..=1.0,
    ) {
        // Equation 3: for non-fallback selections, removing any single
        // member still meets Pc.
        let cands: Vec<Candidate> = probs
            .iter()
            .enumerate()
            .map(|(i, p)| Candidate::new(ReplicaId::new(i as u64), *p))
            .collect();
        let s = select_replicas(&cands, pc);
        if s.is_fallback_all() {
            return Ok(());
        }
        let selected: Vec<f64> = s
            .replicas()
            .iter()
            .map(|id| probs[id.index() as usize])
            .collect();
        for drop_idx in 0..selected.len() {
            let survivors: Vec<f64> = selected
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != drop_idx)
                .map(|(_, p)| *p)
                .collect();
            prop_assert!(
                combined_probability(&survivors) + 1e-9 >= pc,
                "crash of member {drop_idx} violates Pc"
            );
        }
    }

    #[test]
    fn selection_is_minimal_prefix(
        probs in probabilities(12),
        pc in 0.0f64..=1.0,
    ) {
        // The algorithm never selects more than the minimum needed: taking
        // one fewer replica from X must violate the acceptance test.
        let cands: Vec<Candidate> = probs
            .iter()
            .enumerate()
            .map(|(i, p)| Candidate::new(ReplicaId::new(i as u64), *p))
            .collect();
        let s = select_replicas(&cands, pc);
        if s.is_fallback_all() || s.redundancy() <= 2 {
            return Ok(());
        }
        // Members are ordered best-first: K = [m0, x1, ..., xk].
        let x_probs: Vec<f64> = s.replicas()[1..s.redundancy() - 1]
            .iter()
            .map(|id| probs[id.index() as usize])
            .collect();
        prop_assert!(
            combined_probability(&x_probs) < pc,
            "a strictly smaller candidate set already satisfied Pc"
        );
    }

    #[test]
    fn selection_survives_any_f_crashes(
        probs in probabilities(12),
        pc in 0.0f64..=1.0,
        f in 0usize..4,
    ) {
        // The §5.3.2 generalization: a non-fallback selection with crash
        // tolerance f keeps Pc after ANY f members crash.
        let cands: Vec<Candidate> = probs
            .iter()
            .enumerate()
            .map(|(i, p)| Candidate::new(ReplicaId::new(i as u64), *p))
            .collect();
        let s = select_replicas_tolerating(&cands, pc, f);
        if s.is_fallback_all() {
            return Ok(());
        }
        let selected: Vec<f64> = s
            .replicas()
            .iter()
            .map(|id| probs[id.index() as usize])
            .collect();
        // Check every crash set of size f (selection sizes stay small, so
        // enumerating combinations is cheap).
        fn check(selected: &[f64], pc: f64, crash: &mut Vec<usize>, start: usize, f: usize)
            -> Result<(), proptest::test_runner::TestCaseError>
        {
            if crash.len() == f {
                let survivors: Vec<f64> = selected
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !crash.contains(i))
                    .map(|(_, p)| *p)
                    .collect();
                prop_assert!(
                    combined_probability(&survivors) + 1e-9 >= pc,
                    "crash set {crash:?} violates Pc"
                );
                return Ok(());
            }
            for i in start..selected.len() {
                crash.push(i);
                check(selected, pc, crash, i + 1, f)?;
                crash.pop();
            }
            Ok(())
        }
        check(&selected, pc, &mut Vec::new(), 0, f.min(selected.len()))?;
    }

    #[test]
    fn selection_monotone_in_pc(probs in probabilities(12), pc in 0.0f64..=1.0) {
        // A weaker requirement never selects more replicas.
        let cands: Vec<Candidate> = probs
            .iter()
            .enumerate()
            .map(|(i, p)| Candidate::new(ReplicaId::new(i as u64), *p))
            .collect();
        let strict = select_replicas(&cands, pc);
        let loose = select_replicas(&cands, pc / 2.0);
        prop_assert!(loose.redundancy() <= strict.redundancy());
    }

    #[test]
    fn selection_size_matches_closed_form_for_iid_replicas(
        p in 0.02f64..0.98,
        pc in 0.0f64..0.995,
        n in 2usize..12,
    ) {
        // For n i.i.d. replicas with per-replica probability p, Algorithm 1
        // must select exactly k+1 replicas where k is the closed-form
        // minimum with 1 − (1−p)^k ≥ Pc (the +1 is the reserved m0), or
        // fall back when k exceeds the pool minus the reserve.
        use aqua_core::analytic::replicas_needed;
        let cands: Vec<Candidate> = (0..n)
            .map(|i| Candidate::new(ReplicaId::new(i as u64), p))
            .collect();
        let s = select_replicas(&cands, pc);
        let k = replicas_needed(p, pc).expect("p > 0").max(1) as usize;
        if k < n {
            prop_assert!(!s.is_fallback_all());
            prop_assert_eq!(
                s.redundancy(),
                k + 1,
                "closed form predicts X of {} plus the reserve (p={}, pc={})",
                k, p, pc
            );
        } else {
            prop_assert!(s.is_fallback_all());
            prop_assert_eq!(s.redundancy(), n);
        }
    }

    #[test]
    fn combined_probability_bounds(probs in probabilities(12)) {
        let p = combined_probability(&probs);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
        // At least as good as the best individual member.
        if let Some(best) = probs.iter().cloned().fold(None::<f64>, |acc, x| {
            Some(acc.map_or(x, |a| a.max(x)))
        }) {
            prop_assert!(p + 1e-12 >= best);
        }
    }

    // ---------------- Detector invariants ----------------

    #[test]
    fn detector_rates_sum_to_one(
        latencies in prop::collection::vec(0u64..400, 1..60),
        deadline in 1u64..300,
        pc in 0.0f64..=1.0,
    ) {
        let qos = QosSpec::new(ms(deadline), pc).unwrap();
        let mut det = TimingFailureDetector::new(qos);
        let mut failures = 0u64;
        for l in &latencies {
            if !det.record(ms(*l)).is_timely() {
                failures += 1;
            }
        }
        prop_assert_eq!(det.failures(), failures);
        prop_assert_eq!(det.total(), latencies.len() as u64);
        prop_assert!((det.timely_rate() + det.failure_rate() - 1.0).abs() < 1e-12);
        let expect_violating = det.timely_rate() < pc;
        prop_assert_eq!(det.is_violating(), expect_violating);
    }
}
