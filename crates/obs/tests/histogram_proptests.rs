//! Property tests for the log-linear histogram: exact count/sum/min/max
//! bookkeeping, quantile estimates that bracket the true order statistics
//! within the bucket resolution, and merge behaving like recording the
//! union of both sample sets.

use aqua_obs::metrics::Histogram;
use proptest::prelude::*;

/// The reference quantile: the same 1-based ceil-rank order statistic the
/// histogram estimates, computed exactly from the raw samples.
fn true_quantile(sorted: &[u64], q: f64) -> u64 {
    let total = sorted.len() as u64;
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    sorted[(rank - 1) as usize]
}

/// The histogram's buckets have at most 1/16 relative width (plus one for
/// the integer truncation), so any estimate must sit in
/// `[v, v + v/16 + 1]` where `v` is the true order statistic.
fn assert_brackets(estimate: u64, v: u64, max: u64, q: f64) {
    assert!(
        estimate >= v,
        "q={q}: estimate {estimate} below the true order statistic {v}"
    );
    assert!(
        estimate <= (v + v / 16 + 1).min(max),
        "q={q}: estimate {estimate} too far above {v} (max {max})"
    );
}

fn samples() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..(1u64 << 40), 1..200)
}

proptest! {
    #[test]
    fn bookkeeping_is_exact(values in samples()) {
        let hist = Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        prop_assert_eq!(hist.count(), values.len() as u64);
        prop_assert_eq!(hist.sum(), values.iter().sum::<u64>());
        prop_assert_eq!(hist.min(), values.iter().min().copied());
        prop_assert_eq!(hist.max(), values.iter().max().copied());
    }

    #[test]
    fn quantiles_bracket_the_order_statistics(values in samples()) {
        let hist = Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let max = *sorted.last().unwrap();
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            let estimate = hist.quantile(q).unwrap();
            assert_brackets(estimate, true_quantile(&sorted, q), max, q);
        }
        prop_assert_eq!(hist.quantile(1.0), Some(max), "p100 is the exact max");
    }

    #[test]
    fn quantiles_are_monotone(values in samples()) {
        let hist = Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        let p50 = hist.quantile(0.5).unwrap();
        let p95 = hist.quantile(0.95).unwrap();
        let p99 = hist.quantile(0.99).unwrap();
        let max = hist.max().unwrap();
        prop_assert!(p50 <= p95 && p95 <= p99 && p99 <= max);
    }

    #[test]
    fn at_least_half_the_samples_sit_at_or_below_p50(values in samples()) {
        let hist = Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        let p50 = hist.quantile(0.5).unwrap();
        let at_or_below = values.iter().filter(|&&v| v <= p50).count() as u64;
        let needed = (values.len() as u64).div_ceil(2);
        prop_assert!(
            at_or_below >= needed,
            "only {at_or_below}/{} samples ≤ p50 estimate {p50}",
            values.len()
        );
    }

    #[test]
    fn merge_equals_recording_the_union(a in samples(), b in samples()) {
        let left = Histogram::new();
        for &v in &a {
            left.record(v);
        }
        let right = Histogram::new();
        for &v in &b {
            right.record(v);
        }
        left.merge(&right);

        let mut union: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        union.sort_unstable();
        let max = *union.last().unwrap();

        prop_assert_eq!(left.count(), union.len() as u64);
        prop_assert_eq!(left.sum(), union.iter().sum::<u64>());
        prop_assert_eq!(left.min(), union.first().copied());
        prop_assert_eq!(left.max(), Some(max));
        // Merged quantiles bracket the union's order statistics, exactly
        // as if every sample had been recorded into one histogram.
        for q in [0.5, 0.95, 0.99] {
            let estimate = left.quantile(q).unwrap();
            assert_brackets(estimate, true_quantile(&union, q), max, q);
        }
    }
}
