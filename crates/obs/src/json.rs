//! A tiny hand-rolled JSON document model.
//!
//! The observability layer emits JSONL journal lines and JSON metric
//! snapshots; since the build environment has no crates.io access, this
//! module replaces `serde_json` for the whole workspace. The read side —
//! needed by the forensics analyzer to replay journals — lives in
//! [`crate::parse`].

use std::fmt::Write as _;

/// An owned JSON document fragment.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Signed integers; also carries unsigned values `<= i64::MAX`.
    Int(i64),
    /// Unsigned values above `i64::MAX`.
    UInt(u64),
    /// Finite floats (non-finite values render as `null`).
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// Insertion-ordered key/value pairs.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Starts an object builder.
    pub fn object() -> JsonObject {
        JsonObject {
            entries: Vec::new(),
        }
    }

    /// Looks up `key` in an object; `None` for other variants or missing
    /// keys. If a key appears more than once the first entry wins.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one (non-negative `Int`
    /// or `UInt`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(i) => u64::try_from(*i).ok(),
            JsonValue::UInt(u) => Some(*u),
            _ => None,
        }
    }

    /// The value as a signed integer, if it fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Int(i) => Some(*i),
            JsonValue::UInt(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// The value as a float; integers widen losslessly where possible.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Float(x) => Some(*x),
            JsonValue::Int(i) => Some(*i as f64),
            JsonValue::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value's items, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }

    /// Renders as a single line (JSONL-friendly).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Renders with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(i) => {
                let _ = write!(out, "{i}");
            }
            JsonValue::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            JsonValue::Float(x) => write_float(out, *x),
            JsonValue::String(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            JsonValue::Object(entries) => {
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            JsonValue::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            JsonValue::Object(entries) if !entries.is_empty() => {
                out.push_str("{\n");
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_float(out: &mut String, x: f64) {
    if x.is_finite() {
        // `{}` gives the shortest representation that round-trips; append
        // `.0` so integral floats stay floats for strict readers.
        let mut s = format!("{x}");
        if !s.contains(['.', 'e', 'E']) {
            s.push_str(".0");
        }
        out.push_str(&s);
    } else {
        // JSON has no NaN/Infinity.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Fluent builder for [`JsonValue::Object`].
#[derive(Clone, Debug, Default)]
pub struct JsonObject {
    entries: Vec<(String, JsonValue)>,
}

impl JsonObject {
    /// Appends one key/value pair.
    pub fn field(mut self, key: impl Into<String>, value: impl Into<JsonValue>) -> Self {
        self.entries.push((key.into(), value.into()));
        self
    }

    /// Finishes the object.
    pub fn build(self) -> JsonValue {
        JsonValue::Object(self.entries)
    }
}

impl From<JsonObject> for JsonValue {
    fn from(builder: JsonObject) -> Self {
        builder.build()
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::Int(v)
    }
}

impl From<i32> for JsonValue {
    fn from(v: i32) -> Self {
        JsonValue::Int(v.into())
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        match i64::try_from(v) {
            Ok(i) => JsonValue::Int(i),
            Err(_) => JsonValue::UInt(v),
        }
    }
}

impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::Int(v.into())
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::from(v as u64)
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Float(v)
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::String(v.to_owned())
    }
}

impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::String(v)
    }
}

impl<T: Into<JsonValue>> From<Vec<T>> for JsonValue {
    fn from(items: Vec<T>) -> Self {
        JsonValue::Array(items.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<JsonValue>> From<Option<T>> for JsonValue {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(inner) => inner.into(),
            None => JsonValue::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_compact() {
        let doc = JsonValue::object()
            .field("name", "aqua")
            .field("replicas", 7u64)
            .field("ratio", 0.5)
            .field("tags", vec!["a", "b"])
            .field("nested", JsonValue::object().field("ok", true))
            .field("missing", Option::<u64>::None)
            .build();
        assert_eq!(
            doc.render(),
            r#"{"name":"aqua","replicas":7,"ratio":0.5,"tags":["a","b"],"nested":{"ok":true},"missing":null}"#
        );
    }

    #[test]
    fn escapes_control_and_quotes() {
        let doc = JsonValue::from("a\"b\\c\nd\u{1}");
        assert_eq!(doc.render(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn floats_round_trip_and_infinities_are_null() {
        assert_eq!(JsonValue::from(2.0).render(), "2.0");
        assert_eq!(JsonValue::from(0.1).render(), "0.1");
        assert_eq!(JsonValue::from(f64::NAN).render(), "null");
        assert_eq!(JsonValue::from(f64::INFINITY).render(), "null");
    }

    #[test]
    fn big_unsigned_preserved() {
        assert_eq!(JsonValue::from(u64::MAX).render(), u64::MAX.to_string());
    }

    #[test]
    fn pretty_output_is_indented() {
        let doc = JsonValue::object()
            .field("a", 1u64)
            .field("b", vec![1u64, 2])
            .build();
        let pretty = doc.render_pretty();
        assert!(pretty.contains("\n  \"a\": 1"), "got: {pretty}");
        assert!(pretty.ends_with('}'));
    }
}
