//! Lock-free metrics: counters, gauges, and log-linear histograms.
//!
//! Hot-path updates are single atomic RMW operations; the registry's lock
//! is touched only when a metric handle is first created (callers cache
//! the returned `Arc`s). Histograms use a log-linear bucket layout (16
//! linear sub-buckets per power of two, HdrHistogram-style): relative
//! bucket error is bounded by 1/16 ≈ 6% across the full `u64` range,
//! which is ample for latency quantiles.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed value (queue depths, in-flight counts, ...).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Replaces the value.
    #[inline]
    pub fn set(&self, v: i64) {
        // aqua-lint: allow(atomics-ordering) a gauge is a standalone word: scrapes tolerate staleness and no payload hangs off the value
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta`.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Subtracts `delta`.
    #[inline]
    pub fn sub(&self, delta: i64) {
        self.value.fetch_sub(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Linear sub-buckets per power of two (must be a power of two).
const SUB_BUCKETS: usize = 16;
const SUB_BITS: u32 = 4;
/// Values `< SUB_BUCKETS` get exact buckets; groups cover exponents
/// 4..=63, 16 buckets each.
const BUCKETS: usize = SUB_BUCKETS + (64 - SUB_BITS as usize) * SUB_BUCKETS;

/// Maps a value to its bucket index.
#[inline]
fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        value as usize
    } else {
        let exp = 63 - value.leading_zeros(); // >= SUB_BITS
        let group = (exp - SUB_BITS) as usize;
        let sub = ((value >> (exp - SUB_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
        (group + 1) * SUB_BUCKETS + sub
    }
}

/// Inclusive lower bound of a bucket.
fn bucket_lower_bound(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        index as u64
    } else {
        let group = (index / SUB_BUCKETS - 1) as u32;
        let sub = (index % SUB_BUCKETS) as u64;
        (SUB_BUCKETS as u64 + sub) << group
    }
}

/// Inclusive upper bound of a bucket.
fn bucket_upper_bound(index: usize) -> u64 {
    if index + 1 >= BUCKETS {
        u64::MAX
    } else {
        bucket_lower_bound(index + 1) - 1
    }
}

/// Lock-free latency histogram with quantile estimation.
///
/// Values are dimensionless `u64`s; by convention the workspace records
/// nanoseconds.
pub struct Histogram {
    counts: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        let counts = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            counts,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation. Wait-free: four relaxed atomic RMWs.
    #[inline]
    pub fn record(&self, value: u64) {
        self.counts[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Exact smallest recorded value (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        let v = self.min.load(Ordering::Relaxed);
        (v != u64::MAX || self.count() > 0).then_some(v)
    }

    /// Exact largest recorded value (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count() > 0).then(|| self.max.load(Ordering::Relaxed))
    }

    /// Mean recorded value (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum() as f64 / n as f64)
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) as the upper bound of the
    /// bucket containing it, clamped to the exact observed max.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (index, bucket) in self.counts.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                let max = self.max.load(Ordering::Relaxed);
                return Some(bucket_upper_bound(index).min(max));
            }
        }
        // Concurrent recording raced count vs. buckets; fall back to max.
        Some(self.max.load(Ordering::Relaxed))
    }

    /// Adds every observation of `other` into `self`.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter().zip(other.counts.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Immutable copy for exporters.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (index, bucket) in self.counts.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push(BucketCount {
                    upper_bound: bucket_upper_bound(index),
                    count: n,
                });
            }
        }
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            min: self.min().unwrap_or(0),
            max: self.max().unwrap_or(0),
            p50: self.quantile(0.50).unwrap_or(0),
            p95: self.quantile(0.95).unwrap_or(0),
            p99: self.quantile(0.99).unwrap_or(0),
            buckets,
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("min", &self.min())
            .field("max", &self.max())
            .finish_non_exhaustive()
    }
}

/// One non-empty bucket in a [`HistogramSnapshot`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BucketCount {
    /// Inclusive upper bound of the bucket.
    pub upper_bound: u64,
    /// Observations in this bucket (non-cumulative).
    pub count: u64,
}

/// Point-in-time view of a [`Histogram`].
#[derive(Clone, Debug, Default)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Exact observed minimum (0 when empty).
    pub min: u64,
    /// Exact observed maximum (0 when empty).
    pub max: u64,
    /// Estimated median (bucket upper bound).
    pub p50: u64,
    /// Estimated 95th percentile (bucket upper bound).
    pub p95: u64,
    /// Estimated 99th percentile (bucket upper bound).
    pub p99: u64,
    /// Non-empty buckets, ascending by bound.
    pub buckets: Vec<BucketCount>,
}

/// A metric's identity: name plus ordered labels.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name, e.g. `aqua_reply_ts_ns`.
    pub name: String,
    /// Ordered `(key, value)` label pairs.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        MetricKey {
            name: name.to_owned(),
            labels: labels
                .iter()
                .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
                .collect(),
        }
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<MetricKey, Arc<Counter>>,
    gauges: BTreeMap<MetricKey, Arc<Gauge>>,
    histograms: BTreeMap<MetricKey, Arc<Histogram>>,
}

/// Get-or-create store of named metrics.
///
/// Lookup takes a short mutex; the returned `Arc` handles update their
/// atomics without any lock, so callers on hot paths should look up once
/// and cache.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Returns (creating if needed) the counter with this name + labels.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let key = MetricKey::new(name, labels);
        Arc::clone(
            self.lock()
                .counters
                .entry(key)
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// Returns (creating if needed) the gauge with this name + labels.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let key = MetricKey::new(name, labels);
        Arc::clone(
            self.lock()
                .gauges
                .entry(key)
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// Returns (creating if needed) the histogram with this name + labels.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let key = MetricKey::new(name, labels);
        Arc::clone(
            self.lock()
                .histograms
                .entry(key)
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Consistent-enough point-in-time view of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.lock();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, c)| (k.clone(), c.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, g)| (k.clone(), g.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        self.inner
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("Registry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

/// Everything the exporters need, detached from live atomics.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Counter values, sorted by key.
    pub counters: Vec<(MetricKey, u64)>,
    /// Gauge values, sorted by key.
    pub gauges: Vec<(MetricKey, i64)>,
    /// Histogram snapshots, sorted by key.
    pub histograms: Vec<(MetricKey, HistogramSnapshot)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_monotone_and_covering() {
        let mut previous_upper = None;
        for index in 0..BUCKETS {
            let lo = bucket_lower_bound(index);
            let hi = bucket_upper_bound(index);
            assert!(lo <= hi, "bucket {index}: {lo} > {hi}");
            if let Some(prev) = previous_upper {
                assert_eq!(lo, prev + 1, "gap before bucket {index}");
            }
            previous_upper = Some(hi);
        }
        assert_eq!(previous_upper, Some(u64::MAX));
    }

    #[test]
    fn values_land_in_their_own_bucket() {
        for value in [0u64, 1, 15, 16, 17, 100, 1_000, 123_456_789, u64::MAX] {
            let index = bucket_index(value);
            assert!(bucket_lower_bound(index) <= value, "value {value}");
            assert!(value <= bucket_upper_bound(index), "value {value}");
        }
    }

    #[test]
    fn quantiles_bound_recorded_values() {
        let h = Histogram::new();
        for v in 1..=1_000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1_000);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(1_000));
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        // Upper-bound estimates: within one bucket (6.25%) above truth.
        assert!((500..=540).contains(&p50), "p50 {p50}");
        assert!((990..=1_000).contains(&p99), "p99 {p99}");
        assert_eq!(h.quantile(1.0), Some(1_000));
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(10);
        a.record(20);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), Some(10));
        assert_eq!(a.max(), Some(1_000_000));
        assert_eq!(a.sum(), 1_000_030);
    }

    #[test]
    fn registry_returns_shared_handles() {
        let registry = Registry::new();
        let c1 = registry.counter("requests_total", &[("client", "1")]);
        let c2 = registry.counter("requests_total", &[("client", "1")]);
        let other = registry.counter("requests_total", &[("client", "2")]);
        c1.inc();
        c2.add(2);
        other.inc();
        assert_eq!(c1.get(), 3);
        let snap = registry.snapshot();
        assert_eq!(snap.counters.len(), 2);
        assert_eq!(snap.counters[0].1 + snap.counters[1].1, 4);
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        let h = std::sync::Arc::new(Histogram::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(h.count(), 40_000);
        let bucket_total: u64 = h.snapshot().buckets.iter().map(|b| b.count).sum();
        assert_eq!(bucket_total, 40_000);
    }
}
