//! Exporters: Prometheus text format and a JSON snapshot.
//!
//! Both render a [`MetricsSnapshot`], so one scrape of the registry feeds
//! either output. Histogram quantiles (p50/p95/p99) are exported alongside
//! the cumulative `_bucket` series; values keep the units they were
//! recorded in (nanoseconds by convention, so metric names end in `_ns`).

use crate::json::JsonValue;
use crate::metrics::{HistogramSnapshot, MetricKey, MetricsSnapshot};
use std::fmt::Write as _;

/// Renders a snapshot in the Prometheus text exposition format.
pub fn to_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut last_name = String::new();
    for (key, value) in &snapshot.counters {
        type_header(&mut out, &mut last_name, &key.name, "counter");
        let _ = writeln!(out, "{} {}", series(key, &[]), value);
    }
    for (key, value) in &snapshot.gauges {
        type_header(&mut out, &mut last_name, &key.name, "gauge");
        let _ = writeln!(out, "{} {}", series(key, &[]), value);
    }
    for (key, histogram) in &snapshot.histograms {
        type_header(&mut out, &mut last_name, &key.name, "histogram");
        let mut cumulative = 0u64;
        for bucket in &histogram.buckets {
            cumulative += bucket.count;
            let _ = writeln!(
                out,
                "{} {}",
                series_suffixed(key, "_bucket", &[("le", &bucket.upper_bound.to_string())]),
                cumulative
            );
        }
        let _ = writeln!(
            out,
            "{} {}",
            series_suffixed(key, "_bucket", &[("le", "+Inf")]),
            histogram.count
        );
        let _ = writeln!(
            out,
            "{} {}",
            series_suffixed(key, "_sum", &[]),
            histogram.sum
        );
        let _ = writeln!(
            out,
            "{} {}",
            series_suffixed(key, "_count", &[]),
            histogram.count
        );
        for (q, v) in [
            ("0.5", histogram.p50),
            ("0.95", histogram.p95),
            ("0.99", histogram.p99),
        ] {
            let _ = writeln!(out, "{} {}", series(key, &[("quantile", q)]), v);
        }
    }
    out
}

/// Emits a `# TYPE` line once per metric name.
fn type_header(out: &mut String, last_name: &mut String, name: &str, kind: &str) {
    if last_name != name {
        let _ = writeln!(out, "# TYPE {} {kind}", sanitize(name));
        *last_name = name.to_owned();
    }
}

fn series(key: &MetricKey, extra: &[(&str, &str)]) -> String {
    series_suffixed(key, "", extra)
}

fn series_suffixed(key: &MetricKey, suffix: &str, extra: &[(&str, &str)]) -> String {
    let mut s = sanitize(&key.name);
    s.push_str(suffix);
    let mut labels: Vec<(String, String)> = key
        .labels
        .iter()
        .map(|(k, v)| (sanitize(k), v.clone()))
        .collect();
    labels.extend(
        extra
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned())),
    );
    if !labels.is_empty() {
        s.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{k}=\"{}\"", escape_label_value(v));
        }
        s.push('}');
    }
    s
}

/// Prometheus label *values* may contain any UTF-8, but the text
/// exposition format requires `\`, `"`, and line feeds escaped —
/// backslash first so the other escapes aren't double-escaped.
fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Prometheus metric/label names allow `[a-zA-Z0-9_:]`.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Renders a snapshot as one JSON document.
pub fn to_json(snapshot: &MetricsSnapshot) -> JsonValue {
    let counters = snapshot
        .counters
        .iter()
        .map(|(key, value)| keyed_value(key, JsonValue::from(*value)))
        .collect();
    let gauges = snapshot
        .gauges
        .iter()
        .map(|(key, value)| keyed_value(key, JsonValue::from(*value)))
        .collect();
    let histograms = snapshot
        .histograms
        .iter()
        .map(|(key, histogram)| keyed_value(key, histogram_json(histogram)))
        .collect();
    JsonValue::object()
        .field("counters", JsonValue::Array(counters))
        .field("gauges", JsonValue::Array(gauges))
        .field("histograms", JsonValue::Array(histograms))
        .build()
}

fn keyed_value(key: &MetricKey, value: JsonValue) -> JsonValue {
    let labels = key.labels.iter().fold(JsonValue::object(), |acc, (k, v)| {
        acc.field(k.clone(), v.clone())
    });
    JsonValue::object()
        .field("name", key.name.clone())
        .field("labels", labels)
        .field("value", value)
        .build()
}

fn histogram_json(histogram: &HistogramSnapshot) -> JsonValue {
    let buckets = histogram
        .buckets
        .iter()
        .map(|b| {
            JsonValue::object()
                .field("le", b.upper_bound)
                .field("count", b.count)
                .build()
        })
        .collect();
    JsonValue::object()
        .field("count", histogram.count)
        .field("sum", histogram.sum)
        .field("min", histogram.min)
        .field("max", histogram.max)
        .field("p50", histogram.p50)
        .field("p95", histogram.p95)
        .field("p99", histogram.p99)
        .field("buckets", JsonValue::Array(buckets))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    fn populated() -> MetricsSnapshot {
        let registry = Registry::new();
        registry
            .counter("aqua_requests_total", &[("client", "1")])
            .add(5);
        registry
            .gauge("aqua_queue_depth", &[("replica", "2")])
            .set(3);
        let h = registry.histogram("aqua_reply_ts_ns", &[("replica", "2")]);
        for v in [100u64, 200, 400, 800] {
            h.record(v);
        }
        registry.snapshot()
    }

    #[test]
    fn prometheus_format_is_well_formed() {
        let text = to_prometheus(&populated());
        assert!(text.contains("# TYPE aqua_requests_total counter"));
        assert!(text.contains("aqua_requests_total{client=\"1\"} 5"));
        assert!(text.contains("aqua_queue_depth{replica=\"2\"} 3"));
        assert!(text.contains("# TYPE aqua_reply_ts_ns histogram"));
        assert!(text.contains("aqua_reply_ts_ns_bucket{replica=\"2\",le=\"+Inf\"} 4"));
        assert!(text.contains("aqua_reply_ts_ns_count{replica=\"2\"} 4"));
        assert!(text.contains("aqua_reply_ts_ns{replica=\"2\",quantile=\"0.5\"}"));
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let text = to_prometheus(&populated());
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.contains("_bucket") && !l.contains("+Inf"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(!counts.is_empty());
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
        assert_eq!(*counts.last().unwrap(), 4);
    }

    #[test]
    fn json_snapshot_contains_quantiles() {
        let rendered = to_json(&populated()).render();
        for needle in [
            r#""name":"aqua_reply_ts_ns""#,
            r#""labels":{"replica":"2"}"#,
            r#""p50":"#,
            r#""p99":"#,
            r#""max":800"#,
        ] {
            assert!(rendered.contains(needle), "missing {needle} in {rendered}");
        }
    }

    #[test]
    fn names_are_sanitized() {
        assert_eq!(sanitize("aqua.reply-ts ns"), "aqua_reply_ts_ns");
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("two\nlines"), "two\\nlines");
        // Backslash escaping runs first, so a literal `\n` sequence stays
        // distinguishable from a real line feed.
        assert_eq!(escape_label_value("lit\\nnot"), "lit\\\\nnot");
    }

    #[test]
    fn exported_series_with_hostile_label_values_stay_one_line() {
        let registry = Registry::new();
        registry
            .counter(
                "aqua_requests_total",
                &[("client", "evil\"} 9\ninjected 1")],
            )
            .add(2);
        let text = to_prometheus(&registry.snapshot());
        // One TYPE line + one series line: the newline in the label value
        // must not split the series across lines.
        assert_eq!(text.lines().count(), 2, "got: {text}");
        assert!(
            text.contains(r#"client="evil\"} 9\ninjected 1""#),
            "got: {text}"
        );
    }
}
