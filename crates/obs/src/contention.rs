//! Lock-contention accounting for the concurrent hot path.
//!
//! The throughput work of the runtime removed the global client lock; what
//! remains are short, named critical sections (pending-table shards,
//! ingestion shards, the snapshot publish lock). This module gives each of
//! them a pair of cached counters so a benchmark can read *how long callers
//! waited* to enter a section without any per-acquisition registry lookup:
//!
//! * `aqua_lock_wait_ns_total{lock="…"}` — cumulative nanoseconds spent
//!   blocked in `lock()` calls;
//! * `aqua_lock_acquisitions_total{lock="…"}` — number of acquisitions.
//!
//! The quotient is the mean lock-wait per acquisition — the direct measure
//! of how serialized a path still is (zero on an uncontended shard).

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::metrics::{Counter, Registry};

/// Metric name for cumulative nanoseconds spent waiting on a lock.
pub const LOCK_WAIT_NS_TOTAL: &str = "aqua_lock_wait_ns_total";
/// Metric name for the number of lock acquisitions.
pub const LOCK_ACQUISITIONS_TOTAL: &str = "aqua_lock_acquisitions_total";

/// Cached wait-time counters for one named lock (or family of shards that
/// should be accounted together).
///
/// Cloning shares the underlying counters, so a handle can be distributed
/// to every thread touching the section.
#[derive(Debug, Clone)]
pub struct LockContention {
    wait_ns: Arc<Counter>,
    acquisitions: Arc<Counter>,
}

impl LockContention {
    /// Counters registered under the given lock name.
    pub fn new(registry: &Registry, lock: &str) -> Self {
        LockContention {
            wait_ns: registry.counter(LOCK_WAIT_NS_TOTAL, &[("lock", lock)]),
            acquisitions: registry.counter(LOCK_ACQUISITIONS_TOTAL, &[("lock", lock)]),
        }
    }

    /// Unregistered counters: still count (cheap atomics) but are visible
    /// only through this handle. The configuration for handlers that have
    /// no [`crate::Obs`] attached.
    pub fn detached() -> Self {
        LockContention {
            wait_ns: Arc::new(Counter::new()),
            acquisitions: Arc::new(Counter::new()),
        }
    }

    /// Records one acquisition that waited `waited` to enter the section.
    #[inline]
    pub fn record(&self, waited: Duration) {
        self.wait_ns.add(waited.as_nanos() as u64);
        self.acquisitions.inc();
    }

    /// Times `acquire` (a closure performing the blocking `lock()` call)
    /// and records the wait, returning the guard.
    #[inline]
    pub fn acquire<G>(&self, acquire: impl FnOnce() -> G) -> G {
        let started = Instant::now();
        let guard = acquire();
        self.record(started.elapsed());
        guard
    }

    /// Cumulative nanoseconds callers spent blocked.
    pub fn wait_ns(&self) -> u64 {
        self.wait_ns.get()
    }

    /// Number of acquisitions recorded.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detached_counters_accumulate() {
        let c = LockContention::detached();
        c.record(Duration::from_nanos(120));
        c.record(Duration::from_nanos(30));
        assert_eq!(c.wait_ns(), 150);
        assert_eq!(c.acquisitions(), 2);
    }

    #[test]
    fn registered_counters_share_the_registry_entry() {
        let registry = Registry::new();
        let a = LockContention::new(&registry, "pending-shard");
        let b = LockContention::new(&registry, "pending-shard");
        a.record(Duration::from_nanos(40));
        b.record(Duration::from_nanos(2));
        assert_eq!(a.wait_ns(), 42);
        assert_eq!(
            registry
                .counter(LOCK_WAIT_NS_TOTAL, &[("lock", "pending-shard")])
                .get(),
            42
        );
        assert_eq!(
            registry
                .counter(LOCK_ACQUISITIONS_TOTAL, &[("lock", "pending-shard")])
                .get(),
            2
        );
    }

    #[test]
    fn acquire_times_the_closure() {
        let c = LockContention::detached();
        let m = std::sync::Mutex::new(7u32);
        let guard = c.acquire(|| m.lock().unwrap());
        assert_eq!(*guard, 7);
        assert_eq!(c.acquisitions(), 1);
    }
}
