//! A recursive-descent JSON parser matching the writer in [`crate::json`].
//!
//! The forensics analyzer replays JSONL journals produced by this crate's
//! own writer, and the journal round-trip tests need
//! serialize → parse → identical structures. The build is air-gapped (no
//! `serde_json`), so this is the read side of the hand-rolled JSON pair.
//!
//! Numbers are mapped the same way the writer emits them: integral values
//! that fit `i64` become [`JsonValue::Int`], larger unsigned values become
//! [`JsonValue::UInt`], everything else becomes [`JsonValue::Float`] — so
//! `parse(value.render())` reproduces the original [`JsonValue`] for every
//! document the writer can produce.

use crate::json::JsonValue;

/// Where and why parsing failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input at which the error was detected.
    pub offset: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON document; trailing whitespace is allowed,
/// trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<JsonValue, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.error(format!("unexpected character {:?}", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'{')?;
        let mut entries: Vec<(String, JsonValue)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(JsonValue::Object(entries)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.error("expected ',' or '}' in object"));
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, ParseError> {
        self.expect(b'[')?;
        let mut items: Vec<JsonValue> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(JsonValue::Array(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.error("expected ',' or ']' in array"));
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes in one go.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is valid UTF-8 and the run contains no escapes,
                // so the byte slice is valid UTF-8 too.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.error("invalid utf-8 in string"))?,
                );
            }
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let unit = self.hex4()?;
                        let c = if (0xD800..0xDC00).contains(&unit) {
                            // High surrogate: must be followed by \uXXXX low.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.error("unpaired high surrogate"));
                            }
                            let low = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(self.error("invalid low surrogate"));
                            }
                            let code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(code)
                        } else if (0xDC00..0xE000).contains(&unit) {
                            None
                        } else {
                            char::from_u32(unit)
                        };
                        match c {
                            Some(c) => out.push(c),
                            None => return Err(self.error("invalid unicode escape")),
                        }
                    }
                    _ => return Err(self.error("invalid escape sequence")),
                },
                Some(_) => return Err(self.error("unescaped control character in string")),
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut value: u32 = 0;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.error("expected 4 hex digits")),
            };
            value = value * 16 + d;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<JsonValue, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(JsonValue::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(u));
            }
        }
        match text.parse::<f64>() {
            Ok(x) if x.is_finite() => Ok(JsonValue::Float(x)),
            _ => Err(ParseError {
                offset: start,
                message: format!("invalid number {text:?}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_writer_output() {
        let doc = JsonValue::object()
            .field("name", "aqua")
            .field("replicas", 7u64)
            .field("big", u64::MAX)
            .field("neg", -3i64)
            .field("ratio", 0.5)
            .field("two", 2.0)
            .field("tags", vec!["a", "b"])
            .field("nested", JsonValue::object().field("ok", true))
            .field("missing", Option::<u64>::None)
            .build();
        let parsed = parse(&doc.render()).unwrap();
        assert_eq!(parsed, doc);
        // Pretty output parses back to the same document too.
        assert_eq!(parse(&doc.render_pretty()).unwrap(), doc);
    }

    #[test]
    fn round_trips_escapes() {
        let doc = JsonValue::from("a\"b\\c\nd\u{1}é✓");
        assert_eq!(parse(&doc.render()).unwrap(), doc);
    }

    #[test]
    fn parses_surrogate_pairs() {
        assert_eq!(parse(r#""😀""#).unwrap(), JsonValue::from("\u{1F600}"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a":1,}"#).is_err());
        assert!(parse("[1 2]").is_err());
        assert!(parse(r#""unterminated"#).is_err());
        assert!(parse("01x").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse(r#""\ud800""#).is_err(), "unpaired surrogate");
    }

    #[test]
    fn accessors_navigate_documents() {
        let doc = parse(r#"{"a":{"b":[1,2.5,"x",true,null]},"n":-7}"#).unwrap();
        let arr = doc.get("a").and_then(|a| a.get("b")).unwrap();
        assert_eq!(arr.as_array().unwrap().len(), 5);
        assert_eq!(arr.as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(arr.as_array().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(arr.as_array().unwrap()[2].as_str(), Some("x"));
        assert_eq!(arr.as_array().unwrap()[3].as_bool(), Some(true));
        assert!(arr.as_array().unwrap()[4].is_null());
        assert_eq!(doc.get("n").unwrap().as_i64(), Some(-7));
        assert_eq!(doc.get("n").unwrap().as_u64(), None);
        assert!(doc.get("zzz").is_none());
    }
}
