//! Structured per-request trace journal.
//!
//! Every request the timing-fault handler plans becomes a
//! [`RequestSpan`]: the paper's timestamps (`t0` submit, `t1` multicast,
//! per-reply `t4`), the selected replica set, each reply's `(ts, tq, td)`
//! latency decomposition with first-vs-redundant classification, and the
//! final timing verdict rendered as a string.
//! Spans are emitted as single JSONL lines through a pluggable [`Sink`]:
//! in-memory for tests, a buffered writer for binaries. Simulator trace
//! events are bridged into the same stream as `"sim_event"` lines so sim
//! and socket runs produce comparable journals.

use crate::json::JsonValue;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// One reply observed for a request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplyObservation {
    /// Replica that sent the reply.
    pub replica: u64,
    /// Arrival time of the reply at the gateway (the paper's `t4`), in
    /// nanoseconds on the run's clock.
    pub at_nanos: u64,
    /// Service time `ts` reported by the replica.
    pub service_nanos: u64,
    /// Queueing delay `tq` reported by the replica.
    pub queue_nanos: u64,
    /// Gateway/transmission delay `td = (t4 - t1) - tq - ts`.
    pub gateway_nanos: u64,
    /// End-to-end response time `t4 - t1` for this reply.
    pub response_nanos: u64,
    /// Whether this was the first reply (delivered to the application);
    /// later replies are redundant.
    pub first: bool,
    /// Timing verdict for a delivered reply (`"timely"`, a failure
    /// description, ...); `None` for redundant replies.
    pub verdict: Option<String>,
}

impl ReplyObservation {
    fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .field("replica", self.replica)
            .field("at_ns", self.at_nanos)
            .field("ts_ns", self.service_nanos)
            .field("tq_ns", self.queue_nanos)
            .field("td_ns", self.gateway_nanos)
            .field("response_ns", self.response_nanos)
            .field("first", self.first)
            .field("verdict", self.verdict.clone())
            .build()
    }
}

/// Terminal state of a request span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanOutcome {
    /// A reply was delivered to the application.
    Delivered,
    /// The handler gave up (no reply before the extended deadline).
    GaveUp,
    /// The attempt was superseded by a deadline-driven retry that won (or
    /// was retired when its logical request resolved another way); it is
    /// not a timing failure.
    Superseded,
    /// The span was still pending when the journal was flushed.
    Pending,
}

impl SpanOutcome {
    fn as_str(self) -> &'static str {
        match self {
            SpanOutcome::Delivered => "delivered",
            SpanOutcome::GaveUp => "gave_up",
            SpanOutcome::Superseded => "superseded",
            SpanOutcome::Pending => "pending",
        }
    }
}

/// The full trace of one request, emitted as a single JSONL line.
#[derive(Clone, Debug)]
pub struct RequestSpan {
    /// Handler-assigned sequence number.
    pub seq: u64,
    /// Client identity, when known.
    pub client: Option<u64>,
    /// Method identifier of the request.
    pub method: u32,
    /// Application submit time `t0` (nanoseconds).
    pub t0_nanos: u64,
    /// Multicast send time `t1` (nanoseconds).
    pub t1_nanos: u64,
    /// QoS deadline for the request (nanoseconds, relative to `t1`).
    pub deadline_nanos: u64,
    /// Replica set chosen by the selection algorithm, in send order.
    pub selected: Vec<u64>,
    /// Whether this was a probe (sent to all replicas, not client-paid).
    pub probe: bool,
    /// For a deadline-driven retry attempt, the seq of the attempt it
    /// supersedes.
    pub retry_of: Option<u64>,
    /// Every reply observed so far, in arrival order.
    pub replies: Vec<ReplyObservation>,
    /// How the span ended.
    pub outcome: SpanOutcome,
    /// Time the span ended (first delivery or give-up), if it did.
    pub end_nanos: Option<u64>,
}

impl RequestSpan {
    /// Starts a span at plan time.
    pub fn begin(seq: u64, method: u32, t0_nanos: u64, t1_nanos: u64) -> Self {
        RequestSpan {
            seq,
            client: None,
            method,
            t0_nanos,
            t1_nanos,
            deadline_nanos: 0,
            selected: Vec::new(),
            probe: false,
            retry_of: None,
            replies: Vec::new(),
            outcome: SpanOutcome::Pending,
            end_nanos: None,
        }
    }

    /// Size of the selected replica set.
    pub fn selection_size(&self) -> usize {
        self.selected.len()
    }

    /// Number of redundant (non-first) replies observed.
    pub fn redundant_replies(&self) -> usize {
        self.replies.iter().filter(|r| !r.first).count()
    }

    /// Renders the span as one JSON object.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .field("type", "request")
            .field("seq", self.seq)
            .field("client", self.client)
            .field("method", self.method)
            .field("t0_ns", self.t0_nanos)
            .field("t1_ns", self.t1_nanos)
            .field("deadline_ns", self.deadline_nanos)
            .field("selected", self.selected.clone())
            .field("selection_size", self.selection_size())
            .field("probe", self.probe)
            .field("retry_of", self.retry_of)
            .field(
                "replies",
                JsonValue::Array(self.replies.iter().map(ReplyObservation::to_json).collect()),
            )
            .field("outcome", self.outcome.as_str())
            .field("end_ns", self.end_nanos)
            .build()
    }
}

/// Destination for journal lines.
pub trait Sink: Send {
    /// Receives one complete JSONL line (no trailing newline).
    fn emit(&mut self, line: &str);

    /// Flushes buffered lines to their destination.
    fn flush(&mut self) {}
}

/// Test sink retaining every line in memory.
#[derive(Default)]
pub struct MemorySink {
    lines: Arc<Mutex<Vec<String>>>,
}

impl Sink for MemorySink {
    fn emit(&mut self, line: &str) {
        lock(&self.lines).push(line.to_owned());
    }
}

/// Read side of a [`MemorySink`]; usable while the journal is live.
#[derive(Clone, Debug)]
pub struct MemoryReader {
    lines: Arc<Mutex<Vec<String>>>,
}

impl MemoryReader {
    /// All lines emitted so far.
    pub fn lines(&self) -> Vec<String> {
        lock(&self.lines).clone()
    }

    /// Parses nothing — returns the lines that contain `needle`.
    pub fn lines_containing(&self, needle: &str) -> Vec<String> {
        lock(&self.lines)
            .iter()
            .filter(|l| l.contains(needle))
            .cloned()
            .collect()
    }
}

fn lock(lines: &Mutex<Vec<String>>) -> std::sync::MutexGuard<'_, Vec<String>> {
    lines.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// Buffered sink writing JSONL to any `io::Write` (a file in practice).
pub struct WriterSink<W: Write + Send> {
    writer: std::io::BufWriter<W>,
}

impl<W: Write + Send> WriterSink<W> {
    /// Wraps `writer` in a buffered journal sink.
    pub fn new(writer: W) -> Self {
        WriterSink {
            writer: std::io::BufWriter::new(writer),
        }
    }
}

impl<W: Write + Send> Sink for WriterSink<W> {
    fn emit(&mut self, line: &str) {
        // Journal output is best-effort; losing lines on a full disk must
        // not take down the experiment.
        let _ = writeln!(self.writer, "{line}");
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

/// Sink that discards everything (observability disabled).
#[derive(Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn emit(&mut self, _line: &str) {}
}

/// Cloneable handle writing spans and events to a shared [`Sink`].
#[derive(Clone)]
pub struct Journal {
    sink: Arc<Mutex<dyn Sink>>,
}

impl Journal {
    /// Wraps any sink in a cloneable journal handle.
    pub fn new(sink: impl Sink + 'static) -> Self {
        Journal {
            sink: Arc::new(Mutex::new(sink)),
        }
    }

    /// Journal that keeps lines in memory, plus its reader.
    pub fn in_memory() -> (Self, MemoryReader) {
        let sink = MemorySink::default();
        let reader = MemoryReader {
            lines: Arc::clone(&sink.lines),
        };
        (Journal::new(sink), reader)
    }

    /// Journal that drops everything.
    pub fn null() -> Self {
        Journal::new(NullSink)
    }

    /// Emits a finished (or flushed-while-pending) request span.
    pub fn emit_span(&self, span: &RequestSpan) {
        self.emit_json(&span.to_json());
    }

    /// Emits an arbitrary event object; `kind` becomes the `"type"` field.
    pub fn emit_event(&self, kind: &str, fields: crate::json::JsonObject) {
        let mut object = JsonValue::object().field("type", kind).build();
        if let (JsonValue::Object(target), JsonValue::Object(extra)) = (&mut object, fields.build())
        {
            target.extend(extra);
        }
        self.emit_json(&object);
    }

    fn emit_json(&self, value: &JsonValue) {
        self.lock().emit(&value.render());
    }

    /// Flushes the underlying sink.
    pub fn flush(&self) {
        self.lock().flush();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, dyn Sink + 'static> {
        self.sink
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Journal { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_span() -> RequestSpan {
        let mut span = RequestSpan::begin(7, 3, 1_000, 1_100);
        span.client = Some(1);
        span.deadline_nanos = 200_000_000;
        span.selected = vec![2, 5];
        span.replies.push(ReplyObservation {
            replica: 5,
            at_nanos: 90_001_100,
            service_nanos: 80_000_000,
            queue_nanos: 5_000_000,
            gateway_nanos: 5_000_000,
            response_nanos: 90_000_000,
            first: true,
            verdict: Some("timely".to_owned()),
        });
        span.replies.push(ReplyObservation {
            replica: 2,
            at_nanos: 95_001_100,
            service_nanos: 90_000_000,
            queue_nanos: 2_000_000,
            gateway_nanos: 3_000_000,
            response_nanos: 95_000_000,
            first: false,
            verdict: None,
        });
        span.outcome = SpanOutcome::Delivered;
        span.end_nanos = Some(90_001_100);
        span
    }

    #[test]
    fn span_renders_expected_fields() {
        let line = sample_span().to_json().render();
        for needle in [
            r#""type":"request""#,
            r#""seq":7"#,
            r#""selection_size":2"#,
            r#""ts_ns":80000000"#,
            r#""first":true"#,
            r#""verdict":"timely""#,
            r#""outcome":"delivered""#,
        ] {
            assert!(line.contains(needle), "missing {needle} in {line}");
        }
    }

    #[test]
    fn memory_journal_round_trips() {
        let (journal, reader) = Journal::in_memory();
        journal.emit_span(&sample_span());
        journal.emit_event(
            "sim_event",
            crate::json::JsonValue::object().field("node", 3u64),
        );
        journal.flush();
        let lines = reader.lines();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains(r#""type":"request""#));
        assert!(lines[1].starts_with(r#"{"type":"sim_event""#));
        assert_eq!(reader.lines_containing("sim_event").len(), 1);
    }

    #[test]
    fn writer_sink_writes_lines() {
        let buffer: Vec<u8> = Vec::new();
        let mut sink = WriterSink::new(buffer);
        sink.emit(r#"{"a":1}"#);
        sink.emit(r#"{"b":2}"#);
        sink.flush();
        let written = sink.writer.into_inner().unwrap();
        assert_eq!(
            String::from_utf8(written).unwrap(),
            "{\"a\":1}\n{\"b\":2}\n"
        );
    }

    #[test]
    fn redundant_reply_count() {
        assert_eq!(sample_span().redundant_replies(), 1);
    }
}
