//! Structured per-request trace journal.
//!
//! Every request the timing-fault handler plans becomes a
//! [`RequestSpan`]: the paper's timestamps (`t0` submit, `t1` multicast,
//! per-reply `t4`), the selected replica set, each reply's `(ts, tq, td)`
//! latency decomposition with first-vs-redundant classification, and the
//! final timing verdict rendered as a string.
//! Spans are emitted as single JSONL lines through a pluggable [`Sink`]:
//! in-memory for tests, a buffered writer for binaries. Simulator trace
//! events are bridged into the same stream as `"sim_event"` lines so sim
//! and socket runs produce comparable journals.

use crate::json::JsonValue;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// One reply observed for a request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplyObservation {
    /// Replica that sent the reply.
    pub replica: u64,
    /// Arrival time of the reply at the gateway (the paper's `t4`), in
    /// nanoseconds on the run's clock.
    pub at_nanos: u64,
    /// Service time `ts` reported by the replica.
    pub service_nanos: u64,
    /// Queueing delay `tq` reported by the replica.
    pub queue_nanos: u64,
    /// Gateway/transmission delay `td = (t4 - t1) - tq - ts`.
    pub gateway_nanos: u64,
    /// End-to-end response time `t4 - t1` for this reply.
    pub response_nanos: u64,
    /// Whether this was the first reply (delivered to the application);
    /// later replies are redundant.
    pub first: bool,
    /// Timing verdict for a delivered reply (`"timely"`, a failure
    /// description, ...); `None` for redundant replies.
    pub verdict: Option<String>,
    /// Gateway-side handling time for this reply (ingest-shard stats
    /// application in the concurrent handler), when measured.
    pub ingest_nanos: Option<u64>,
}

impl ReplyObservation {
    fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .field("replica", self.replica)
            .field("at_ns", self.at_nanos)
            .field("ts_ns", self.service_nanos)
            .field("tq_ns", self.queue_nanos)
            .field("td_ns", self.gateway_nanos)
            .field("response_ns", self.response_nanos)
            .field("first", self.first)
            .field("verdict", self.verdict.clone())
            .field("ingest_ns", self.ingest_nanos)
            .build()
    }

    /// Rebuilds a reply from a parsed journal object. Returns `None` when
    /// a required field is missing or mistyped.
    pub fn from_json(value: &JsonValue) -> Option<Self> {
        Some(ReplyObservation {
            replica: value.get("replica")?.as_u64()?,
            at_nanos: value.get("at_ns")?.as_u64()?,
            service_nanos: value.get("ts_ns")?.as_u64()?,
            queue_nanos: value.get("tq_ns")?.as_u64()?,
            gateway_nanos: value.get("td_ns")?.as_u64()?,
            response_nanos: value.get("response_ns")?.as_u64()?,
            first: value.get("first")?.as_bool()?,
            verdict: value
                .get("verdict")
                .and_then(|v| v.as_str())
                .map(str::to_owned),
            ingest_nanos: value.get("ingest_ns").and_then(JsonValue::as_u64),
        })
    }
}

/// Terminal state of a request span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanOutcome {
    /// A reply was delivered to the application.
    Delivered,
    /// The handler gave up (no reply before the extended deadline).
    GaveUp,
    /// The attempt was superseded by a deadline-driven retry that won (or
    /// was retired when its logical request resolved another way); it is
    /// not a timing failure.
    Superseded,
    /// The span was still pending when the journal was flushed.
    Pending,
}

impl SpanOutcome {
    fn as_str(self) -> &'static str {
        match self {
            SpanOutcome::Delivered => "delivered",
            SpanOutcome::GaveUp => "gave_up",
            SpanOutcome::Superseded => "superseded",
            SpanOutcome::Pending => "pending",
        }
    }

    /// Inverse of [`SpanOutcome::as_str`], for journal replay.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "delivered" => Some(SpanOutcome::Delivered),
            "gave_up" => Some(SpanOutcome::GaveUp),
            "superseded" => Some(SpanOutcome::Superseded),
            "pending" => Some(SpanOutcome::Pending),
            _ => None,
        }
    }
}

/// The full trace of one request, emitted as a single JSONL line.
#[derive(Clone, Debug, PartialEq)]
pub struct RequestSpan {
    /// Handler-assigned sequence number.
    pub seq: u64,
    /// Client identity, when known.
    pub client: Option<u64>,
    /// Method identifier of the request.
    pub method: u32,
    /// Application submit time `t0` (nanoseconds).
    pub t0_nanos: u64,
    /// Multicast send time `t1` (nanoseconds).
    pub t1_nanos: u64,
    /// QoS deadline for the request (nanoseconds, relative to `t1`).
    pub deadline_nanos: u64,
    /// Replica set chosen by the selection algorithm, in send order.
    pub selected: Vec<u64>,
    /// Per-replica predicted P(reply before deadline) from the cached
    /// CDF model at plan time, parallel to `selected`. Empty when the
    /// planner had no model predictions (cold start, crash fallback).
    pub predicted: Vec<f64>,
    /// Version of the planning view / model snapshot the prediction came
    /// from (the concurrent handler's publish version; strategy planners
    /// report their own generation), for joining spans to model epochs.
    pub view_version: Option<u64>,
    /// Selection overhead `δ` for this plan (nanoseconds): the paper's
    /// algorithm-execution cost, previously only in a histogram.
    pub plan_nanos: Option<u64>,
    /// Whether this was a probe (sent to all replicas, not client-paid).
    pub probe: bool,
    /// For a deadline-driven retry attempt, the seq of the attempt it
    /// supersedes.
    pub retry_of: Option<u64>,
    /// Every reply observed so far, in arrival order.
    pub replies: Vec<ReplyObservation>,
    /// How the span ended.
    pub outcome: SpanOutcome,
    /// Time the span ended (first delivery or give-up), if it did.
    pub end_nanos: Option<u64>,
    /// Whether a QoS callback (timing-failure notification) was issued
    /// for this span — the no-miss-without-callback invariant checks
    /// this against the delivered verdict.
    pub callback: bool,
    /// Detector verdict recorded at give-up (`"failure"` or
    /// `"failure_qos_violated"`); `None` for spans that did not give up.
    /// Makes the callback decision auditable from the journal alone.
    pub give_up_verdict: Option<String>,
    /// Ids of fault windows (see the faults crate) active on a selected
    /// replica, or network-wide, at any point between `t1` and span end.
    pub fault_windows: Vec<u64>,
}

impl RequestSpan {
    /// Starts a span at plan time.
    pub fn begin(seq: u64, method: u32, t0_nanos: u64, t1_nanos: u64) -> Self {
        RequestSpan {
            seq,
            client: None,
            method,
            t0_nanos,
            t1_nanos,
            deadline_nanos: 0,
            selected: Vec::new(),
            predicted: Vec::new(),
            view_version: None,
            plan_nanos: None,
            probe: false,
            retry_of: None,
            replies: Vec::new(),
            outcome: SpanOutcome::Pending,
            end_nanos: None,
            callback: false,
            give_up_verdict: None,
            fault_windows: Vec::new(),
        }
    }

    /// Size of the selected replica set.
    pub fn selection_size(&self) -> usize {
        self.selected.len()
    }

    /// Number of redundant (non-first) replies observed.
    pub fn redundant_replies(&self) -> usize {
        self.replies.iter().filter(|r| !r.first).count()
    }

    /// Combined predicted probability that at least one selected replica
    /// meets the deadline: `1 - Π(1 - pᵢ)` over the per-replica
    /// predictions. `None` when no predictions were recorded.
    pub fn predicted_set_probability(&self) -> Option<f64> {
        if self.predicted.is_empty() {
            return None;
        }
        let miss_all: f64 = self.predicted.iter().map(|p| 1.0 - p).product();
        Some(1.0 - miss_all)
    }

    /// Renders the span as one JSON object.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .field("type", "request")
            .field("seq", self.seq)
            .field("client", self.client)
            .field("method", self.method)
            .field("t0_ns", self.t0_nanos)
            .field("t1_ns", self.t1_nanos)
            .field("deadline_ns", self.deadline_nanos)
            .field("selected", self.selected.clone())
            .field("selection_size", self.selection_size())
            .field("predicted", self.predicted.clone())
            .field("view_version", self.view_version)
            .field("plan_ns", self.plan_nanos)
            .field("probe", self.probe)
            .field("retry_of", self.retry_of)
            .field(
                "replies",
                JsonValue::Array(self.replies.iter().map(ReplyObservation::to_json).collect()),
            )
            .field("outcome", self.outcome.as_str())
            .field("end_ns", self.end_nanos)
            .field("callback", self.callback)
            .field("give_up_verdict", self.give_up_verdict.clone())
            .field("fault_windows", self.fault_windows.clone())
            .build()
    }

    /// Rebuilds a span from a parsed `"type":"request"` journal object.
    /// Returns `None` when a required field is missing or mistyped.
    /// Optional fields added after the first journal format (predictions,
    /// plan time, callback, fault windows) default to empty, so older
    /// journals still replay.
    pub fn from_json(value: &JsonValue) -> Option<Self> {
        if value.get("type")?.as_str()? != "request" {
            return None;
        }
        let replies = value
            .get("replies")?
            .as_array()?
            .iter()
            .map(ReplyObservation::from_json)
            .collect::<Option<Vec<_>>>()?;
        Some(RequestSpan {
            seq: value.get("seq")?.as_u64()?,
            client: value.get("client").and_then(JsonValue::as_u64),
            method: u32::try_from(value.get("method")?.as_u64()?).ok()?,
            t0_nanos: value.get("t0_ns")?.as_u64()?,
            t1_nanos: value.get("t1_ns")?.as_u64()?,
            deadline_nanos: value.get("deadline_ns")?.as_u64()?,
            selected: value
                .get("selected")?
                .as_array()?
                .iter()
                .map(JsonValue::as_u64)
                .collect::<Option<Vec<_>>>()?,
            predicted: value
                .get("predicted")
                .and_then(JsonValue::as_array)
                .map(|items| {
                    items
                        .iter()
                        .map(JsonValue::as_f64)
                        .collect::<Option<Vec<_>>>()
                })
                .unwrap_or(Some(Vec::new()))?,
            view_version: value.get("view_version").and_then(JsonValue::as_u64),
            plan_nanos: value.get("plan_ns").and_then(JsonValue::as_u64),
            probe: value.get("probe")?.as_bool()?,
            retry_of: value.get("retry_of").and_then(JsonValue::as_u64),
            replies,
            outcome: SpanOutcome::parse(value.get("outcome")?.as_str()?)?,
            end_nanos: value.get("end_ns").and_then(JsonValue::as_u64),
            callback: value
                .get("callback")
                .and_then(JsonValue::as_bool)
                .unwrap_or(false),
            give_up_verdict: value
                .get("give_up_verdict")
                .and_then(JsonValue::as_str)
                .map(str::to_owned),
            fault_windows: value
                .get("fault_windows")
                .and_then(JsonValue::as_array)
                .map(|items| {
                    items
                        .iter()
                        .map(JsonValue::as_u64)
                        .collect::<Option<Vec<_>>>()
                })
                .unwrap_or(Some(Vec::new()))?,
        })
    }
}

/// Destination for journal lines.
pub trait Sink: Send {
    /// Receives one complete JSONL line (no trailing newline).
    fn emit(&mut self, line: &str);

    /// Flushes buffered lines to their destination.
    fn flush(&mut self) {}
}

/// Test sink retaining every line in memory.
#[derive(Default)]
pub struct MemorySink {
    lines: Arc<Mutex<Vec<String>>>,
}

impl Sink for MemorySink {
    fn emit(&mut self, line: &str) {
        lock(&self.lines).push(line.to_owned());
    }
}

/// Read side of a [`MemorySink`]; usable while the journal is live.
#[derive(Clone, Debug)]
pub struct MemoryReader {
    lines: Arc<Mutex<Vec<String>>>,
}

impl MemoryReader {
    /// All lines emitted so far.
    pub fn lines(&self) -> Vec<String> {
        lock(&self.lines).clone()
    }

    /// Parses nothing — returns the lines that contain `needle`.
    pub fn lines_containing(&self, needle: &str) -> Vec<String> {
        lock(&self.lines)
            .iter()
            .filter(|l| l.contains(needle))
            .cloned()
            .collect()
    }
}

fn lock(lines: &Mutex<Vec<String>>) -> std::sync::MutexGuard<'_, Vec<String>> {
    lines.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// Buffered sink writing JSONL to any `io::Write` (a file in practice).
pub struct WriterSink<W: Write + Send> {
    writer: std::io::BufWriter<W>,
}

impl<W: Write + Send> WriterSink<W> {
    /// Wraps `writer` in a buffered journal sink.
    pub fn new(writer: W) -> Self {
        WriterSink {
            writer: std::io::BufWriter::new(writer),
        }
    }
}

impl<W: Write + Send> Sink for WriterSink<W> {
    fn emit(&mut self, line: &str) {
        // Journal output is best-effort; losing lines on a full disk must
        // not take down the experiment.
        let _ = writeln!(self.writer, "{line}");
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

impl<W: Write + Send> Drop for WriterSink<W> {
    fn drop(&mut self) {
        // A run that never calls `Journal::flush` (panic unwind, early
        // return) must still leave a readable journal behind.
        let _ = self.writer.flush();
    }
}

/// File sink with size-based rotation: when the active `journal.jsonl`
/// grows past `max_bytes` it is renamed to `journal.jsonl.N` (N counting
/// up from 1, oldest first) and a fresh file is started, so unbounded
/// chaos soaks never produce one unbounded file. A rotation boundary
/// always falls between lines. The forensics analyzer reads the rotated
/// parts back in `N` order followed by the active file.
pub struct RotatingSink {
    dir: std::path::PathBuf,
    max_bytes: u64,
    written: u64,
    next_index: u32,
    writer: Option<std::io::BufWriter<std::fs::File>>,
}

impl RotatingSink {
    /// File name of the active journal inside the sink's directory.
    pub const ACTIVE: &'static str = "journal.jsonl";

    /// Creates `dir` if needed and opens a fresh `journal.jsonl` in it.
    /// `max_bytes` of 0 disables rotation (plain bounded buffering).
    pub fn create(dir: impl AsRef<std::path::Path>, max_bytes: u64) -> std::io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let file = std::fs::File::create(dir.join(Self::ACTIVE))?;
        Ok(RotatingSink {
            dir,
            max_bytes,
            written: 0,
            next_index: 1,
            writer: Some(std::io::BufWriter::new(file)),
        })
    }

    fn rotate(&mut self) {
        // Flush and close the active file before renaming it; reopen
        // best-effort — on failure we keep appending to the old file.
        if let Some(mut w) = self.writer.take() {
            let _ = w.flush();
        }
        let active = self.dir.join(Self::ACTIVE);
        let rotated = self
            .dir
            .join(format!("{}.{}", Self::ACTIVE, self.next_index));
        if std::fs::rename(&active, &rotated).is_ok() {
            self.next_index += 1;
        }
        match std::fs::File::create(&active) {
            Ok(file) => {
                self.writer = Some(std::io::BufWriter::new(file));
                self.written = 0;
            }
            Err(_) => {
                // Could not reopen: reattach to the rotated file so lines
                // keep landing somewhere.
                if let Ok(file) = std::fs::OpenOptions::new().append(true).open(&rotated) {
                    self.writer = Some(std::io::BufWriter::new(file));
                }
            }
        }
    }
}

impl Sink for RotatingSink {
    fn emit(&mut self, line: &str) {
        if self.max_bytes > 0 && self.written >= self.max_bytes {
            self.rotate();
        }
        if let Some(w) = self.writer.as_mut() {
            let _ = writeln!(w, "{line}");
            self.written += line.len() as u64 + 1;
        }
    }

    fn flush(&mut self) {
        if let Some(w) = self.writer.as_mut() {
            let _ = w.flush();
        }
    }
}

impl Drop for RotatingSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Sink that discards everything (observability disabled).
#[derive(Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn emit(&mut self, _line: &str) {}
}

/// Cloneable handle writing spans and events to a shared [`Sink`].
#[derive(Clone)]
pub struct Journal {
    sink: Arc<Mutex<dyn Sink>>,
}

impl Journal {
    /// Wraps any sink in a cloneable journal handle.
    pub fn new(sink: impl Sink + 'static) -> Self {
        Journal {
            sink: Arc::new(Mutex::new(sink)),
        }
    }

    /// Journal that keeps lines in memory, plus its reader.
    pub fn in_memory() -> (Self, MemoryReader) {
        let sink = MemorySink::default();
        let reader = MemoryReader {
            lines: Arc::clone(&sink.lines),
        };
        (Journal::new(sink), reader)
    }

    /// Journal that drops everything.
    pub fn null() -> Self {
        Journal::new(NullSink)
    }

    /// Emits a finished (or flushed-while-pending) request span.
    pub fn emit_span(&self, span: &RequestSpan) {
        self.emit_json(&span.to_json());
    }

    /// Emits an arbitrary event object; `kind` becomes the `"type"` field.
    pub fn emit_event(&self, kind: &str, fields: crate::json::JsonObject) {
        let mut object = JsonValue::object().field("type", kind).build();
        if let (JsonValue::Object(target), JsonValue::Object(extra)) = (&mut object, fields.build())
        {
            target.extend(extra);
        }
        self.emit_json(&object);
    }

    fn emit_json(&self, value: &JsonValue) {
        self.lock().emit(&value.render());
    }

    /// Flushes the underlying sink.
    pub fn flush(&self) {
        self.lock().flush();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, dyn Sink + 'static> {
        self.sink
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Journal { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_span() -> RequestSpan {
        let mut span = RequestSpan::begin(7, 3, 1_000, 1_100);
        span.client = Some(1);
        span.deadline_nanos = 200_000_000;
        span.selected = vec![2, 5];
        span.predicted = vec![0.75, 0.9];
        span.view_version = Some(12);
        span.plan_nanos = Some(4_200);
        span.replies.push(ReplyObservation {
            replica: 5,
            at_nanos: 90_001_100,
            service_nanos: 80_000_000,
            queue_nanos: 5_000_000,
            gateway_nanos: 5_000_000,
            response_nanos: 90_000_000,
            first: true,
            verdict: Some("timely".to_owned()),
            ingest_nanos: Some(350),
        });
        span.replies.push(ReplyObservation {
            replica: 2,
            at_nanos: 95_001_100,
            service_nanos: 90_000_000,
            queue_nanos: 2_000_000,
            gateway_nanos: 3_000_000,
            response_nanos: 95_000_000,
            first: false,
            verdict: None,
            ingest_nanos: None,
        });
        span.outcome = SpanOutcome::Delivered;
        span.end_nanos = Some(90_001_100);
        span.callback = false;
        span.fault_windows = vec![3];
        span
    }

    #[test]
    fn span_renders_expected_fields() {
        let line = sample_span().to_json().render();
        for needle in [
            r#""type":"request""#,
            r#""seq":7"#,
            r#""selection_size":2"#,
            r#""ts_ns":80000000"#,
            r#""first":true"#,
            r#""verdict":"timely""#,
            r#""outcome":"delivered""#,
        ] {
            assert!(line.contains(needle), "missing {needle} in {line}");
        }
    }

    #[test]
    fn memory_journal_round_trips() {
        let (journal, reader) = Journal::in_memory();
        journal.emit_span(&sample_span());
        journal.emit_event(
            "sim_event",
            crate::json::JsonValue::object().field("node", 3u64),
        );
        journal.flush();
        let lines = reader.lines();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains(r#""type":"request""#));
        assert!(lines[1].starts_with(r#"{"type":"sim_event""#));
        assert_eq!(reader.lines_containing("sim_event").len(), 1);
    }

    /// `Write` target observable from outside the sink, so tests can see
    /// what reached the destination without consuming the sink.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl SharedBuf {
        fn contents(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn writer_sink_writes_lines() {
        let buffer = SharedBuf::default();
        let mut sink = WriterSink::new(buffer.clone());
        sink.emit(r#"{"a":1}"#);
        sink.emit(r#"{"b":2}"#);
        sink.flush();
        assert_eq!(buffer.contents(), "{\"a\":1}\n{\"b\":2}\n");
    }

    #[test]
    fn writer_sink_flushes_on_drop() {
        let buffer = SharedBuf::default();
        {
            let mut sink = WriterSink::new(buffer.clone());
            sink.emit(r#"{"a":1}"#);
            // No explicit flush: the line is still in the BufWriter here.
        }
        assert_eq!(buffer.contents(), "{\"a\":1}\n");
    }

    #[test]
    fn rotating_sink_rotates_between_lines() {
        let dir = std::env::temp_dir().join(format!(
            "aqua-rotate-test-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        {
            let mut sink = RotatingSink::create(&dir, 16).unwrap();
            for i in 0..6 {
                sink.emit(&format!(r#"{{"line":{i}}}"#));
            }
            // Dropping flushes every part.
        }
        let part1 = std::fs::read_to_string(dir.join("journal.jsonl.1")).unwrap();
        let part2 = std::fs::read_to_string(dir.join("journal.jsonl.2")).unwrap();
        let active = std::fs::read_to_string(dir.join("journal.jsonl")).unwrap();
        let all = format!("{part1}{part2}{active}");
        // Every line intact and in order across the rotation boundaries.
        let expected: String = (0..6).map(|i| format!("{{\"line\":{i}}}\n")).collect();
        assert_eq!(all, expected);
        assert!(part1.len() >= 16, "rotation happens after the cap");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn span_round_trips_through_parser() {
        let span = sample_span();
        let line = span.to_json().render();
        let parsed = crate::parse::parse(&line).unwrap();
        assert_eq!(RequestSpan::from_json(&parsed).unwrap(), span);
    }

    #[test]
    fn span_without_new_fields_still_parses() {
        // A journal written before the causal-tracing fields existed.
        let legacy = r#"{"type":"request","seq":1,"client":null,"method":0,
            "t0_ns":0,"t1_ns":10,"deadline_ns":1000,"selected":[4],
            "selection_size":1,"probe":false,"retry_of":null,"replies":[],
            "outcome":"pending","end_ns":null}"#;
        let parsed = crate::parse::parse(legacy).unwrap();
        let span = RequestSpan::from_json(&parsed).unwrap();
        assert_eq!(span.seq, 1);
        assert!(span.predicted.is_empty());
        assert!(span.fault_windows.is_empty());
        assert!(!span.callback);
        assert!(span.give_up_verdict.is_none());
    }

    #[test]
    fn predicted_set_probability_combines() {
        let mut span = sample_span();
        let p = span.predicted_set_probability().unwrap();
        assert!((p - (1.0 - 0.25 * 0.1)).abs() < 1e-12);
        span.predicted.clear();
        assert!(span.predicted_set_probability().is_none());
    }

    #[test]
    fn redundant_reply_count() {
        assert_eq!(sample_span().redundant_replies(), 1);
    }
}
