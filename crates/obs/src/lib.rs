//! # aqua-obs — unified observability for the AQuA reproduction
//!
//! The paper's selection algorithm is driven entirely by measured
//! quantities — per-replica service times `ts`, queue delays `tq`, gateway
//! delays `td`, the algorithm's own overhead `δ`, and the frequency of
//! timing failures (§5.2–§5.4). This crate is the single place those
//! measurements become observable:
//!
//! * [`metrics`] — a lock-free registry of atomic counters, gauges, and
//!   log-linear latency histograms with p50/p95/p99/max estimation.
//! * [`journal`] — a structured per-request trace journal: each request is
//!   a span carrying `t0/t1/t4`, the selected replica set, per-reply
//!   `(ts, tq, td)` decompositions, first-vs-redundant classification,
//!   and the timing verdict, emitted as JSONL through a pluggable sink.
//! * [`export`] — Prometheus text format and JSON snapshot renderers.
//! * [`json`] — the hand-rolled JSON writer both of the above use (the
//!   build is air-gapped, so there is no `serde_json`).
//! * [`parse`] — the matching JSON reader, used by the forensics
//!   analyzer to replay journals and rebuild span trees.
//!
//! The crate is dependency-free and layered below everything else:
//! gateway, runtime, sim, workload, and bench all feed the same [`Obs`]
//! handle, so a simulated run and a socket run produce comparable
//! journals and snapshots.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contention;
pub mod export;
pub mod journal;
pub mod json;
pub mod metrics;
pub mod parse;

use journal::{Journal, MemoryReader, RotatingSink, WriterSink};
use metrics::Registry;
use std::io;
use std::path::Path;
use std::sync::Arc;

/// Cloneable bundle of a metrics [`Registry`] and a trace [`Journal`].
///
/// This is the handle the instrumented layers accept. Cloning is cheap
/// (two `Arc`s); all clones observe into the same registry and journal.
#[derive(Clone, Debug)]
pub struct Obs {
    registry: Arc<Registry>,
    journal: Journal,
}

impl Obs {
    /// Observability with an in-memory journal; returns the reader for
    /// inspecting emitted lines. This is the test configuration.
    pub fn in_memory() -> (Self, MemoryReader) {
        let (journal, reader) = Journal::in_memory();
        (
            Obs {
                registry: Arc::new(Registry::new()),
                journal,
            },
            reader,
        )
    }

    /// Observability that counts metrics but discards journal lines.
    pub fn metrics_only() -> Self {
        Obs {
            registry: Arc::new(Registry::new()),
            journal: Journal::null(),
        }
    }

    /// Observability writing the journal to `dir/journal.jsonl` (buffered).
    /// Creates `dir` if needed.
    pub fn to_dir(dir: impl AsRef<Path>) -> io::Result<Self> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let file = std::fs::File::create(dir.join("journal.jsonl"))?;
        Ok(Obs {
            registry: Arc::new(Registry::new()),
            journal: Journal::new(WriterSink::new(file)),
        })
    }

    /// Observability writing the journal to `dir/journal.jsonl` with
    /// size-based rotation: once the active file passes `max_bytes` it is
    /// renamed `journal.jsonl.N` and a fresh file starts, so long chaos
    /// soaks never grow one unbounded file. `max_bytes` of 0 disables
    /// rotation. Creates `dir` if needed.
    pub fn to_dir_rotating(dir: impl AsRef<Path>, max_bytes: u64) -> io::Result<Self> {
        Ok(Obs {
            registry: Arc::new(Registry::new()),
            journal: Journal::new(RotatingSink::create(dir, max_bytes)?),
        })
    }

    /// The shared metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The shared trace journal.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Renders the registry in Prometheus text format.
    pub fn prometheus(&self) -> String {
        export::to_prometheus(&self.registry.snapshot())
    }

    /// Renders the registry as a pretty-printed JSON document.
    pub fn json_snapshot(&self) -> String {
        export::to_json(&self.registry.snapshot()).render_pretty()
    }

    /// Flushes the journal and writes `metrics.prom` + `metrics.json`
    /// into `dir`. Pairs with [`Obs::to_dir`] at the end of a run.
    pub fn dump(&self, dir: impl AsRef<Path>) -> io::Result<()> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        self.journal.flush();
        std::fs::write(dir.join("metrics.prom"), self.prometheus())?;
        std::fs::write(dir.join("metrics.json"), self.json_snapshot())?;
        Ok(())
    }
}

/// Reads the `AQUA_OBS` environment toggle used by the experiment
/// binaries: unset/empty/`0`/`off` disables observability, any other
/// value is treated as the output directory (`1`/`on` map to
/// `"obs-out"`).
pub fn dir_from_env() -> Option<String> {
    match std::env::var("AQUA_OBS") {
        Ok(value) => match value.trim() {
            "" | "0" | "off" | "false" => None,
            "1" | "on" | "true" => Some("obs-out".to_owned()),
            dir => Some(dir.to_owned()),
        },
        Err(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state() {
        let (obs, reader) = Obs::in_memory();
        let clone = obs.clone();
        clone.registry().counter("a_total", &[]).inc();
        obs.registry().counter("a_total", &[]).inc();
        clone
            .journal()
            .emit_event("test", json::JsonValue::object().field("x", 1u64));
        assert_eq!(obs.registry().counter("a_total", &[]).get(), 2);
        assert_eq!(reader.lines().len(), 1);
    }

    #[test]
    fn dump_writes_all_artifacts() {
        let dir = std::env::temp_dir().join(format!(
            "aqua-obs-test-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let obs = Obs::to_dir(&dir).unwrap();
        obs.registry().histogram("lat_ns", &[]).record(42);
        obs.journal()
            .emit_event("probe", json::JsonValue::object().field("n", 1u64));
        obs.dump(&dir).unwrap();
        let journal = std::fs::read_to_string(dir.join("journal.jsonl")).unwrap();
        assert!(journal.contains("\"type\":\"probe\""));
        assert!(std::fs::read_to_string(dir.join("metrics.prom"))
            .unwrap()
            .contains("lat_ns"));
        assert!(std::fs::read_to_string(dir.join("metrics.json"))
            .unwrap()
            .contains("histograms"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
