//! Multi-threaded stress of the concurrent client: many caller threads
//! hammering one shared [`AquaClient`] while a fault plan stalls the
//! preferred replica, forcing retries, sibling groups, and late replies
//! to retired attempts — the exact races the sharded pending table and
//! the `answered` CAS protocol exist to resolve.
//!
//! Invariants checked after the dust settles:
//! * no duplicate first-reply delivery (`delivered` == successful calls),
//! * no lost pending entries (`pending_count()` drains to zero),
//! * the handler's retry count matches the journal's `retry` spans.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration as StdDuration;

use aqua_core::qos::{QosSpec, ReplicaId};
use aqua_core::repository::MethodId;
use aqua_core::time::{Duration, Instant};
use aqua_faults::FaultPlan;
use aqua_runtime::{AquaClient, AquaClientConfig, ReplicaServer, ReplicaServerConfig};
use aqua_strategies::{FastestMean, ModelBased};

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

fn replicas_of(servers: &[ReplicaServer]) -> Vec<(ReplicaId, SocketAddr)> {
    servers.iter().map(|s| (s.replica(), s.addr())).collect()
}

/// Six caller threads share the client while the pinned replica stalls
/// mid-run: every call issued into the pause window rides a retry to the
/// surviving replica, and the stalled replica's backlog later drains as
/// late replies to already-retired attempts.
#[test]
fn stress_with_stalled_replica_keeps_the_pending_table_consistent() {
    let (obs, reader) = aqua_obs::Obs::in_memory();

    // Replica 0 is fastest (5 ms) and pauses from 600 ms to 1.4 s on its
    // own clock; replica 1 (20 ms) carries the retries.
    let plan = FaultPlan::new().pause(0, Instant::from_millis(600), ms(800));
    let mut servers = Vec::new();
    for i in 0..2u64 {
        let mut cfg = ReplicaServerConfig::quick(ReplicaId::new(i), if i == 0 { 5 } else { 20 });
        if i == 0 {
            cfg.faults = Some(plan.instantiate(7));
        }
        servers.push(ReplicaServer::spawn(cfg).expect("spawn"));
    }

    let mut config = AquaClientConfig::new(QosSpec::new(ms(200), 0.9).unwrap());
    config.give_up_after = ms(4_000);
    config.retry_after = Some(ms(150));
    config.obs = Some(obs.clone());
    // FastestMean k=1 pins warm selections to replica 0, so stalls are
    // guaranteed to hit and retries are guaranteed to re-plan.
    let client = Arc::new(
        AquaClient::connect(
            &replicas_of(&servers),
            config,
            Box::new(FastestMean { k: 1 }),
        )
        .expect("connect"),
    );

    // Warm up so planning leaves cold start before the fault window.
    for _ in 0..3 {
        client.call(MethodId::DEFAULT, b"warm").expect("warm-up ok");
    }

    let successes = Arc::new(AtomicU64::new(0));
    let failures = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for t in 0..6u64 {
        let client = Arc::clone(&client);
        let successes = Arc::clone(&successes);
        let failures = Arc::clone(&failures);
        handles.push(std::thread::spawn(move || {
            // ~40 calls spread over ~1.6 s: before, inside, and after the
            // pause window.
            for i in 0..40u64 {
                let payload = format!("t{t}c{i}");
                match client.call(MethodId::DEFAULT, payload.as_bytes()) {
                    Ok(out) => {
                        assert_eq!(
                            out.payload.as_ref(),
                            payload.as_bytes(),
                            "each call gets its own echo back"
                        );
                        successes.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {
                        failures.fetch_add(1, Ordering::Relaxed);
                    }
                }
                std::thread::sleep(StdDuration::from_millis(25));
            }
        }));
    }
    for h in handles {
        h.join().expect("caller thread");
    }
    // Let the stalled replica's backlog drain: its late replies land on
    // retired attempts and must be classified without disturbing state.
    std::thread::sleep(StdDuration::from_millis(600));
    client.finish_observability();

    let ok = successes.load(Ordering::Relaxed);
    let failed = failures.load(Ordering::Relaxed);
    assert_eq!(ok + failed, 6 * 40, "every call resolved exactly once");
    assert_eq!(
        failed, 0,
        "the 4 s give-up window dwarfs the 800 ms stall; retries mask it"
    );

    client.with_handler(|h| {
        let stats = h.stats();
        // No duplicate first-reply delivery: the handler delivered exactly
        // one outcome per successful call (warm-ups included).
        assert_eq!(
            stats.delivered,
            ok + 3,
            "one delivery per call, never two: {stats:?}"
        );
        assert_eq!(h.pending_count(), 0, "no lost pending entries");
        assert!(
            stats.retries >= 1,
            "calls inside the pause window must have retried: {stats:?}"
        );
        // Every retry that was planned is journalled, one span each.
        let retry_spans = reader.lines_containing(r#""type":"retry""#);
        assert_eq!(
            retry_spans.len() as u64,
            stats.retries,
            "retry count matches journal spans: {retry_spans:?}"
        );
    });
}

/// A pure-contention hammer: sixteen threads, no faults, zero service
/// time, model-based planning. Every call must deliver exactly once and
/// the pending table must drain completely.
#[test]
fn hammer_shared_client_with_sixteen_threads() {
    let servers: Vec<ReplicaServer> = (0..3u64)
        .map(|i| {
            ReplicaServer::spawn(ReplicaServerConfig::quick(ReplicaId::new(i), 0)).expect("spawn")
        })
        .collect();
    let mut config = AquaClientConfig::new(QosSpec::new(ms(500), 0.9).unwrap());
    config.give_up_after = ms(5_000);
    let client = Arc::new(
        AquaClient::connect(
            &replicas_of(&servers),
            config,
            Box::new(ModelBased::default()),
        )
        .expect("connect"),
    );

    const THREADS: u64 = 16;
    const CALLS: u64 = 50;
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let client = Arc::clone(&client);
        handles.push(std::thread::spawn(move || {
            for i in 0..CALLS {
                let payload = format!("h{t}x{i}");
                let out = client
                    .call(MethodId::DEFAULT, payload.as_bytes())
                    .expect("call ok");
                assert_eq!(out.payload.as_ref(), payload.as_bytes());
            }
        }));
    }
    for h in handles {
        h.join().expect("caller thread");
    }

    client.with_handler(|h| {
        let stats = h.stats();
        assert_eq!(stats.requests, THREADS * CALLS, "one plan per call");
        assert_eq!(
            stats.delivered,
            THREADS * CALLS,
            "exactly one delivery per call: {stats:?}"
        );
        assert_eq!(h.pending_count(), 0, "pending table fully drained");
    });
}
