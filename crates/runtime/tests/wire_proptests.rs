//! Property tests for the wire protocol: roundtrips, and robustness of the
//! decoder against arbitrary bytes (it must reject, never panic).

use aqua_runtime::wire::{Frame, FrameAssembler};
use bytes::Bytes;
use proptest::prelude::*;

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (
            any::<u64>(),
            any::<u32>(),
            prop::collection::vec(any::<u8>(), 0..512)
        )
            .prop_map(|(seq, method, payload)| Frame::Request {
                seq,
                method,
                payload: Bytes::from(payload),
            }),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u32>(),
            any::<u32>(),
            prop::collection::vec(any::<u8>(), 0..512),
        )
            .prop_map(
                |(seq, replica, service_ns, queue_ns, queue_len, method, payload)| Frame::Reply {
                    seq,
                    replica,
                    service_ns,
                    queue_ns,
                    queue_len,
                    method,
                    payload: Bytes::from(payload),
                }
            ),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u32>(),
            any::<u32>()
        )
            .prop_map(|(replica, service_ns, queue_ns, queue_len, method)| {
                Frame::PerfUpdate {
                    replica,
                    service_ns,
                    queue_ns,
                    queue_len,
                    method,
                }
            }),
        any::<u64>().prop_map(|client| Frame::Hello { client }),
    ]
}

proptest! {
    #[test]
    fn every_frame_roundtrips(frame in arb_frame()) {
        let encoded = frame.encode();
        let mut cursor = std::io::Cursor::new(encoded.to_vec());
        let decoded = Frame::read_from(&mut cursor).expect("own encoding decodes");
        prop_assert_eq!(decoded, frame);
        prop_assert_eq!(
            cursor.position() as usize,
            cursor.get_ref().len(),
            "no trailing bytes"
        );
    }

    #[test]
    fn frames_stream_without_framing_errors(frames in prop::collection::vec(arb_frame(), 1..20)) {
        let mut buf = Vec::new();
        for f in &frames {
            f.write_to(&mut buf).expect("vec write");
        }
        let mut cursor = std::io::Cursor::new(buf);
        for f in &frames {
            prop_assert_eq!(&Frame::read_from(&mut cursor).expect("streamed"), f);
        }
    }

    #[test]
    fn arbitrary_bodies_never_panic(body in prop::collection::vec(any::<u8>(), 0..256)) {
        // decode must either produce a frame or a clean error.
        let _ = Frame::decode(Bytes::from(body));
    }

    #[test]
    fn truncated_encodings_error_cleanly(frame in arb_frame(), cut in 0usize..100) {
        let encoded = frame.encode();
        if cut >= encoded.len() {
            return Ok(());
        }
        // Truncate the stream mid-frame: reading must error, not panic or
        // hang (cursor EOF).
        let mut cursor = std::io::Cursor::new(encoded[..cut].to_vec());
        prop_assert!(Frame::read_from(&mut cursor).is_err());
    }

    #[test]
    fn assembler_decodes_across_arbitrary_chunk_boundaries(
        frames in prop::collection::vec(arb_frame(), 1..12),
        cuts in prop::collection::vec(1usize..64, 0..64),
    ) {
        // Concatenate the stream, then feed it to the incremental decoder
        // in arbitrary-sized chunks — splits land mid-header, mid-length-
        // prefix, and mid-payload. The assembler must reproduce exactly
        // the original frame sequence regardless of chunking.
        let mut stream = Vec::new();
        for f in &frames {
            f.write_to(&mut stream).expect("vec write");
        }
        let mut assembler = FrameAssembler::new();
        let mut decoded = Vec::new();
        let mut offset = 0usize;
        let mut cuts = cuts.into_iter();
        while offset < stream.len() {
            let chunk = cuts.next().unwrap_or(usize::MAX).min(stream.len() - offset);
            assembler.extend(&stream[offset..offset + chunk]);
            offset += chunk;
            while let Some(frame) = assembler.next_frame().expect("clean stream") {
                decoded.push(frame);
            }
        }
        prop_assert_eq!(decoded, frames);
        prop_assert_eq!(assembler.pending(), 0, "no leftover bytes");
    }

    #[test]
    fn corrupted_tag_is_rejected(frame in arb_frame(), tag in 5u8..255) {
        let encoded = frame.encode().to_vec();
        let mut corrupted = encoded.clone();
        corrupted[4] = tag; // the tag byte follows the 4-byte length prefix
        let mut cursor = std::io::Cursor::new(corrupted);
        prop_assert!(Frame::read_from(&mut cursor).is_err());
    }
}
