//! Resilience of the socket runtime under injected faults: scheduled
//! crash-and-recover windows, reconnect-with-probation, deadline-driven
//! retries, and fast failure when every replica is gone.
//!
//! These tests drive real TCP connections and threads, so every timing
//! constant is chosen with a wide margin: fault windows are hundreds of
//! milliseconds long and assertions only order events, never measure them
//! tightly.

use std::net::SocketAddr;
use std::time::{Duration as StdDuration, Instant as StdInstant};

use aqua_core::qos::{QosSpec, ReplicaId};
use aqua_core::repository::MethodId;
use aqua_core::time::{Duration, Instant};
use aqua_faults::FaultPlan;
use aqua_runtime::{
    AquaClient, AquaClientConfig, CallError, ReconnectPolicy, ReplicaServer, ReplicaServerConfig,
};
use aqua_strategies::{FastestMean, ModelBased};

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

fn replicas_of(servers: &[ReplicaServer]) -> Vec<(ReplicaId, SocketAddr)> {
    servers.iter().map(|s| (s.replica(), s.addr())).collect()
}

/// The acceptance scenario: a replica crashes on a schedule and recovers;
/// the client reconnects with backoff, the replica rejoins the repository
/// on probation, serves shadow traffic until `l` fresh samples arrive, and
/// re-enters the selection set — all visible in the obs journal.
#[test]
fn crashed_replica_recovers_and_reenters_selection_after_probation() {
    let (obs, reader) = aqua_obs::Obs::in_memory();

    // Replica 0 crashes 600 ms into its life and recovers 700 ms later.
    let plan = FaultPlan::new().crash_recover(0, Instant::from_millis(600), ms(700));
    let mut servers = Vec::new();
    for i in 0..3u64 {
        let mut cfg = ReplicaServerConfig::quick(ReplicaId::new(i), if i == 0 { 5 } else { 10 });
        if i == 0 {
            cfg.faults = Some(plan.instantiate(7));
            cfg.obs = Some(obs.clone());
        }
        servers.push(ReplicaServer::spawn(cfg).expect("spawn"));
    }

    let mut config = AquaClientConfig::new(QosSpec::new(ms(500), 0.9).unwrap());
    config.window = 3; // probation clears after 3 fresh samples
    config.give_up_after = ms(2_000);
    config.obs = Some(obs.clone());
    config.reconnect = Some(ReconnectPolicy {
        initial_backoff: ms(50),
        max_backoff: ms(200),
        max_attempts: 100,
    });
    let client = AquaClient::connect(
        &replicas_of(&servers),
        config,
        Box::new(ModelBased::default()),
    )
    .expect("connect");

    // Call steadily across the whole fault window (~3 s of wall clock):
    // warm-up, the down window (masked by the survivors), reconnect, and
    // enough post-recovery traffic to clear probation via shadow requests.
    let mut failures = 0;
    for _ in 0..60 {
        if client.call(MethodId::DEFAULT, b"steady").is_err() {
            failures += 1;
        }
        std::thread::sleep(StdDuration::from_millis(50));
    }
    client.finish_observability();
    assert!(
        failures <= 2,
        "the crash window must be masked by the other replicas, {failures} calls failed"
    );

    // (a) The recovered replica is back in the repository and selectable:
    // probation has been served and cleared.
    client.with_handler(|h| {
        let repo = h.repository();
        assert!(
            repo.contains(ReplicaId::new(0)),
            "recovered replica rejoined the repository"
        );
        assert!(
            repo.selectable_ids().any(|id| id == ReplicaId::new(0)),
            "probation cleared: replica 0 is selectable again"
        );
    });

    // The journal shows the full story: the fault window opening and
    // closing, and probation starting and clearing.
    let faults: Vec<String> = reader.lines_containing(r#""type":"fault""#);
    assert!(
        faults
            .iter()
            .any(|l| l.contains(r#""phase":"active""#) && l.contains(r#""kind":"crash""#)),
        "fault activation journalled: {faults:?}"
    );
    assert!(
        faults.iter().any(|l| l.contains(r#""phase":"cleared""#)),
        "fault clearance journalled: {faults:?}"
    );
    let probation: Vec<String> = reader.lines_containing(r#""type":"probation""#);
    assert!(
        probation.iter().any(|l| l.contains(r#""phase":"started""#)),
        "probation start journalled: {probation:?}"
    );
    assert!(
        probation.iter().any(|l| l.contains(r#""phase":"cleared""#)),
        "probation clearance journalled: {probation:?}"
    );
    assert!(
        obs.prometheus().contains("aqua_client_reconnects_total"),
        "reconnects counted"
    );
}

/// The deadline-driven retry: when the sole selected replica stalls, the
/// intermediate retry deadline re-runs Algorithm 1 over the *remaining*
/// replicas and the sibling attempt completes well before the give-up
/// window.
#[test]
fn stalled_replica_is_masked_by_deadline_retry() {
    let (obs, reader) = aqua_obs::Obs::in_memory();

    // Replica 0 is the fastest — and pauses (queued work stalls but
    // survives) from 700 ms to 2.2 s on its own clock.
    let plan = FaultPlan::new().pause(0, Instant::from_millis(700), ms(1_500));
    let spawn_t = StdInstant::now();
    let mut servers = Vec::new();
    for i in 0..2u64 {
        let mut cfg = ReplicaServerConfig::quick(ReplicaId::new(i), if i == 0 { 5 } else { 20 });
        if i == 0 {
            cfg.faults = Some(plan.instantiate(7));
        }
        servers.push(ReplicaServer::spawn(cfg).expect("spawn"));
    }

    let mut config = AquaClientConfig::new(QosSpec::new(ms(200), 0.9).unwrap());
    config.give_up_after = ms(2_500);
    config.retry_after = Some(ms(300));
    config.obs = Some(obs.clone());
    // FastestMean k=1 pins the selection to replica 0 once it is warm.
    let client = AquaClient::connect(
        &replicas_of(&servers),
        config,
        Box::new(FastestMean { k: 1 }),
    )
    .expect("connect");

    // Warm both replicas up (cold start multicasts to everyone).
    for _ in 0..3 {
        client.call(MethodId::DEFAULT, b"warm").expect("warm-up ok");
    }
    client.with_handler(|h| assert!(h.repository().all_warm()));

    // Step into the pause window, then call: the selection (replica 0)
    // stalls, the retry re-plans over the remainder (replica 1) and wins.
    let into_window = StdDuration::from_millis(900).saturating_sub(spawn_t.elapsed());
    std::thread::sleep(into_window);
    let issued = StdInstant::now();
    let out = client
        .call(MethodId::DEFAULT, b"stalled")
        .expect("retry masks the stall");
    let elapsed = issued.elapsed();
    client.finish_observability();

    assert_eq!(
        out.replica,
        ReplicaId::new(1),
        "the retry's replica answered"
    );
    assert_eq!(out.redundancy, 2, "one original target + one retry target");
    assert!(
        elapsed >= StdDuration::from_millis(300),
        "no reply can precede the retry deadline, got {elapsed:?}"
    );
    assert!(
        elapsed < StdDuration::from_millis(2_000),
        "the retry resolved the call well before the give-up window, got {elapsed:?}"
    );
    let retries = client.with_handler(|h| h.stats().retries);
    assert_eq!(retries, 1, "exactly one retry was planned");

    // The journal records the retry and the superseded original attempt.
    let retry_events = reader.lines_containing(r#""type":"retry""#);
    assert_eq!(retry_events.len(), 1, "{retry_events:?}");
    let superseded = reader.lines_containing(r#""outcome":"superseded""#);
    assert_eq!(superseded.len(), 1, "{superseded:?}");
}

/// Satellite: when every replica is evicted while a call is in flight, the
/// call fails with [`CallError::NoReplicas`] immediately rather than
/// riding out the give-up timer.
#[test]
fn in_flight_call_fails_fast_when_all_replicas_evicted() {
    let servers = vec![
        ReplicaServer::spawn(ReplicaServerConfig::quick(ReplicaId::new(0), 800)).expect("spawn"),
    ];
    let mut config = AquaClientConfig::new(QosSpec::new(ms(500), 0.0).unwrap());
    config.give_up_after = Duration::from_secs(10);
    config.reconnect = None; // eviction is final
    let client = std::sync::Arc::new(
        AquaClient::connect(
            &replicas_of(&servers),
            config,
            Box::new(ModelBased::default()),
        )
        .expect("connect"),
    );

    let caller = {
        let client = std::sync::Arc::clone(&client);
        std::thread::spawn(move || {
            let issued = StdInstant::now();
            let res = client.call(MethodId::DEFAULT, b"doomed");
            (res, issued.elapsed())
        })
    };
    // Let the request reach the (slow) replica, then crash it mid-service.
    std::thread::sleep(StdDuration::from_millis(150));
    servers[0].crash();

    let (res, elapsed) = caller.join().expect("caller thread");
    let err = res.expect_err("no replica could have answered");
    assert!(matches!(err, CallError::NoReplicas), "{err}");
    assert!(
        elapsed < StdDuration::from_secs(5),
        "failed fast, not at the 10 s give-up: {elapsed:?}"
    );
    // The failure is accounted: the logical request gave up.
    client.with_handler(|h| {
        assert_eq!(h.pending_count(), 0, "no orphaned pending request");
        assert_eq!(h.detector().failures(), 1, "one timing failure recorded");
    });
}

/// Satellite: a replica crashing *while servicing* an in-flight request is
/// masked by the redundant targets of the same multicast.
#[test]
fn crash_during_inflight_request_is_masked_by_redundancy() {
    // Replica 0 would answer first (100 ms) but crashes mid-service;
    // replicas 1 and 2 (400 ms) carry the request home.
    let services = [100u64, 400, 400];
    let servers: Vec<ReplicaServer> = services
        .iter()
        .enumerate()
        .map(|(i, s)| {
            ReplicaServer::spawn(ReplicaServerConfig::quick(ReplicaId::new(i as u64), *s))
                .expect("spawn")
        })
        .collect();
    let mut config = AquaClientConfig::new(QosSpec::new(Duration::from_secs(1), 0.9).unwrap());
    config.give_up_after = Duration::from_secs(5);
    config.reconnect = None;
    let client = std::sync::Arc::new(
        AquaClient::connect(
            &replicas_of(&servers),
            config,
            Box::new(ModelBased::default()),
        )
        .expect("connect"),
    );

    // The cold-start call multicasts to all three replicas.
    let caller = {
        let client = std::sync::Arc::clone(&client);
        std::thread::spawn(move || client.call(MethodId::DEFAULT, b"first"))
    };
    std::thread::sleep(StdDuration::from_millis(30));
    servers[0].crash();

    let out = caller
        .join()
        .expect("caller thread")
        .expect("the surviving replicas answered");
    assert_ne!(
        out.replica,
        ReplicaId::new(0),
        "the crashed replica cannot win"
    );
    assert_eq!(out.redundancy, 3, "cold start selected everyone");
    assert!(out.timely, "a 400 ms reply meets the 1 s deadline");
    client.with_handler(|h| {
        assert!(
            !h.repository().contains(ReplicaId::new(0)),
            "the disconnect evicted the crashed replica"
        );
        assert_eq!(h.stats().delivered, 1);
    });
}
