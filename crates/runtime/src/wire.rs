//! Length-prefixed binary wire protocol for the socket runtime.
//!
//! Every frame is `u32 length (big-endian) | u8 tag | body`. The body
//! layout is fixed per tag — no self-describing serialization, mirroring
//! the compact messages the AQuA gateways exchange.

use std::io::{self, Read, Write};

use aqua_core::aqua;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Maximum accepted frame body size (1 MiB) — defends against corrupt
/// length prefixes.
pub const MAX_FRAME: u32 = 1 << 20;

/// A protocol frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Client → replica: service this request.
    Request {
        /// Client-local sequence number.
        seq: u64,
        /// Invoked method.
        method: u32,
        /// Opaque argument bytes.
        payload: Bytes,
    },
    /// Replica → client: the reply with piggybacked performance data.
    Reply {
        /// Sequence number this answers.
        seq: u64,
        /// The servicing replica.
        replica: u64,
        /// Service duration `ts` in nanoseconds.
        service_ns: u64,
        /// Queuing delay `tq` in nanoseconds.
        queue_ns: u64,
        /// Outstanding requests left in the queue.
        queue_len: u32,
        /// Invoked method (echoed for per-method classification).
        method: u32,
        /// Opaque result bytes.
        payload: Bytes,
    },
    /// Replica → subscriber: pushed performance update.
    PerfUpdate {
        /// The publishing replica.
        replica: u64,
        /// Service duration `ts` in nanoseconds.
        service_ns: u64,
        /// Queuing delay `tq` in nanoseconds.
        queue_ns: u64,
        /// Outstanding requests left in the queue.
        queue_len: u32,
        /// Method the measurements belong to.
        method: u32,
    },
    /// Client → replica: identify and subscribe to performance updates.
    Hello {
        /// An arbitrary client identifier (diagnostics only).
        client: u64,
    },
}

const TAG_REQUEST: u8 = 1;
const TAG_REPLY: u8 = 2;
const TAG_PERF: u8 = 3;
const TAG_HELLO: u8 = 4;

impl Frame {
    /// Encodes the frame (length prefix included).
    pub fn encode(&self) -> Bytes {
        let mut body = BytesMut::with_capacity(64);
        match self {
            Frame::Request {
                seq,
                method,
                payload,
            } => {
                body.put_u8(TAG_REQUEST);
                body.put_u64(*seq);
                body.put_u32(*method);
                body.put_u32(payload.len() as u32);
                body.put_slice(payload);
            }
            Frame::Reply {
                seq,
                replica,
                service_ns,
                queue_ns,
                queue_len,
                method,
                payload,
            } => {
                body.put_u8(TAG_REPLY);
                body.put_u64(*seq);
                body.put_u64(*replica);
                body.put_u64(*service_ns);
                body.put_u64(*queue_ns);
                body.put_u32(*queue_len);
                body.put_u32(*method);
                body.put_u32(payload.len() as u32);
                body.put_slice(payload);
            }
            Frame::PerfUpdate {
                replica,
                service_ns,
                queue_ns,
                queue_len,
                method,
            } => {
                body.put_u8(TAG_PERF);
                body.put_u64(*replica);
                body.put_u64(*service_ns);
                body.put_u64(*queue_ns);
                body.put_u32(*queue_len);
                body.put_u32(*method);
            }
            Frame::Hello { client } => {
                body.put_u8(TAG_HELLO);
                body.put_u64(*client);
            }
        }
        let mut out = BytesMut::with_capacity(4 + body.len());
        out.put_u32(body.len() as u32);
        out.extend_from_slice(&body);
        out.freeze()
    }

    /// Appends the frame's wire encoding (length prefix included) to a
    /// caller-owned buffer, byte-identical to [`Frame::encode`] but with
    /// no per-frame allocation. The send hot path batches frames into one
    /// reusable buffer per writer and flushes them with a single write.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.reserve(self.encoded_len());
        let body_len = (self.encoded_len() - 4) as u32;
        out.extend_from_slice(&body_len.to_be_bytes());
        match self {
            Frame::Request {
                seq,
                method,
                payload,
            } => {
                out.push(TAG_REQUEST);
                out.extend_from_slice(&seq.to_be_bytes());
                out.extend_from_slice(&method.to_be_bytes());
                out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
                out.extend_from_slice(payload);
            }
            Frame::Reply {
                seq,
                replica,
                service_ns,
                queue_ns,
                queue_len,
                method,
                payload,
            } => {
                out.push(TAG_REPLY);
                out.extend_from_slice(&seq.to_be_bytes());
                out.extend_from_slice(&replica.to_be_bytes());
                out.extend_from_slice(&service_ns.to_be_bytes());
                out.extend_from_slice(&queue_ns.to_be_bytes());
                out.extend_from_slice(&queue_len.to_be_bytes());
                out.extend_from_slice(&method.to_be_bytes());
                out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
                out.extend_from_slice(payload);
            }
            Frame::PerfUpdate {
                replica,
                service_ns,
                queue_ns,
                queue_len,
                method,
            } => {
                out.push(TAG_PERF);
                out.extend_from_slice(&replica.to_be_bytes());
                out.extend_from_slice(&service_ns.to_be_bytes());
                out.extend_from_slice(&queue_ns.to_be_bytes());
                out.extend_from_slice(&queue_len.to_be_bytes());
                out.extend_from_slice(&method.to_be_bytes());
            }
            Frame::Hello { client } => {
                out.push(TAG_HELLO);
                out.extend_from_slice(&client.to_be_bytes());
            }
        }
    }

    /// Bytes this frame occupies on the wire (length prefix included),
    /// without encoding it. Used by the wire-level byte counters.
    pub fn encoded_len(&self) -> usize {
        let body = match self {
            Frame::Request { payload, .. } => 1 + 8 + 4 + 4 + payload.len(),
            Frame::Reply { payload, .. } => 1 + 8 * 4 + 4 + 4 + 4 + payload.len(),
            Frame::PerfUpdate { .. } => 1 + 8 * 3 + 4 + 4,
            Frame::Hello { .. } => 1 + 8,
        };
        4 + body
    }

    /// Decodes a frame body (without the length prefix).
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::InvalidData`] on unknown tags or truncated
    /// bodies.
    pub fn decode(mut body: Bytes) -> io::Result<Frame> {
        fn need(body: &Bytes, n: usize) -> io::Result<()> {
            if body.remaining() < n {
                Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "truncated frame body",
                ))
            } else {
                Ok(())
            }
        }
        need(&body, 1)?;
        let tag = body.get_u8();
        match tag {
            TAG_REQUEST => {
                need(&body, 8 + 4 + 4)?;
                let seq = body.get_u64();
                let method = body.get_u32();
                let len = body.get_u32() as usize;
                need(&body, len)?;
                let payload = body.split_to(len);
                Ok(Frame::Request {
                    seq,
                    method,
                    payload,
                })
            }
            TAG_REPLY => {
                need(&body, 8 * 4 + 4 + 4 + 4)?;
                let seq = body.get_u64();
                let replica = body.get_u64();
                let service_ns = body.get_u64();
                let queue_ns = body.get_u64();
                let queue_len = body.get_u32();
                let method = body.get_u32();
                let len = body.get_u32() as usize;
                need(&body, len)?;
                let payload = body.split_to(len);
                Ok(Frame::Reply {
                    seq,
                    replica,
                    service_ns,
                    queue_ns,
                    queue_len,
                    method,
                    payload,
                })
            }
            TAG_PERF => {
                need(&body, 8 * 3 + 4 + 4)?;
                Ok(Frame::PerfUpdate {
                    replica: body.get_u64(),
                    service_ns: body.get_u64(),
                    queue_ns: body.get_u64(),
                    queue_len: body.get_u32(),
                    method: body.get_u32(),
                })
            }
            TAG_HELLO => {
                need(&body, 8)?;
                Ok(Frame::Hello {
                    client: body.get_u64(),
                })
            }
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown frame tag {other}"),
            )),
        }
    }

    /// Decodes a frame body (without the length prefix) from a borrowed
    /// slice. Only the payload bytes are copied (straight into their
    /// `Bytes`); headers are parsed in place. This is the reactor's
    /// zero-intermediate-copy decode: the reassembly buffer is read
    /// directly, with no per-frame `Vec` in between.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::InvalidData`] on unknown tags or truncated
    /// bodies, exactly like [`Frame::decode`].
    pub fn decode_body(body: &[u8]) -> io::Result<Frame> {
        fn truncated() -> io::Error {
            io::Error::new(io::ErrorKind::InvalidData, "truncated frame body")
        }
        fn take<'a>(body: &'a [u8], pos: &mut usize, n: usize) -> io::Result<&'a [u8]> {
            let end = pos.checked_add(n).ok_or_else(truncated)?;
            let s = body.get(*pos..end).ok_or_else(truncated)?;
            *pos = end;
            Ok(s)
        }
        fn get_u8(body: &[u8], pos: &mut usize) -> io::Result<u8> {
            Ok(take(body, pos, 1)?[0])
        }
        fn get_u32(body: &[u8], pos: &mut usize) -> io::Result<u32> {
            let s = take(body, pos, 4)?;
            Ok(u32::from_be_bytes([s[0], s[1], s[2], s[3]]))
        }
        fn get_u64(body: &[u8], pos: &mut usize) -> io::Result<u64> {
            let s = take(body, pos, 8)?;
            Ok(u64::from_be_bytes([
                s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
            ]))
        }
        let pos = &mut 0usize;
        match get_u8(body, pos)? {
            TAG_REQUEST => {
                let seq = get_u64(body, pos)?;
                let method = get_u32(body, pos)?;
                let len = get_u32(body, pos)? as usize;
                let payload = Bytes::copy_from_slice(take(body, pos, len)?);
                Ok(Frame::Request {
                    seq,
                    method,
                    payload,
                })
            }
            TAG_REPLY => {
                let seq = get_u64(body, pos)?;
                let replica = get_u64(body, pos)?;
                let service_ns = get_u64(body, pos)?;
                let queue_ns = get_u64(body, pos)?;
                let queue_len = get_u32(body, pos)?;
                let method = get_u32(body, pos)?;
                let len = get_u32(body, pos)? as usize;
                let payload = Bytes::copy_from_slice(take(body, pos, len)?);
                Ok(Frame::Reply {
                    seq,
                    replica,
                    service_ns,
                    queue_ns,
                    queue_len,
                    method,
                    payload,
                })
            }
            TAG_PERF => Ok(Frame::PerfUpdate {
                replica: get_u64(body, pos)?,
                service_ns: get_u64(body, pos)?,
                queue_ns: get_u64(body, pos)?,
                queue_len: get_u32(body, pos)?,
                method: get_u32(body, pos)?,
            }),
            TAG_HELLO => Ok(Frame::Hello {
                client: get_u64(body, pos)?,
            }),
            _ => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "unknown frame tag",
            )),
        }
    }

    /// Writes one frame to a stream.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(&self.encode())
    }

    /// Reads one frame from a stream (blocking).
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::UnexpectedEof`] on a cleanly closed peer,
    /// [`io::ErrorKind::InvalidData`] on oversized or malformed frames, and
    /// propagates other I/O errors.
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<Frame> {
        let mut len_buf = [0u8; 4];
        r.read_exact(&mut len_buf)?;
        let len = u32::from_be_bytes(len_buf);
        if len > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame of {len} bytes exceeds the {MAX_FRAME} cap"),
            ));
        }
        let mut body = vec![0u8; len as usize];
        r.read_exact(&mut body)?;
        Frame::decode(Bytes::from(body))
    }
}

/// How many bytes one nonblocking read attempts to pull in.
const READ_CHUNK: usize = 16 * 1024;

/// Incremental frame reassembly for nonblocking streams.
///
/// The reactor hands each connection's raw reads to one assembler; frames
/// may arrive split at arbitrary byte boundaries (including mid-header)
/// across any number of `read` calls. Complete frames are decoded straight
/// out of the reassembly buffer via [`Frame::decode_body`] — only payload
/// bytes are copied, there is no per-frame intermediate buffer.
#[derive(Debug)]
pub struct FrameAssembler {
    /// Growable reassembly storage; `start..end` holds pending bytes.
    buf: Vec<u8>,
    start: usize,
    end: usize,
}

impl Default for FrameAssembler {
    fn default() -> Self {
        FrameAssembler::new()
    }
}

impl FrameAssembler {
    /// An empty assembler with one read-chunk of capacity.
    pub fn new() -> FrameAssembler {
        FrameAssembler {
            buf: vec![0u8; READ_CHUNK],
            start: 0,
            end: 0,
        }
    }

    /// Bytes buffered but not yet returned as frames.
    pub fn pending(&self) -> usize {
        self.end - self.start
    }

    /// Appends raw bytes directly (test harnesses and in-memory feeds).
    pub fn extend(&mut self, data: &[u8]) {
        self.make_room(data.len());
        self.buf[self.end..self.end + data.len()].copy_from_slice(data);
        self.end += data.len();
    }

    /// Performs one `read` into the reassembly buffer. Returns the byte
    /// count (`0` means EOF). `WouldBlock` surfaces as an error for the
    /// caller's readiness loop to catch.
    ///
    /// # Errors
    ///
    /// Propagates the reader's I/O errors, including `WouldBlock`.
    pub fn read_from<R: Read>(&mut self, r: &mut R) -> io::Result<usize> {
        self.make_room(READ_CHUNK);
        let n = r.read(&mut self.buf[self.end..])?;
        self.end += n;
        Ok(n)
    }

    /// Compacts pending bytes to the front and/or grows the buffer until
    /// at least `want` spare bytes follow `end`.
    fn make_room(&mut self, want: usize) {
        if self.buf.len() - self.end >= want {
            return;
        }
        self.buf.copy_within(self.start..self.end, 0);
        self.end -= self.start;
        self.start = 0;
        if self.buf.len() - self.end < want {
            self.buf.resize(self.end + want, 0);
        }
    }

    /// Pops the next complete frame, or `None` if more bytes are needed.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::InvalidData`] on an oversized length
    /// prefix or a malformed body; the stream is unrecoverable after an
    /// error (framing is lost) and the connection should be closed.
    #[aqua::hot_path]
    pub fn next_frame(&mut self) -> io::Result<Option<Frame>> {
        let pending = &self.buf[self.start..self.end];
        if pending.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([pending[0], pending[1], pending[2], pending[3]]);
        if len > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "frame length prefix exceeds the cap",
            ));
        }
        let total = 4 + len as usize;
        if pending.len() < total {
            return Ok(None);
        }
        let frame = Frame::decode_body(&pending[4..total])?;
        self.start += total;
        if self.start == self.end {
            self.start = 0;
            self.end = 0;
        }
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let encoded = frame.encode();
        assert_eq!(encoded.len(), frame.encoded_len(), "{frame:?}");
        let mut cursor = std::io::Cursor::new(encoded.to_vec());
        let decoded = Frame::read_from(&mut cursor).expect("decodes");
        assert_eq!(decoded, frame);
    }

    #[test]
    fn request_roundtrip() {
        roundtrip(Frame::Request {
            seq: 42,
            method: 7,
            payload: Bytes::from_static(b"hello world"),
        });
    }

    #[test]
    fn reply_roundtrip() {
        roundtrip(Frame::Reply {
            seq: 1,
            replica: 3,
            service_ns: 1_000_000,
            queue_ns: 42,
            queue_len: 9,
            method: 2,
            payload: Bytes::from_static(b"result"),
        });
    }

    #[test]
    fn perf_and_hello_roundtrip() {
        roundtrip(Frame::PerfUpdate {
            replica: 5,
            service_ns: 9,
            queue_ns: 8,
            queue_len: 7,
            method: 0,
        });
        roundtrip(Frame::Hello { client: 77 });
    }

    #[test]
    fn empty_payload_roundtrip() {
        roundtrip(Frame::Request {
            seq: 0,
            method: 0,
            payload: Bytes::new(),
        });
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut body = BytesMut::new();
        body.put_u8(99);
        assert_eq!(
            Frame::decode(body.freeze()).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn truncated_body_rejected() {
        let mut body = BytesMut::new();
        body.put_u8(1); // request tag but nothing else
        assert_eq!(
            Frame::decode(body.freeze()).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut data = Vec::new();
        data.extend_from_slice(&(MAX_FRAME + 1).to_be_bytes());
        let mut cursor = std::io::Cursor::new(data);
        assert_eq!(
            Frame::read_from(&mut cursor).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn eof_surfaces_as_unexpected_eof() {
        let mut cursor = std::io::Cursor::new(Vec::<u8>::new());
        assert_eq!(
            Frame::read_from(&mut cursor).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn encode_into_is_byte_identical_to_encode() {
        let frames = [
            Frame::Request {
                seq: 42,
                method: 7,
                payload: Bytes::from_static(b"hello world"),
            },
            Frame::Reply {
                seq: 1,
                replica: 3,
                service_ns: 1_000_000,
                queue_ns: 42,
                queue_len: 9,
                method: 2,
                payload: Bytes::from_static(b"result"),
            },
            Frame::PerfUpdate {
                replica: 5,
                service_ns: 9,
                queue_ns: 8,
                queue_len: 7,
                method: 0,
            },
            Frame::Hello { client: 77 },
            Frame::Request {
                seq: 0,
                method: 0,
                payload: Bytes::new(),
            },
        ];
        // Per-frame equality plus the batched form: appending the whole
        // batch into one reusable buffer must equal the concatenation of
        // the allocating encodes — the framing is unchanged.
        let mut batch = Vec::new();
        let mut concat = Vec::new();
        for frame in &frames {
            let mut single = Vec::new();
            frame.encode_into(&mut single);
            assert_eq!(single, frame.encode().to_vec(), "{frame:?}");
            assert_eq!(single.len(), frame.encoded_len(), "{frame:?}");
            frame.encode_into(&mut batch);
            concat.extend_from_slice(&frame.encode());
        }
        assert_eq!(batch, concat);
        // And the batch decodes back to the same frames.
        let mut cursor = std::io::Cursor::new(batch);
        for frame in &frames {
            assert_eq!(&Frame::read_from(&mut cursor).unwrap(), frame);
        }
    }

    #[test]
    fn frames_stream_back_to_back() {
        let frames = vec![
            Frame::Hello { client: 1 },
            Frame::Request {
                seq: 2,
                method: 0,
                payload: Bytes::from_static(b"x"),
            },
        ];
        let mut buf = Vec::new();
        for f in &frames {
            f.write_to(&mut buf).unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        for f in &frames {
            assert_eq!(&Frame::read_from(&mut cursor).unwrap(), f);
        }
    }

    #[test]
    fn decode_body_matches_decode() {
        let frames = [
            Frame::Request {
                seq: 42,
                method: 7,
                payload: Bytes::from_static(b"hello world"),
            },
            Frame::Reply {
                seq: 1,
                replica: 3,
                service_ns: 1_000_000,
                queue_ns: 42,
                queue_len: 9,
                method: 2,
                payload: Bytes::from_static(b"result"),
            },
            Frame::PerfUpdate {
                replica: 5,
                service_ns: 9,
                queue_ns: 8,
                queue_len: 7,
                method: 0,
            },
            Frame::Hello { client: 77 },
        ];
        for frame in &frames {
            let encoded = frame.encode();
            let body = &encoded.as_slice()[4..];
            assert_eq!(&Frame::decode_body(body).unwrap(), frame);
        }
        // Truncation and unknown tags fail like the owned decoder.
        assert_eq!(
            Frame::decode_body(&[TAG_REQUEST]).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        assert_eq!(
            Frame::decode_body(&[99]).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        assert_eq!(
            Frame::decode_body(&[]).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn assembler_reassembles_byte_by_byte() {
        let frames = vec![
            Frame::Hello { client: 9 },
            Frame::Request {
                seq: 1,
                method: 2,
                payload: Bytes::from_static(b"split me"),
            },
            Frame::PerfUpdate {
                replica: 1,
                service_ns: 2,
                queue_ns: 3,
                queue_len: 4,
                method: 5,
            },
        ];
        let mut stream = Vec::new();
        for f in &frames {
            f.encode_into(&mut stream);
        }
        let mut asm = FrameAssembler::new();
        let mut decoded = Vec::new();
        for byte in stream {
            asm.extend(&[byte]);
            while let Some(f) = asm.next_frame().unwrap() {
                decoded.push(f);
            }
        }
        assert_eq!(decoded, frames);
        assert_eq!(asm.pending(), 0);
    }

    #[test]
    fn assembler_rejects_oversized_prefix() {
        let mut asm = FrameAssembler::new();
        asm.extend(&(MAX_FRAME + 1).to_be_bytes());
        assert_eq!(
            asm.next_frame().unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn assembler_reads_from_a_stream() {
        let frame = Frame::Request {
            seq: 7,
            method: 0,
            payload: Bytes::from_static(b"reader"),
        };
        let mut cursor = std::io::Cursor::new(frame.encode().to_vec());
        let mut asm = FrameAssembler::new();
        assert!(asm.next_frame().unwrap().is_none());
        let n = asm.read_from(&mut cursor).unwrap();
        assert_eq!(n, frame.encoded_len());
        assert_eq!(asm.next_frame().unwrap(), Some(frame));
        assert_eq!(asm.read_from(&mut cursor).unwrap(), 0, "EOF");
    }
}
