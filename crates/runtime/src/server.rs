//! A replica server over real TCP sockets.
//!
//! One [`ReplicaServer`] is one AQuA server replica on localhost: an accept
//! loop, per-connection reader threads feeding a single **FIFO service
//! thread** (the request queue of §5.1 Stage 3), and performance
//! publication to subscribers after every serviced request (§5.4.1).
//! Service time is simulated by sleeping a sampled duration; the *measured*
//! elapsed time is what gets reported, exactly like the instrumented
//! gateway of the paper.

use std::io::{self, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration as StdDuration, Instant as StdInstant};

use aqua_core::qos::ReplicaId;
use aqua_core::time::Instant;
use aqua_faults::{FaultSchedule, FaultTracker};
use aqua_replica::ServiceTimeModel;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::wire::Frame;

/// Configuration of one socket replica.
#[derive(Debug, Clone)]
pub struct ReplicaServerConfig {
    /// This replica's identity.
    pub replica: ReplicaId,
    /// Per-request service-time distribution (slept out in real time).
    pub service: ServiceTimeModel,
    /// RNG seed for the service-time draws.
    pub seed: u64,
    /// Crash (silently drop every connection and stop) after this many
    /// serviced requests.
    pub crash_after: Option<u64>,
    /// Optional observability sink: serviced counts, measured service and
    /// queuing times, and the instantaneous queue depth.
    pub obs: Option<aqua_obs::Obs>,
    /// Scheduled fault injection on the server's own clock (zero at
    /// spawn): crash-and-recover windows refuse connections and drop
    /// queued work, pauses stall the service thread (queued work
    /// survives), degradations and overloads stretch the slept service
    /// time, delay spikes postpone replies, and message drops swallow
    /// them.
    pub faults: Option<FaultSchedule>,
}

impl ReplicaServerConfig {
    /// A responsive test replica with deterministic service time.
    pub fn quick(replica: ReplicaId, service_ms: u64) -> Self {
        ReplicaServerConfig {
            replica,
            service: ServiceTimeModel::Deterministic(aqua_core::time::Duration::from_millis(
                service_ms,
            )),
            seed: replica.index(),
            crash_after: None,
            obs: None,
            faults: None,
        }
    }
}

/// Cached server-side metric handles, created once per service loop.
struct ServerMetrics {
    serviced: Arc<aqua_obs::metrics::Counter>,
    service_ns: Arc<aqua_obs::metrics::Histogram>,
    queue_ns: Arc<aqua_obs::metrics::Histogram>,
    queue_depth: Arc<aqua_obs::metrics::Gauge>,
}

impl ServerMetrics {
    fn new(obs: &aqua_obs::Obs, replica: ReplicaId) -> Self {
        let replica = replica.index().to_string();
        let labels = [("replica", replica.as_str())];
        let registry = obs.registry();
        ServerMetrics {
            serviced: registry.counter("aqua_server_serviced_total", &labels),
            service_ns: registry.histogram("aqua_server_service_ns", &labels),
            queue_ns: registry.histogram("aqua_server_queue_ns", &labels),
            queue_depth: registry.gauge("aqua_server_queue_depth", &labels),
        }
    }
}

/// A queued request job.
struct Job {
    writer: TcpStream,
    peer: SocketAddr,
    seq: u64,
    method: u32,
    payload: Bytes,
    enqueued: StdInstant,
}

/// A message on the service channel: the queue of §5.1 Stage 3 plus a
/// shutdown sentinel, so the service thread blocks on `recv()` instead of
/// polling a timeout.
enum ServiceMsg {
    Job(Job),
    Shutdown,
}

#[derive(Debug)]
struct Shared {
    shutdown: AtomicBool,
    /// Inside a scheduled down window: connections are refused (accepted
    /// and immediately dropped so reconnect probes fail fast) and queued
    /// work is discarded, but the listener stays alive for recovery.
    refusing: AtomicBool,
    serviced: AtomicU64,
    /// The server's time origin; fault schedules run on this clock.
    epoch: StdInstant,
    /// Wakes the service thread out of its blocking `recv()` on crash.
    notify: Mutex<Option<Sender<ServiceMsg>>>,
    /// Writer clones of subscriber connections (for perf pushes).
    subscribers: Mutex<Vec<(SocketAddr, TcpStream)>>,
    /// Every live connection, for forced shutdown.
    connections: Mutex<Vec<TcpStream>>,
}

impl Shared {
    fn now(&self) -> Instant {
        Instant::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }
}

/// Handle to a running socket replica. Dropping the handle crashes the
/// replica (all connections are torn down), which is also how crash tests
/// inject failures.
#[derive(Debug)]
pub struct ReplicaServer {
    addr: SocketAddr,
    replica: ReplicaId,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl ReplicaServer {
    /// Binds a listener on `127.0.0.1:0` and spawns the accept and service
    /// threads.
    ///
    /// # Errors
    ///
    /// Propagates socket binding errors.
    pub fn spawn(config: ReplicaServerConfig) -> io::Result<ReplicaServer> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            refusing: AtomicBool::new(false),
            serviced: AtomicU64::new(0),
            epoch: StdInstant::now(),
            notify: Mutex::new(None),
            subscribers: Mutex::new(Vec::new()),
            connections: Mutex::new(Vec::new()),
        });
        let (job_tx, job_rx) = unbounded::<ServiceMsg>();
        *shared.notify.lock() = Some(job_tx.clone());

        let mut threads = Vec::new();
        {
            let shared = Arc::clone(&shared);
            let job_tx = job_tx.clone();
            threads.push(std::thread::spawn(move || {
                accept_loop(listener, shared, job_tx);
            }));
        }
        {
            let shared = Arc::clone(&shared);
            let replica = config.replica;
            let service = config.service.clone();
            let seed = config.seed;
            let crash_after = config.crash_after;
            let metrics = config
                .obs
                .as_ref()
                .map(|obs| ServerMetrics::new(obs, replica));
            let faults = config.faults.clone().unwrap_or_else(FaultSchedule::empty);
            threads.push(std::thread::spawn(move || {
                service_loop(
                    shared,
                    job_rx,
                    replica,
                    service,
                    seed,
                    crash_after,
                    metrics,
                    faults,
                );
            }));
        }
        if let Some(schedule) = config.faults.filter(|s| !s.is_empty()) {
            let shared = Arc::clone(&shared);
            let replica = config.replica;
            let obs = config.obs.clone();
            threads.push(std::thread::spawn(move || {
                fault_driver(shared, schedule, replica, obs);
            }));
        }
        drop(job_tx);

        Ok(ReplicaServer {
            addr,
            replica: config.replica,
            shared,
            threads,
        })
    }

    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// This replica's identity.
    pub fn replica(&self) -> ReplicaId {
        self.replica
    }

    /// Requests serviced so far.
    pub fn serviced(&self) -> u64 {
        self.shared.serviced.load(Ordering::Relaxed)
    }

    /// Crashes the replica: connections are closed, the queue is dropped,
    /// and no further requests are serviced. Idempotent.
    pub fn crash(&self) {
        crash(&self.shared);
    }

    /// Whether the replica has crashed (or been shut down).
    pub fn is_crashed(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }
}

impl Drop for ReplicaServer {
    fn drop(&mut self) {
        self.crash();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn crash(shared: &Shared) {
    shared.shutdown.store(true, Ordering::SeqCst);
    // Wake the service thread out of its blocking recv; the sentinel rides
    // behind any queued jobs, but the shutdown flag makes the loop discard
    // those on sight.
    // Take the sender out in its own statement: an `if let` scrutinee
    // keeps the temporary lock guard alive across the body, which would
    // hold `notify` across the send.
    let tx = shared.notify.lock().take();
    if let Some(tx) = tx {
        let _ = tx.send(ServiceMsg::Shutdown);
    }
    for conn in shared.connections.lock().drain(..) {
        let _ = conn.shutdown(std::net::Shutdown::Both);
    }
    shared.subscribers.lock().clear();
}

/// Tears down live connections without shutting the replica down: the
/// entry into a scheduled down window.
fn drop_connections(shared: &Shared) {
    for conn in shared.connections.lock().drain(..) {
        let _ = conn.shutdown(std::net::Shutdown::Both);
    }
    shared.subscribers.lock().clear();
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, job_tx: Sender<ServiceMsg>) {
    // Reader threads are tracked here and joined when the accept loop
    // exits; by then shutdown/crash has torn every connection down, so
    // each reader's blocking read has already failed.
    let mut readers: Vec<JoinHandle<()>> = Vec::new();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, peer)) => {
                if shared.refusing.load(Ordering::SeqCst) {
                    // Down window: explicit refusal. Dropping the accepted
                    // stream resets the peer immediately, so reconnect
                    // probes fail fast instead of hanging.
                    drop(stream);
                    continue;
                }
                stream.set_nodelay(true).ok();
                if let Ok(clone) = stream.try_clone() {
                    shared.connections.lock().push(clone);
                }
                let shared = Arc::clone(&shared);
                let job_tx = job_tx.clone();
                readers.retain(|t| !t.is_finished());
                readers.push(std::thread::spawn(move || {
                    reader_loop(stream, peer, shared, job_tx)
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(StdDuration::from_millis(2));
            }
            Err(_) => break,
        }
    }
    for t in readers {
        let _ = t.join();
    }
}

/// Walks the fault schedule on the server's clock: flips the refusal flag
/// at down-window edges (tearing live connections down on entry) and
/// journals every fault activation/clearance exactly once.
fn fault_driver(
    shared: Arc<Shared>,
    schedule: FaultSchedule,
    replica: ReplicaId,
    obs: Option<aqua_obs::Obs>,
) {
    let mut tracker = FaultTracker::new(schedule.specs().len());
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let now = shared.now();
        if let Some(obs) = &obs {
            tracker.advance(obs, &schedule, now);
        }
        let down = schedule.is_down(replica, now);
        let was = shared.refusing.swap(down, Ordering::SeqCst);
        if down && !was {
            drop_connections(&shared);
        }
        let Some(next) = schedule.next_transition_after(now) else {
            return; // schedule exhausted; a saturated window never clears
        };
        // Sleep toward the next edge in short slices so a crash() still
        // joins promptly.
        let wait = std::time::Duration::from(next.saturating_duration_since(now))
            + StdDuration::from_millis(1);
        let deadline = StdInstant::now() + wait;
        while StdInstant::now() < deadline {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let left = deadline.saturating_duration_since(StdInstant::now());
            std::thread::sleep(left.min(StdDuration::from_millis(20)));
        }
    }
}

fn reader_loop(
    mut stream: TcpStream,
    peer: SocketAddr,
    shared: Arc<Shared>,
    job_tx: Sender<ServiceMsg>,
) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match Frame::read_from(&mut stream) {
            Ok(Frame::Hello { .. }) => {
                if let Ok(writer) = stream.try_clone() {
                    shared.subscribers.lock().push((peer, writer));
                }
            }
            Ok(Frame::Request {
                seq,
                method,
                payload,
            }) => {
                let Ok(writer) = stream.try_clone() else {
                    return;
                };
                // t2: enqueue time.
                let job = Job {
                    writer,
                    peer,
                    seq,
                    method,
                    payload,
                    enqueued: StdInstant::now(),
                };
                if job_tx.send(ServiceMsg::Job(job)).is_err() {
                    return;
                }
            }
            Ok(_) => {} // clients do not send replies/updates
            Err(_) => {
                // EOF or reset: deregister this peer's subscription.
                shared.subscribers.lock().retain(|(p, _)| *p != peer);
                return;
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn service_loop(
    shared: Arc<Shared>,
    job_rx: Receiver<ServiceMsg>,
    replica: ReplicaId,
    service: ServiceTimeModel,
    seed: u64,
    crash_after: Option<u64>,
    metrics: Option<ServerMetrics>,
    faults: FaultSchedule,
) {
    let mut rng = SmallRng::seed_from_u64(seed);
    // Reused frame buffer: replies and perf updates are encoded once per
    // job into this scratch space instead of allocating per frame (and
    // per subscriber).
    let mut frame_buf: Vec<u8> = Vec::with_capacity(256);
    loop {
        // Blocking receive: the sole wakeups are jobs, the crash sentinel,
        // and channel teardown — no polling.
        let job = match job_rx.recv() {
            Ok(ServiceMsg::Job(job)) => job,
            Ok(ServiceMsg::Shutdown) | Err(_) => return,
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            // Crashed while this job sat in the queue: discard it.
            return;
        }
        let now = shared.now();
        if faults.is_down(replica, now) {
            // A scheduled down window swallows queued work silently, like
            // a crashed process losing its queue.
            continue;
        }
        if let Some(until) = faults.paused_until(replica, now) {
            // Pause/stall: the service thread wedges but queued work
            // survives and is serviced after the resume.
            let stall = std::time::Duration::from(until.saturating_duration_since(now));
            std::thread::sleep(stall);
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
        }
        // t3: dequeue; tq = t3 − t2.
        let queue_ns = job.enqueued.elapsed().as_nanos() as u64;
        let factor = faults.service_factor(replica, shared.now());
        let target: std::time::Duration = service.sample(&mut rng).mul_f64(factor).into();
        let service_started = StdInstant::now();
        if !target.is_zero() {
            std::thread::sleep(target);
        }
        let service_ns = service_started.elapsed().as_nanos() as u64;
        let queue_len = job_rx.len() as u32;
        if let Some(m) = &metrics {
            m.serviced.inc();
            m.service_ns.record(service_ns);
            m.queue_ns.record(queue_ns);
            m.queue_depth.set(i64::from(queue_len));
        }

        let reply = Frame::Reply {
            seq: job.seq,
            replica: replica.index(),
            service_ns,
            queue_ns,
            queue_len,
            method: job.method,
            payload: job.payload,
        };
        let reply_at = shared.now();
        let spike = faults.reply_delay(replica, reply_at);
        if !spike.is_zero() {
            // Network delay spike on the reply path.
            std::thread::sleep(spike.into());
        }
        let mut writer = job.writer;
        frame_buf.clear();
        reply.encode_into(&mut frame_buf);
        if faults.should_drop(Some(replica), None, reply_at) {
            // The reply message is lost; the client's redundancy or retry
            // has to mask it.
        } else if writer.write_all(&frame_buf).is_err() {
            shared.subscribers.lock().retain(|(p, _)| *p != job.peer);
        }

        // Publish to every *other* subscriber (the requester already got
        // the data piggybacked on its reply).
        {
            let mut subs = shared.subscribers.lock();
            // With no other subscriber — the common single-client and
            // mux-pool case — skip the encode entirely.
            if subs.iter().any(|(p, _)| *p != job.peer) {
                let update = Frame::PerfUpdate {
                    replica: replica.index(),
                    service_ns,
                    queue_ns,
                    queue_len,
                    method: job.method,
                };
                // One encoding serves every subscriber.
                frame_buf.clear();
                update.encode_into(&mut frame_buf);
                subs.retain_mut(|(p, w)| *p == job.peer || w.write_all(&frame_buf).is_ok());
            }
        }

        let done = shared.serviced.fetch_add(1, Ordering::Relaxed) + 1;
        if crash_after.is_some_and(|n| done >= n) {
            crash(&shared);
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn connect(addr: SocketAddr) -> TcpStream {
        let s = TcpStream::connect(addr).expect("connect");
        s.set_nodelay(true).ok();
        s
    }

    #[test]
    fn serves_a_request_with_perf_data() {
        let server =
            ReplicaServer::spawn(ReplicaServerConfig::quick(ReplicaId::new(1), 5)).unwrap();
        let mut conn = connect(server.addr());
        Frame::Request {
            seq: 9,
            method: 3,
            payload: Bytes::from_static(b"ping"),
        }
        .write_to(&mut conn)
        .unwrap();
        conn.flush().unwrap();
        let reply = Frame::read_from(&mut conn).unwrap();
        match reply {
            Frame::Reply {
                seq,
                replica,
                service_ns,
                method,
                payload,
                ..
            } => {
                assert_eq!(seq, 9);
                assert_eq!(replica, 1);
                assert_eq!(method, 3);
                assert_eq!(payload, Bytes::from_static(b"ping"));
                assert!(service_ns >= 5_000_000, "slept ≥ 5 ms: {service_ns}");
            }
            other => panic!("expected reply, got {other:?}"),
        }
        assert_eq!(server.serviced(), 1);
    }

    #[test]
    fn subscribers_receive_updates_for_others_requests() {
        let server =
            ReplicaServer::spawn(ReplicaServerConfig::quick(ReplicaId::new(2), 1)).unwrap();
        // Subscriber connection.
        let mut sub = connect(server.addr());
        Frame::Hello { client: 7 }.write_to(&mut sub).unwrap();
        // Give the server a beat to register the subscription.
        std::thread::sleep(StdDuration::from_millis(50));
        // Requester connection.
        let mut req = connect(server.addr());
        Frame::Request {
            seq: 1,
            method: 0,
            payload: Bytes::new(),
        }
        .write_to(&mut req)
        .unwrap();
        let _ = Frame::read_from(&mut req).unwrap();
        sub.set_read_timeout(Some(StdDuration::from_secs(2))).ok();
        match Frame::read_from(&mut sub).unwrap() {
            Frame::PerfUpdate { replica, .. } => assert_eq!(replica, 2),
            other => panic!("expected perf update, got {other:?}"),
        }
    }

    #[test]
    fn crash_tears_down_connections() {
        let server =
            ReplicaServer::spawn(ReplicaServerConfig::quick(ReplicaId::new(3), 1)).unwrap();
        let mut conn = connect(server.addr());
        server.crash();
        assert!(server.is_crashed());
        conn.set_read_timeout(Some(StdDuration::from_secs(2))).ok();
        let err = Frame::read_from(&mut conn).unwrap_err();
        assert!(
            matches!(
                err.kind(),
                io::ErrorKind::UnexpectedEof
                    | io::ErrorKind::ConnectionReset
                    | io::ErrorKind::ConnectionAborted
            ),
            "{err:?}"
        );
    }

    #[test]
    fn crash_after_n_requests() {
        let mut cfg = ReplicaServerConfig::quick(ReplicaId::new(4), 1);
        cfg.crash_after = Some(2);
        let server = ReplicaServer::spawn(cfg).unwrap();
        let mut conn = connect(server.addr());
        for seq in 0..2 {
            Frame::Request {
                seq,
                method: 0,
                payload: Bytes::new(),
            }
            .write_to(&mut conn)
            .unwrap();
            let _ = Frame::read_from(&mut conn).unwrap();
        }
        // Allow the crash to propagate.
        std::thread::sleep(StdDuration::from_millis(100));
        assert!(server.is_crashed());
        assert_eq!(server.serviced(), 2);
    }
}
