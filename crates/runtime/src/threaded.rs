//! The retained thread-per-connection baseline: the writer/reader-thread
//! socket client that the reactor-based [`crate::AquaClient`] replaced.
//!
//! One OS thread pair per replica connection: a writer thread that
//! batch-drains its frame channel into a reusable buffer and flushes with
//! one `write`, and a reader thread that blocks on the socket and applies
//! frames into the handler's sharded write path. Byte-compatible with the
//! reactor client — identical frames in identical order per connection —
//! so `throughput_bench` can A/B the two transports on identical
//! workloads (feature `threaded-baseline`, mirroring `serialized-baseline`
//! from the concurrent-gateway PR). Unlike its ancestor it tracks every
//! spawned thread and joins them on drop.

use std::collections::{HashMap, HashSet};
use std::io::{self, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, RwLock, Weak};
use std::thread::JoinHandle;
use std::time::Instant as StdInstant;

use aqua_core::qos::ReplicaId;
use aqua_core::repository::{MethodId, PerfReport};
use aqua_core::time::{Duration, Instant};
use aqua_gateway::{ConcurrentHandler, ReplyOutcome};
use aqua_strategies::SelectionStrategy;
use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use crate::client::{AquaClientConfig, CallError, CallOutcome, StopSignal, WireMetrics};
use crate::wire::Frame;

/// Number of waiter-table shards (sequence numbers hash across them).
const WAITER_SHARDS: usize = 16;

/// One resolved call message on a waiter channel.
enum WaitMsg {
    Outcome(CallOutcome),
    NoReplicas,
}

/// An in-flight call attempt awaiting its first reply.
struct Waiter {
    tx: Sender<WaitMsg>,
    redundancy: usize,
    group: Vec<u64>,
}

struct Inner {
    handler: ConcurrentHandler,
    /// Per-replica writer channels; the writer threads own the sockets.
    conns: RwLock<HashMap<ReplicaId, Sender<Frame>>>,
    waiters: Vec<Mutex<HashMap<u64, Waiter>>>,
    addrs: Mutex<HashMap<ReplicaId, SocketAddr>>,
    backoff: Mutex<HashMap<ReplicaId, u32>>,
    epoch: StdInstant,
    wire: Option<WireMetrics>,
    reconnect: Option<crate::ReconnectPolicy>,
    client_id: u64,
    /// Raised on teardown: readers skip disconnect handling, reconnect
    /// waits abort.
    stop: Arc<StopSignal>,
    /// Every spawned thread (writers, readers, reconnectors), joined on
    /// drop.
    threads: Mutex<Vec<JoinHandle<()>>>,
    /// Reader-side socket clones, shut down on teardown to unblock reads.
    sockets: Mutex<Vec<TcpStream>>,
}

impl Inner {
    fn now(&self) -> Instant {
        Instant::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }

    fn waiter_shard(&self, seq: u64) -> &Mutex<HashMap<u64, Waiter>> {
        &self.waiters[(seq as usize) % WAITER_SHARDS]
    }

    fn conn(&self, id: ReplicaId) -> Option<Sender<Frame>> {
        let conns = self.conns.read().unwrap_or_else(|p| p.into_inner());
        conns.get(&id).cloned()
    }

    fn track(&self, handle: JoinHandle<()>) {
        let mut threads = self.threads.lock();
        threads.retain(|t| !t.is_finished());
        threads.push(handle);
    }

    fn open_connection(self: &Arc<Self>, id: ReplicaId, addr: SocketAddr) -> io::Result<()> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        if let Ok(clone) = stream.try_clone() {
            self.sockets.lock().push(clone);
        }
        let (tx, rx) = unbounded();
        let _ = tx.send(Frame::Hello {
            client: self.client_id,
        });
        {
            let mut conns = self.conns.write().unwrap_or_else(|p| p.into_inner());
            conns.insert(id, tx);
        }
        {
            let mut addrs = self.addrs.lock();
            addrs.insert(id, addr);
        }
        let wire = self.wire.clone();
        self.track(std::thread::spawn(move || writer_loop(writer, rx, wire)));
        let weak = Arc::downgrade(self);
        self.track(std::thread::spawn(move || reader_loop(weak, stream, id)));
        Ok(())
    }

    fn multicast(
        &self,
        seq: u64,
        method: MethodId,
        payload: &Bytes,
        replicas: &[ReplicaId],
    ) -> usize {
        let mut sent = 0usize;
        for id in replicas {
            let Some(tx) = self.conn(*id) else { continue };
            let frame = Frame::Request {
                seq,
                method: method.index(),
                payload: payload.clone(),
            };
            if tx.send(frame).is_ok() {
                sent += 1;
            }
        }
        sent
    }

    fn clear_waiters(&self, seqs: &[u64]) {
        for s in seqs {
            let mut shard = self.waiter_shard(*s).lock();
            shard.remove(s);
        }
    }

    fn on_frame(&self, id: ReplicaId, frame: Frame) {
        if let Some(wire) = &self.wire {
            wire.on_received(&frame);
        }
        {
            let mut backoff = self.backoff.lock();
            backoff.remove(&id);
        }
        match frame {
            Frame::Reply {
                seq,
                replica,
                service_ns,
                queue_ns,
                queue_len,
                method,
                payload,
            } => {
                let perf = PerfReport {
                    service_time: Duration::from_nanos(service_ns),
                    queuing_delay: Duration::from_nanos(queue_ns),
                    queue_len,
                    method: MethodId::new(method),
                };
                let replica = ReplicaId::new(replica);
                let now = self.now();
                let outcome = self.handler.on_reply(now, seq, replica, perf);
                if let ReplyOutcome::Deliver {
                    response_time,
                    verdict,
                } = outcome
                {
                    self.deliver(seq, replica, response_time, verdict, payload);
                }
            }
            Frame::PerfUpdate {
                replica,
                service_ns,
                queue_ns,
                queue_len,
                method,
            } => {
                let perf = PerfReport {
                    service_time: Duration::from_nanos(service_ns),
                    queuing_delay: Duration::from_nanos(queue_ns),
                    queue_len,
                    method: MethodId::new(method),
                };
                self.handler
                    .on_perf_update(self.now(), ReplicaId::new(replica), perf);
            }
            _ => {}
        }
    }

    fn deliver(
        &self,
        seq: u64,
        replica: ReplicaId,
        response_time: Duration,
        verdict: aqua_core::failure::TimingVerdict,
        payload: Bytes,
    ) {
        let waiter = {
            let mut shard = self.waiter_shard(seq).lock();
            shard.remove(&seq)
        };
        let Some(waiter) = waiter else {
            return;
        };
        for s in &waiter.group {
            if *s != seq {
                let mut shard = self.waiter_shard(*s).lock();
                shard.remove(s);
            }
        }
        let outcome = CallOutcome {
            response_time,
            timely: verdict.is_timely(),
            callback: verdict.should_notify(),
            redundancy: waiter.redundancy,
            replica,
            payload,
        };
        let _ = waiter.tx.send(WaitMsg::Outcome(outcome));
    }

    fn on_disconnect(self: &Arc<Self>, id: ReplicaId) {
        let remaining: Vec<ReplicaId> = {
            let mut conns = self.conns.write().unwrap_or_else(|p| p.into_inner());
            conns.remove(&id);
            conns.keys().copied().collect()
        };
        let now = self.now();
        self.handler.on_view(now, remaining.iter().copied());
        if remaining.is_empty() {
            self.fail_all_waiters(now);
        }
        self.spawn_reconnect(id);
    }

    fn fail_all_waiters(&self, now: Instant) {
        let mut drained: Vec<(u64, Waiter)> = Vec::new();
        for shard in &self.waiters {
            let mut shard = shard.lock();
            drained.extend(shard.drain());
        }
        let mut handled: HashSet<u64> = HashSet::new();
        for (seq, waiter) in drained {
            if handled.contains(&seq) {
                continue;
            }
            let mut group = waiter.group.clone();
            group.sort_unstable();
            let last = *group.last().unwrap_or(&seq);
            for s in &group {
                handled.insert(*s);
                if *s != last {
                    self.handler.on_abandon(now, *s);
                }
            }
            self.handler.on_give_up(now, last);
            let _ = waiter.tx.send(WaitMsg::NoReplicas);
        }
    }

    fn spawn_reconnect(self: &Arc<Self>, id: ReplicaId) {
        let Some(policy) = self.reconnect.clone() else {
            return;
        };
        let weak = Arc::downgrade(self);
        let stop = Arc::clone(&self.stop);
        let handle = std::thread::spawn(move || loop {
            if stop.is_raised() {
                return;
            }
            let Some(inner) = weak.upgrade() else { return };
            {
                let conns = inner.conns.read().unwrap_or_else(|p| p.into_inner());
                if conns.contains_key(&id) {
                    return;
                }
            }
            let addr = {
                let addrs = inner.addrs.lock();
                addrs.get(&id).copied()
            };
            let Some(addr) = addr else { return };
            let attempt = {
                let mut backoff = inner.backoff.lock();
                let counter = backoff.entry(id).or_insert(0);
                let attempt = *counter;
                *counter += 1;
                attempt
            };
            if attempt >= policy.max_attempts {
                return;
            }
            let delay = std::time::Duration::from(policy.initial_backoff)
                .saturating_mul(1u32 << attempt.min(16))
                .min(std::time::Duration::from(policy.max_backoff));
            drop(inner);
            if stop.wait(delay) {
                return;
            }
            let Some(inner) = weak.upgrade() else { return };
            if inner.open_connection(id, addr).is_err() {
                continue;
            }
            if let Some(wire) = &inner.wire {
                wire.reconnects.inc();
            }
            inner.handler.on_rejoin(inner.now(), id);
            return;
        });
        self.track(handle);
    }
}

/// Owns one replica socket's send half: drains the frame channel into a
/// reusable buffer — batching whatever has queued up — and flushes the
/// batch with a single write.
fn writer_loop(mut stream: TcpStream, rx: Receiver<Frame>, wire: Option<WireMetrics>) {
    let mut buf: Vec<u8> = Vec::with_capacity(4096);
    let mut frames: Vec<Frame> = Vec::new();
    loop {
        let Ok(first) = rx.recv() else { return };
        buf.clear();
        frames.clear();
        first.encode_into(&mut buf);
        frames.push(first);
        while let Ok(next) = rx.try_recv() {
            next.encode_into(&mut buf);
            frames.push(next);
        }
        if stream.write_all(&buf).is_err() {
            return; // the reader observes the teardown and handles it
        }
        if let Some(wire) = &wire {
            for frame in &frames {
                wire.on_sent(frame);
            }
        }
    }
}

fn reader_loop(weak: Weak<Inner>, mut stream: TcpStream, id: ReplicaId) {
    loop {
        match Frame::read_from(&mut stream) {
            Ok(frame) => {
                let Some(inner) = weak.upgrade() else { return };
                inner.on_frame(id, frame);
            }
            Err(_) => {
                let Some(inner) = weak.upgrade() else { return };
                if inner.stop.is_raised() {
                    return; // teardown, not a crash
                }
                inner.on_disconnect(id);
                return;
            }
        }
    }
}

fn resolve(msg: WaitMsg) -> Result<CallOutcome, CallError> {
    match msg {
        WaitMsg::Outcome(outcome) => Ok(outcome),
        WaitMsg::NoReplicas => Err(CallError::NoReplicas),
    }
}

/// The thread-per-connection baseline client. See the module docs; the
/// call protocol is identical to [`crate::AquaClient`], only the
/// transport differs.
pub struct ThreadedClient {
    inner: Arc<Inner>,
    give_up_after: Duration,
    retry_after: Option<Duration>,
}

impl std::fmt::Debug for ThreadedClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let replicas = {
            let conns = self.inner.conns.read().unwrap_or_else(|p| p.into_inner());
            conns.len()
        };
        f.debug_struct("ThreadedClient")
            .field("replicas", &replicas)
            .finish()
    }
}

impl Drop for ThreadedClient {
    fn drop(&mut self) {
        self.inner.stop.raise();
        // Dropping the senders stops the writers; shutting the sockets
        // down unblocks the readers.
        {
            let mut conns = self.inner.conns.write().unwrap_or_else(|p| p.into_inner());
            conns.clear();
        }
        for socket in self.inner.sockets.lock().drain(..) {
            let _ = socket.shutdown(std::net::Shutdown::Both);
        }
        let threads: Vec<JoinHandle<()>> = {
            let mut threads = self.inner.threads.lock();
            threads.drain(..).collect()
        };
        for t in threads {
            let _ = t.join();
        }
    }
}

impl ThreadedClient {
    /// Connects to every replica, subscribes to performance updates, and
    /// initializes the handler with the given strategy.
    ///
    /// # Errors
    ///
    /// Fails if any initial connection cannot be established.
    pub fn connect(
        replicas: &[(ReplicaId, SocketAddr)],
        config: AquaClientConfig,
        strategy: Box<dyn SelectionStrategy>,
    ) -> io::Result<ThreadedClient> {
        let mut handler = ConcurrentHandler::new(config.qos, config.window, strategy);
        if let Some(obs) = &config.obs {
            handler.attach_obs(obs, Some(config.id));
        }
        let wire = config
            .obs
            .as_ref()
            .map(|obs| WireMetrics::new(obs, config.id));
        let inner = Arc::new(Inner {
            handler,
            conns: RwLock::new(HashMap::new()),
            waiters: (0..WAITER_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            addrs: Mutex::new(HashMap::new()),
            backoff: Mutex::new(HashMap::new()),
            epoch: StdInstant::now(),
            wire,
            reconnect: config.reconnect.clone(),
            client_id: config.id,
            stop: Arc::new(StopSignal::new()),
            threads: Mutex::new(Vec::new()),
            sockets: Mutex::new(Vec::new()),
        });
        for (id, addr) in replicas {
            inner.open_connection(*id, *addr)?;
            inner.handler.insert_replica(inner.now(), *id);
        }
        Ok(ThreadedClient {
            inner,
            give_up_after: config.give_up_after,
            retry_after: config.retry_after,
        })
    }

    /// Runs `f` against the handler (repository inspection, stats, …).
    pub fn with_handler<R>(&self, f: impl FnOnce(&ConcurrentHandler) -> R) -> R {
        f(&self.inner.handler)
    }

    /// Emits any request spans still buffered by the handler's observer
    /// and flushes the journal.
    pub fn finish_observability(&self) {
        self.inner.handler.flush_observability();
    }

    /// Invokes the replicated service: selects replicas per the QoS spec,
    /// multicasts the request, and returns the earliest reply. Identical
    /// protocol to [`crate::AquaClient::call`].
    ///
    /// # Errors
    ///
    /// [`CallError::NoReplicas`] when every replica is gone,
    /// [`CallError::GaveUp`] when no selected replica answered within the
    /// give-up window, [`CallError::Io`] on transport failures during send.
    pub fn call(&self, method: MethodId, payload: &[u8]) -> Result<CallOutcome, CallError> {
        let inner = &self.inner;
        let t0 = inner.now();
        let started = StdInstant::now();
        let give_up = std::time::Duration::from(self.give_up_after);
        let payload = Bytes::copy_from_slice(payload);

        let plan = inner.handler.plan_request_for(t0, Some(method));
        if plan.replicas.is_empty() {
            inner.handler.on_give_up(inner.now(), plan.seq);
            return Err(CallError::NoReplicas);
        }
        let first_seq = plan.seq;
        let first_selection = plan.replicas;
        let mut redundancy = first_selection.len();
        let (tx, rx) = bounded(2);
        {
            let mut shard = inner.waiter_shard(first_seq).lock();
            shard.insert(
                first_seq,
                Waiter {
                    tx: tx.clone(),
                    redundancy,
                    group: vec![first_seq],
                },
            );
        }
        let sent = inner.multicast(first_seq, method, &payload, &first_selection);
        if sent == 0 {
            inner.clear_waiters(&[first_seq]);
            inner.handler.on_give_up(inner.now(), first_seq);
            return Err(CallError::GaveUp { redundancy });
        }
        let mut seqs = vec![first_seq];

        if let Some(retry_after) = self.retry_after {
            let wait = std::time::Duration::from(retry_after).min(give_up);
            match rx.recv_timeout(wait) {
                Ok(msg) => {
                    inner.clear_waiters(&seqs);
                    return resolve(msg);
                }
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                    let now = inner.now();
                    let retry = inner.handler.plan_retry(
                        now,
                        Some(method),
                        t0,
                        first_seq,
                        &first_selection,
                    );
                    if let Some(plan) = retry {
                        let added = plan.replicas.len();
                        let group = vec![first_seq, plan.seq];
                        {
                            let mut shard = inner.waiter_shard(first_seq).lock();
                            if let Some(w) = shard.get_mut(&first_seq) {
                                w.group.clone_from(&group);
                                w.redundancy = redundancy + added;
                            }
                        }
                        {
                            let mut shard = inner.waiter_shard(plan.seq).lock();
                            shard.insert(
                                plan.seq,
                                Waiter {
                                    tx: tx.clone(),
                                    redundancy: redundancy + added,
                                    group,
                                },
                            );
                        }
                        let sent = inner.multicast(plan.seq, method, &payload, &plan.replicas);
                        if sent > 0 {
                            redundancy += added;
                            seqs.push(plan.seq);
                        } else {
                            inner.clear_waiters(&[plan.seq]);
                            {
                                let mut shard = inner.waiter_shard(first_seq).lock();
                                if let Some(w) = shard.get_mut(&first_seq) {
                                    w.group = vec![first_seq];
                                    w.redundancy = redundancy;
                                }
                            }
                            inner.handler.on_abandon(now, plan.seq);
                        }
                    }
                }
            }
        }

        let remaining = give_up.saturating_sub(started.elapsed());
        match rx.recv_timeout(remaining) {
            Ok(msg) => {
                inner.clear_waiters(&seqs);
                resolve(msg)
            }
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                let now = inner.now();
                if let Some((last, earlier)) = seqs.split_last() {
                    for s in earlier {
                        inner.handler.on_abandon(now, *s);
                    }
                    if !inner.handler.on_give_up(now, *last) {
                        let msg = rx.recv_timeout(std::time::Duration::from_secs(1)).ok();
                        inner.clear_waiters(&seqs);
                        if let Some(msg) = msg {
                            return resolve(msg);
                        }
                        return Err(CallError::GaveUp { redundancy });
                    }
                }
                inner.clear_waiters(&seqs);
                drop(tx);
                Err(CallError::GaveUp { redundancy })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ReplicaServer, ReplicaServerConfig};
    use aqua_core::qos::QosSpec;
    use aqua_strategies::ModelBased;

    #[test]
    fn threaded_baseline_calls_and_joins_on_drop() {
        let servers: Vec<ReplicaServer> = (0..2)
            .map(|i| {
                ReplicaServer::spawn(ReplicaServerConfig::quick(ReplicaId::new(i), 2)).unwrap()
            })
            .collect();
        let replicas: Vec<(ReplicaId, SocketAddr)> =
            servers.iter().map(|s| (s.replica(), s.addr())).collect();
        let qos = QosSpec::new(Duration::from_millis(500), 0.9).unwrap();
        let client = ThreadedClient::connect(
            &replicas,
            AquaClientConfig::new(qos),
            Box::new(ModelBased::default()),
        )
        .expect("connect");
        for _ in 0..4 {
            let out = client.call(MethodId::DEFAULT, b"ab").expect("call");
            assert_eq!(out.payload, Bytes::from_static(b"ab"));
        }
        client.with_handler(|h| assert_eq!(h.stats().delivered, 4));
        // Drop must return promptly with no leaked threads blocking it.
        drop(client);
    }
}
