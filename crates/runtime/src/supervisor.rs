//! Socket-runtime actuation for the elastic supervisor (DESIGN.md §14).
//!
//! The decision engine is the same [`SupervisorPolicy`] the simulator's
//! `DependabilityManager` runs — pure logic, shared verbatim — and this
//! driver is the thin seam that feeds it from a live [`AquaClient`]:
//! replica-scoped calibration alerts arrive through the client's
//! watchdog hook, queue depths are sampled from the merged information
//! repository's piggybacked `outstanding` counts, and the embedder calls
//! [`SupervisorDriver::tick`] on its own cadence (a timer thread, the
//! chaos harness's loop, …) and actuates the returned actions with the
//! client API: [`AquaClient::renegotiate`] on an escalation,
//! [`AquaClient::add_replica`] to cover a deficit, dropping a server
//! handle to drain it.
//!
//! Splitting decision from actuation keeps the policy testable and the
//! replay story intact: a seeded driver produces the same action
//! sequence as the simulated manager fed the same observations.

use std::sync::{Arc, Mutex};

use aqua_core::time::Instant;
use aqua_gateway::{SupervisorAction, SupervisorConfig, SupervisorPolicy};

use crate::client::AquaClient;

/// Hosts one [`SupervisorPolicy`] for a socket deployment. Cheap to
/// clone (shared state); hooks registered with [`watch`] keep feeding
/// the same policy.
///
/// [`watch`]: SupervisorDriver::watch
#[derive(Clone)]
pub struct SupervisorDriver {
    policy: Arc<Mutex<SupervisorPolicy>>,
}

impl SupervisorDriver {
    /// A driver starting at `initial_target` replicas (clamped to the
    /// configured bounds).
    pub fn new(initial_target: usize, config: SupervisorConfig) -> Self {
        SupervisorDriver {
            policy: Arc::new(Mutex::new(SupervisorPolicy::new(initial_target, config))),
        }
    }

    /// Registers this driver on the client's calibration watchdog:
    /// replica-scoped alerts become quarantine evidence, set-scoped
    /// alerts become overload evidence. No-op without observability
    /// configured on the client.
    pub fn watch(&self, client: &AquaClient) {
        let policy = Arc::clone(&self.policy);
        client.on_calibration_alert(move |alert| {
            policy
                .lock()
                .expect("supervisor policy poisoned")
                .on_alert(Instant::from_nanos(alert.at_nanos), alert.replica);
        });
    }

    /// Samples every replica's smoothed queue depth from the client's
    /// merged repository (the `outstanding` counts piggybacked on perf
    /// reports). Call alongside [`tick`](SupervisorDriver::tick).
    pub fn sample_queues(&self, client: &AquaClient) {
        let repository = client.with_handler(|h| h.repository());
        let mut policy = self.policy.lock().expect("supervisor policy poisoned");
        for (id, stats) in repository.iter() {
            policy.on_queue_sample(id.index(), stats.outstanding());
        }
    }

    /// Feeds one queue-depth observation directly (for embedders that
    /// tap perf updates themselves).
    pub fn on_queue_sample(&self, replica: u64, queue_len: u32) {
        self.policy
            .lock()
            .expect("supervisor policy poisoned")
            .on_queue_sample(replica, queue_len);
    }

    /// Forgets a replica's signal history (it left the fleet); a rejoin
    /// starts clean.
    pub fn forget(&self, replica: u64) {
        self.policy
            .lock()
            .expect("supervisor policy poisoned")
            .forget(replica);
    }

    /// The current effective replication target.
    pub fn target(&self) -> usize {
        self.policy
            .lock()
            .expect("supervisor policy poisoned")
            .target()
    }

    /// Runs one decision round against the live fleet and returns the
    /// actions to actuate, in order. The policy assumes every returned
    /// action is carried out.
    pub fn tick(&self, now: Instant, live: &[u64]) -> Vec<SupervisorAction> {
        self.policy
            .lock()
            .expect("supervisor policy poisoned")
            .tick(now, live)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_core::time::Duration;

    fn config(seed: u64) -> SupervisorConfig {
        SupervisorConfig {
            min_replication: 1,
            max_replication: 4,
            overload_queue: 4.0,
            underload_queue: 1.0,
            decision_interval: Duration::from_secs(1),
            seed,
            ..SupervisorConfig::default()
        }
    }

    #[test]
    fn queue_pressure_walks_the_target_both_ways() {
        let driver = SupervisorDriver::new(3, config(7));
        let live = [0, 1, 2];
        for r in live {
            for _ in 0..20 {
                driver.on_queue_sample(r, 9);
            }
        }
        let actions = driver.tick(Instant::from_secs(1), &live);
        assert!(actions
            .iter()
            .any(|a| matches!(a, SupervisorAction::SetTarget { target: 2, .. })));
        assert_eq!(driver.target(), 2);
        for r in live {
            for _ in 0..40 {
                driver.on_queue_sample(r, 0);
            }
        }
        let actions = driver.tick(Instant::from_secs(3), &live);
        assert!(actions
            .iter()
            .any(|a| matches!(a, SupervisorAction::SetTarget { target: 3, .. })));
    }

    #[test]
    fn shared_policy_is_seed_deterministic() {
        let run = |seed| {
            let driver = SupervisorDriver::new(3, config(seed));
            let now = Instant::from_secs(5);
            for r in [0, 1] {
                driver.policy.lock().unwrap().on_alert(now, Some(r));
                driver.policy.lock().unwrap().on_alert(now, Some(r));
            }
            driver.tick(Instant::from_secs(6), &[0, 1, 2])
        };
        assert_eq!(run(42), run(42), "same seed, same victim");
    }
}
