//! The socket client gateway: the same [`TimingFaultHandler`] as the
//! simulation, driven by real TCP connections and the wall clock.
//!
//! One [`AquaClient`] holds a connection to every replica of a service,
//! subscribes to their performance updates, and exposes a synchronous
//! [`AquaClient::call`] that plans the replica subset, multicasts the
//! request, and delivers the earliest reply — measuring everything exactly
//! as §5.4.1 prescribes.
//!
//! Concurrency: a dispatcher thread drains the network events (replies,
//! perf updates, disconnects) into the handler; callers only hold the
//! handler lock while planning, so multiple threads can have calls in
//! flight simultaneously and requests genuinely queue at the replicas.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Instant as StdInstant;

use aqua_core::qos::{QosSpec, ReplicaId};
use aqua_core::repository::{MethodId, PerfReport};
use aqua_core::time::{Duration, Instant};
use aqua_gateway::{ReplyOutcome, TimingFaultHandler};
use aqua_strategies::SelectionStrategy;
use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use crate::wire::Frame;

/// Configuration of a socket client.
#[derive(Debug, Clone)]
pub struct AquaClientConfig {
    /// The client's QoS specification.
    pub qos: QosSpec,
    /// Sliding-window size `l`.
    pub window: usize,
    /// Give up on a call after this long (must exceed the deadline).
    pub give_up_after: Duration,
    /// Client identifier sent in `Hello` (diagnostics only).
    pub id: u64,
    /// Optional observability sink: handler metrics/spans plus wire-level
    /// frame and byte counters.
    pub obs: Option<aqua_obs::Obs>,
    /// Optional deadline-driven retry: when the first selection has not
    /// produced a reply after this long, Algorithm 1 re-runs over the
    /// *remaining* replicas and the request is re-multicast as a sibling
    /// attempt (the original stays live; the earliest reply of either
    /// wins). `None` disables retries.
    pub retry_after: Option<Duration>,
    /// Reconnect policy for replicas lost to TCP teardown. With the
    /// default policy a recovered replica rejoins the connection set and
    /// the repository **on probation**; `None` keeps the historical
    /// evict-forever behavior.
    pub reconnect: Option<ReconnectPolicy>,
}

impl AquaClientConfig {
    /// Paper defaults: window 5, give up after 5 s.
    pub fn new(qos: QosSpec) -> Self {
        AquaClientConfig {
            qos,
            window: 5,
            give_up_after: Duration::from_secs(5),
            id: 0,
            obs: None,
            retry_after: None,
            reconnect: Some(ReconnectPolicy::default()),
        }
    }
}

/// Exponential-backoff reconnect policy for replicas lost to TCP teardown.
///
/// Backoff state is kept per replica and only resets once a **frame**
/// arrives from the recovered replica — a refusing server that accepts and
/// immediately drops connections therefore keeps escalating the delay
/// instead of ping-ponging at the initial backoff.
#[derive(Debug, Clone)]
pub struct ReconnectPolicy {
    /// Delay before the first reconnect attempt.
    pub initial_backoff: Duration,
    /// Ceiling for the doubled backoff delay.
    pub max_backoff: Duration,
    /// Give up on the replica after this many consecutive attempts
    /// without receiving a frame from it.
    pub max_attempts: u32,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy {
            initial_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(1),
            max_attempts: 20,
        }
    }
}

/// A successful call.
#[derive(Debug, Clone)]
pub struct CallOutcome {
    /// End-to-end response time `tr`.
    pub response_time: Duration,
    /// Whether the deadline was met.
    pub timely: bool,
    /// Whether the QoS-violation callback fired.
    pub callback: bool,
    /// How many replicas the request was multicast to.
    pub redundancy: usize,
    /// The replying replica.
    pub replica: ReplicaId,
    /// The reply payload.
    pub payload: Bytes,
}

/// A failed call.
#[derive(Debug)]
pub enum CallError {
    /// No replicas are connected.
    NoReplicas,
    /// No reply arrived within the give-up window (counted as a timing
    /// failure).
    GaveUp {
        /// How many replicas had been selected.
        redundancy: usize,
    },
    /// Transport-level failure.
    Io(io::Error),
}

impl std::fmt::Display for CallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CallError::NoReplicas => write!(f, "no replicas available"),
            CallError::GaveUp { redundancy } => {
                write!(f, "no reply from any of {redundancy} selected replicas")
            }
            CallError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for CallError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CallError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CallError {
    fn from(e: io::Error) -> Self {
        CallError::Io(e)
    }
}

enum NetEvent {
    Frame(ReplicaId, Frame),
    Disconnected(ReplicaId),
}

/// Cached wire-level counters (frames/bytes in each direction), so the
/// hot path never touches the registry lock.
struct WireMetrics {
    frames_sent: Arc<aqua_obs::metrics::Counter>,
    bytes_sent: Arc<aqua_obs::metrics::Counter>,
    frames_received: Arc<aqua_obs::metrics::Counter>,
    bytes_received: Arc<aqua_obs::metrics::Counter>,
    reconnects: Arc<aqua_obs::metrics::Counter>,
}

impl WireMetrics {
    fn new(obs: &aqua_obs::Obs, client: u64) -> Self {
        let client = client.to_string();
        let labels = [("client", client.as_str())];
        let registry = obs.registry();
        WireMetrics {
            frames_sent: registry.counter("aqua_wire_frames_sent_total", &labels),
            bytes_sent: registry.counter("aqua_wire_bytes_sent_total", &labels),
            frames_received: registry.counter("aqua_wire_frames_received_total", &labels),
            bytes_received: registry.counter("aqua_wire_bytes_received_total", &labels),
            reconnects: registry.counter("aqua_client_reconnects_total", &labels),
        }
    }

    fn on_sent(&self, frame: &Frame) {
        self.frames_sent.inc();
        self.bytes_sent.add(frame.encoded_len() as u64);
    }

    fn on_received(&self, frame: &Frame) {
        self.frames_received.inc();
        self.bytes_received.add(frame.encoded_len() as u64);
    }
}

/// One resolved call message on a waiter channel.
enum WaitMsg {
    Outcome(CallOutcome),
    /// Every replica disconnected while the call was in flight.
    NoReplicas,
}

/// An in-flight call attempt awaiting its first reply.
struct Waiter {
    tx: Sender<WaitMsg>,
    /// Total replicas multicast to across all sibling attempts.
    redundancy: usize,
    /// All attempt seqs of the same logical request (including this one);
    /// resolving any attempt retires the rest.
    group: Vec<u64>,
}

struct State {
    handler: TimingFaultHandler,
    writers: HashMap<ReplicaId, TcpStream>,
    /// In-flight call attempts: seq → waiter.
    waiters: HashMap<u64, Waiter>,
    /// Last known address of every replica, for reconnects.
    addrs: HashMap<ReplicaId, SocketAddr>,
    /// Consecutive reconnect attempts per replica since its last frame.
    backoff: HashMap<ReplicaId, u32>,
}

struct Inner {
    state: Mutex<State>,
    event_tx: Sender<NetEvent>,
    epoch: StdInstant,
    wire: Option<WireMetrics>,
    reconnect: Option<ReconnectPolicy>,
    client_id: u64,
}

impl Inner {
    fn now(&self) -> Instant {
        Instant::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }

    /// Applies one network event to the handler; completed calls are
    /// resolved through their waiter channel.
    fn apply_event(self: &Arc<Self>, event: NetEvent) {
        let mut state = self.state.lock();
        // Waiter notifications go out after the guard is released: a
        // channel send under the state lock would stall every other
        // connection thread behind a slow waiter (lock-order rule).
        let mut deferred: Vec<(Sender<WaitMsg>, WaitMsg)> = Vec::new();
        let mut lost: Option<ReplicaId> = None;
        match event {
            NetEvent::Frame(id, frame) => {
                if let Some(wire) = &self.wire {
                    wire.on_received(&frame);
                }
                // A frame is proof of life: the replica's reconnect
                // backoff starts over.
                state.backoff.remove(&id);
                match frame {
                    Frame::Reply {
                        seq,
                        replica,
                        service_ns,
                        queue_ns,
                        queue_len,
                        method,
                        payload,
                    } => {
                        let perf = PerfReport {
                            service_time: Duration::from_nanos(service_ns),
                            queuing_delay: Duration::from_nanos(queue_ns),
                            queue_len,
                            method: MethodId::new(method),
                        };
                        let replica = ReplicaId::new(replica);
                        debug_assert_eq!(replica, id, "replies come from their own connection");
                        let now = self.now();
                        let outcome = state.handler.on_reply(now, seq, replica, perf);
                        if let ReplyOutcome::Deliver {
                            response_time,
                            verdict,
                        } = outcome
                        {
                            if let Some(waiter) = state.waiters.remove(&seq) {
                                // The winning attempt retires its siblings:
                                // they are neither failures nor deliveries.
                                for sibling in &waiter.group {
                                    if *sibling != seq {
                                        state.waiters.remove(sibling);
                                        state.handler.on_abandon(now, *sibling);
                                    }
                                }
                                let outcome = CallOutcome {
                                    response_time,
                                    timely: verdict.is_timely(),
                                    callback: verdict.should_notify(),
                                    redundancy: waiter.redundancy,
                                    replica,
                                    payload,
                                };
                                deferred.push((waiter.tx, WaitMsg::Outcome(outcome)));
                            }
                        }
                    }
                    Frame::PerfUpdate {
                        replica,
                        service_ns,
                        queue_ns,
                        queue_len,
                        method,
                    } => {
                        let perf = PerfReport {
                            service_time: Duration::from_nanos(service_ns),
                            queuing_delay: Duration::from_nanos(queue_ns),
                            queue_len,
                            method: MethodId::new(method),
                        };
                        state
                            .handler
                            .on_perf_update(self.now(), ReplicaId::new(replica), perf);
                    }
                    _ => {}
                }
            }
            NetEvent::Disconnected(id) => {
                // TCP teardown is our crash detector: the replica leaves
                // the "view".
                state.writers.remove(&id);
                let now = self.now();
                let remaining: Vec<ReplicaId> = state.writers.keys().copied().collect();
                state.handler.on_view(now, remaining);
                if state.writers.is_empty() {
                    // Nobody left who could ever answer: fail every
                    // in-flight call immediately instead of letting each
                    // caller ride out its give-up timer.
                    let seqs: Vec<u64> = state.waiters.keys().copied().collect();
                    for seq in seqs {
                        let Some(waiter) = state.waiters.remove(&seq) else {
                            continue; // retired as a sibling already
                        };
                        let mut group = waiter.group.clone();
                        group.sort_unstable();
                        let last = *group.last().unwrap_or(&seq);
                        for s in &group {
                            if *s != seq {
                                state.waiters.remove(s);
                            }
                        }
                        // One timing failure per logical request: the
                        // newest attempt carries it, earlier ones retire.
                        for s in &group {
                            if *s != last {
                                state.handler.on_abandon(now, *s);
                            }
                        }
                        state.handler.on_give_up(last);
                        deferred.push((waiter.tx, WaitMsg::NoReplicas));
                    }
                }
                lost = Some(id);
            }
        }
        drop(state);
        for (tx, msg) in deferred {
            let _ = tx.send(msg);
        }
        if let Some(id) = lost {
            self.spawn_reconnect(id);
        }
    }

    /// Starts the background reconnect loop for a lost replica (if a
    /// policy is configured). On success the replica rejoins the
    /// connection set and the repository **on probation**.
    fn spawn_reconnect(self: &Arc<Self>, id: ReplicaId) {
        let Some(policy) = self.reconnect.clone() else {
            return;
        };
        let weak = Arc::downgrade(self);
        std::thread::spawn(move || loop {
            let Some(inner) = weak.upgrade() else { return };
            let (addr, attempt) = {
                let mut state = inner.state.lock();
                if state.writers.contains_key(&id) {
                    return; // already reconnected elsewhere
                }
                let Some(addr) = state.addrs.get(&id).copied() else {
                    return;
                };
                let counter = state.backoff.entry(id).or_insert(0);
                let attempt = *counter;
                *counter += 1;
                (addr, attempt)
            };
            if attempt >= policy.max_attempts {
                return;
            }
            let delay = std::time::Duration::from(policy.initial_backoff)
                .saturating_mul(1u32 << attempt.min(16))
                .min(std::time::Duration::from(policy.max_backoff));
            drop(inner); // don't pin the client alive while sleeping
            std::thread::sleep(delay);
            let Some(inner) = weak.upgrade() else { return };
            let Ok(stream) = TcpStream::connect(addr) else {
                continue;
            };
            stream.set_nodelay(true).ok();
            let Ok(mut writer) = stream.try_clone() else {
                continue;
            };
            let hello = Frame::Hello {
                client: inner.client_id,
            };
            if hello.write_to(&mut writer).is_err() {
                continue;
            }
            if let Some(wire) = &inner.wire {
                wire.on_sent(&hello);
                wire.reconnects.inc();
            }
            let now = inner.now();
            {
                let mut state = inner.state.lock();
                state.writers.insert(id, writer);
                state.handler.on_rejoin(now, id);
            }
            let tx = inner.event_tx.clone();
            std::thread::spawn(move || reader_loop(stream, id, tx));
            return;
        });
    }
}

/// The socket client gateway. See the module docs.
///
/// Safe to share behind an `Arc`; concurrent [`AquaClient::call`]s proceed
/// in parallel (their requests genuinely queue at the replicas).
pub struct AquaClient {
    inner: Arc<Inner>,
    give_up_after: Duration,
    retry_after: Option<Duration>,
}

impl std::fmt::Debug for AquaClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AquaClient")
            .field("replicas", &self.inner.state.lock().writers.len())
            .finish()
    }
}

impl AquaClient {
    /// Connects to every replica, subscribes to performance updates, and
    /// initializes the handler with the given strategy.
    ///
    /// # Errors
    ///
    /// Fails if any initial connection cannot be established.
    pub fn connect(
        replicas: &[(ReplicaId, SocketAddr)],
        config: AquaClientConfig,
        strategy: Box<dyn SelectionStrategy>,
    ) -> io::Result<AquaClient> {
        let mut handler = TimingFaultHandler::new(config.qos, config.window, strategy);
        if let Some(obs) = &config.obs {
            handler.attach_obs(obs, Some(config.id));
        }
        let wire = config
            .obs
            .as_ref()
            .map(|obs| WireMetrics::new(obs, config.id));
        let (event_tx, event_rx) = unbounded();
        let mut writers = HashMap::new();
        let mut addrs = HashMap::new();
        for (id, addr) in replicas {
            let stream = TcpStream::connect(addr)?;
            stream.set_nodelay(true).ok();
            let mut writer = stream.try_clone()?;
            let hello = Frame::Hello { client: config.id };
            hello.write_to(&mut writer)?;
            if let Some(wire) = &wire {
                wire.on_sent(&hello);
            }
            handler.repository_mut().insert_replica(*id);
            writers.insert(*id, writer);
            addrs.insert(*id, *addr);
            let tx = event_tx.clone();
            let id = *id;
            std::thread::spawn(move || reader_loop(stream, id, tx));
        }
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                handler,
                writers,
                waiters: HashMap::new(),
                addrs,
                backoff: HashMap::new(),
            }),
            event_tx,
            epoch: StdInstant::now(),
            wire,
            reconnect: config.reconnect.clone(),
            client_id: config.id,
        });
        {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || dispatcher_loop(inner, event_rx));
        }
        Ok(AquaClient {
            inner,
            give_up_after: config.give_up_after,
            retry_after: config.retry_after,
        })
    }

    /// Runs `f` against the handler (repository inspection, stats, …).
    pub fn with_handler<R>(&self, f: impl FnOnce(&TimingFaultHandler) -> R) -> R {
        f(&self.inner.state.lock().handler)
    }

    /// Emits any request spans still buffered by the handler's observer
    /// and flushes the journal. Call once at the end of an observed run.
    pub fn finish_observability(&self) {
        self.inner.state.lock().handler.flush_observability();
    }

    /// Renegotiates the QoS specification.
    pub fn renegotiate(&self, qos: QosSpec) {
        self.inner.state.lock().handler.renegotiate(qos);
    }

    /// Connects to an additional replica at runtime (a new member joining
    /// the service group). The replica starts cold, so the next request is
    /// a full multicast that warms it up (§5.4.1's bootstrap rule).
    ///
    /// # Errors
    ///
    /// Propagates connection errors; the client is unchanged on failure.
    pub fn add_replica(&self, id: ReplicaId, addr: SocketAddr) -> io::Result<()> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut writer = stream.try_clone()?;
        let hello = Frame::Hello { client: 0 };
        hello.write_to(&mut writer)?;
        if let Some(wire) = &self.inner.wire {
            wire.on_sent(&hello);
        }
        {
            let mut state = self.inner.state.lock();
            state.handler.repository_mut().insert_replica(id);
            state.writers.insert(id, writer);
            state.addrs.insert(id, addr);
        }
        let tx = self.inner.event_tx.clone();
        std::thread::spawn(move || reader_loop(stream, id, tx));
        Ok(())
    }

    /// Invokes the replicated service: selects replicas per the QoS spec,
    /// multicasts the request, and returns the earliest reply.
    ///
    /// # Errors
    ///
    /// [`CallError::NoReplicas`] when every replica is gone,
    /// [`CallError::GaveUp`] when no selected replica answered within the
    /// give-up window, [`CallError::Io`] on transport failures during send.
    pub fn call(&self, method: MethodId, payload: &[u8]) -> Result<CallOutcome, CallError> {
        let t0 = self.inner.now();
        let started = StdInstant::now();
        let give_up = std::time::Duration::from(self.give_up_after);
        let frame_for = |seq: u64| Frame::Request {
            seq,
            method: method.index(),
            payload: Bytes::copy_from_slice(payload),
        };

        let (first_seq, first_selection, mut redundancy, tx, rx) = {
            let mut state = self.inner.state.lock();
            let plan = state.handler.plan_request_for(t0, Some(method));
            if plan.replicas.is_empty() {
                state.handler.on_give_up(plan.seq);
                return Err(CallError::NoReplicas);
            }
            let sent = self.multicast(&mut state, &frame_for(plan.seq), &plan.replicas);
            let redundancy = plan.replicas.len();
            if sent == 0 {
                state.handler.on_give_up(plan.seq);
                return Err(CallError::GaveUp { redundancy });
            }
            let (tx, rx) = bounded(2);
            state.waiters.insert(
                plan.seq,
                Waiter {
                    tx: tx.clone(),
                    redundancy,
                    group: vec![plan.seq],
                },
            );
            (plan.seq, plan.replicas, redundancy, tx, rx)
        };
        let mut seqs = vec![first_seq];

        // Stage 1 (optional): wait until the intermediate retry deadline,
        // then re-run Algorithm 1 over the remaining replicas and multicast
        // a sibling attempt. The original stays live; earliest reply wins.
        if let Some(retry_after) = self.retry_after {
            let wait = std::time::Duration::from(retry_after).min(give_up);
            match rx.recv_timeout(wait) {
                Ok(msg) => return resolve(msg),
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                    let mut state = self.inner.state.lock();
                    if let Ok(msg) = rx.try_recv() {
                        return resolve(msg);
                    }
                    if state.waiters.contains_key(&first_seq) {
                        let now = self.inner.now();
                        let retry = state.handler.plan_retry(
                            now,
                            Some(method),
                            t0,
                            first_seq,
                            &first_selection,
                        );
                        if let Some(plan) = retry {
                            let sent =
                                self.multicast(&mut state, &frame_for(plan.seq), &plan.replicas);
                            if sent > 0 {
                                redundancy += plan.replicas.len();
                                let group = vec![first_seq, plan.seq];
                                if let Some(w) = state.waiters.get_mut(&first_seq) {
                                    w.group.clone_from(&group);
                                    w.redundancy = redundancy;
                                }
                                state.waiters.insert(
                                    plan.seq,
                                    Waiter {
                                        tx: tx.clone(),
                                        redundancy,
                                        group,
                                    },
                                );
                                seqs.push(plan.seq);
                            } else {
                                // Nobody reachable for the retry: retire
                                // the attempt quietly.
                                state.handler.on_abandon(now, plan.seq);
                            }
                        }
                    }
                }
            }
        }

        // Stage 2: wait out the rest of the give-up window.
        let remaining = give_up.saturating_sub(started.elapsed());
        match rx.recv_timeout(remaining) {
            Ok(msg) => resolve(msg),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                // Race window: the dispatcher may have resolved the call
                // between the timeout and us taking the lock.
                let mut state = self.inner.state.lock();
                if let Ok(msg) = rx.try_recv() {
                    return resolve(msg);
                }
                // One timing failure per logical request: the newest
                // attempt carries the give-up, earlier ones retire.
                let now = self.inner.now();
                for s in &seqs {
                    state.waiters.remove(s);
                }
                if let Some((last, earlier)) = seqs.split_last() {
                    for s in earlier {
                        state.handler.on_abandon(now, *s);
                    }
                    state.handler.on_give_up(*last);
                }
                drop(tx);
                Err(CallError::GaveUp { redundancy })
            }
        }
    }

    /// Writes `frame` to every listed replica that still has a live
    /// connection; returns how many writes succeeded.
    fn multicast(&self, state: &mut State, frame: &Frame, replicas: &[ReplicaId]) -> usize {
        let mut sent = 0usize;
        for id in replicas {
            if let Some(writer) = state.writers.get_mut(id) {
                if frame.write_to(writer).is_ok() {
                    sent += 1;
                    if let Some(wire) = &self.inner.wire {
                        wire.on_sent(frame);
                    }
                }
            }
        }
        sent
    }
}

fn resolve(msg: WaitMsg) -> Result<CallOutcome, CallError> {
    match msg {
        WaitMsg::Outcome(outcome) => Ok(outcome),
        WaitMsg::NoReplicas => Err(CallError::NoReplicas),
    }
}

fn dispatcher_loop(inner: Arc<Inner>, events: Receiver<NetEvent>) {
    while let Ok(ev) = events.recv() {
        inner.apply_event(ev);
    }
}

fn reader_loop(mut stream: TcpStream, id: ReplicaId, tx: Sender<NetEvent>) {
    loop {
        match Frame::read_from(&mut stream) {
            Ok(frame) => {
                if tx.send(NetEvent::Frame(id, frame)).is_err() {
                    return;
                }
            }
            Err(_) => {
                let _ = tx.send(NetEvent::Disconnected(id));
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ReplicaServer, ReplicaServerConfig};
    use aqua_strategies::ModelBased;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn spawn_servers(service_ms: &[u64]) -> Vec<ReplicaServer> {
        service_ms
            .iter()
            .enumerate()
            .map(|(i, s)| {
                ReplicaServer::spawn(ReplicaServerConfig::quick(ReplicaId::new(i as u64), *s))
                    .expect("spawn")
            })
            .collect()
    }

    fn client_for(servers: &[ReplicaServer], qos: QosSpec) -> AquaClient {
        let replicas: Vec<(ReplicaId, SocketAddr)> =
            servers.iter().map(|s| (s.replica(), s.addr())).collect();
        AquaClient::connect(
            &replicas,
            AquaClientConfig::new(qos),
            Box::new(ModelBased::default()),
        )
        .expect("connect")
    }

    #[test]
    fn end_to_end_calls_over_sockets() {
        let servers = spawn_servers(&[5, 10, 15]);
        let qos = QosSpec::new(ms(500), 0.9).unwrap();
        let client = client_for(&servers, qos);
        let mut redundancies = Vec::new();
        for _ in 0..6 {
            let out = client
                .call(MethodId::DEFAULT, b"hello")
                .expect("call succeeds");
            assert!(out.timely, "500 ms deadline vs ≤15 ms service");
            assert_eq!(out.payload, Bytes::from_static(b"hello"), "echoed");
            redundancies.push(out.redundancy);
        }
        assert_eq!(redundancies[0], 3, "cold start selects all");
        assert_eq!(
            *redundancies.last().unwrap(),
            2,
            "warm Pc=0.9 needs only 2: {redundancies:?}"
        );
    }

    #[test]
    fn crash_is_detected_and_masked() {
        let servers = spawn_servers(&[5, 5, 5]);
        let qos = QosSpec::new(ms(500), 0.9).unwrap();
        let client = client_for(&servers, qos);
        for _ in 0..3 {
            client.call(MethodId::DEFAULT, b"x").expect("warm up");
        }
        servers[0].crash();
        // The very next calls still succeed via the other replicas.
        let mut successes = 0;
        for _ in 0..5 {
            if client.call(MethodId::DEFAULT, b"x").is_ok() {
                successes += 1;
            }
        }
        assert!(successes >= 4, "only the in-flight call may be lost");
        client.with_handler(|h| {
            assert!(
                !h.repository().contains(ReplicaId::new(0)),
                "disconnect evicted the crashed replica"
            );
        });
    }

    #[test]
    fn all_crashed_yields_no_replicas() {
        let servers = spawn_servers(&[5]);
        let qos = QosSpec::new(ms(200), 0.0).unwrap();
        let mut config = AquaClientConfig::new(qos);
        config.give_up_after = ms(400);
        let replicas: Vec<(ReplicaId, SocketAddr)> =
            servers.iter().map(|s| (s.replica(), s.addr())).collect();
        let client =
            AquaClient::connect(&replicas, config, Box::new(ModelBased::default())).unwrap();
        client.call(MethodId::DEFAULT, b"x").expect("first ok");
        servers[0].crash();
        std::thread::sleep(std::time::Duration::from_millis(100));
        let err = client.call(MethodId::DEFAULT, b"x").unwrap_err();
        assert!(
            matches!(err, CallError::NoReplicas | CallError::GaveUp { .. }),
            "{err}"
        );
        // Once the disconnect is processed, further calls fail fast.
        let err = client.call(MethodId::DEFAULT, b"x").unwrap_err();
        assert!(matches!(err, CallError::NoReplicas), "{err}");
    }

    #[test]
    fn measurements_fill_the_repository() {
        let servers = spawn_servers(&[20, 20]);
        let qos = QosSpec::new(ms(500), 0.5).unwrap();
        let client = client_for(&servers, qos);
        for _ in 0..4 {
            client.call(MethodId::DEFAULT, b"y").expect("ok");
        }
        client.with_handler(|h| {
            let repo = h.repository();
            assert!(repo.all_warm(), "both replicas have measurements");
            for (_, stats) in repo.iter() {
                let hist = stats.history(MethodId::DEFAULT).unwrap();
                let latest = *hist.service_times().latest().unwrap();
                assert!(
                    latest >= ms(20) && latest < ms(200),
                    "measured ts ≈ slept 20 ms, got {latest}"
                );
            }
        });
    }

    #[test]
    fn timing_failures_are_detected_on_the_wall_clock() {
        let servers = spawn_servers(&[80]);
        // 30 ms deadline vs 80 ms service: every reply is late.
        let qos = QosSpec::new(ms(30), 0.0).unwrap();
        let client = client_for(&servers, qos);
        let out = client.call(MethodId::DEFAULT, b"z").expect("reply arrives");
        assert!(!out.timely);
        assert!(out.response_time >= ms(80));
        client.with_handler(|h| {
            assert_eq!(h.detector().failures(), 1);
        });
    }

    #[test]
    fn observed_calls_emit_metrics_and_spans() {
        let (obs, reader) = aqua_obs::Obs::in_memory();
        let mut servers = Vec::new();
        for i in 0..2u64 {
            let mut cfg = ReplicaServerConfig::quick(ReplicaId::new(i), 5);
            cfg.obs = Some(obs.clone());
            servers.push(ReplicaServer::spawn(cfg).expect("spawn"));
        }
        let replicas: Vec<(ReplicaId, SocketAddr)> =
            servers.iter().map(|s| (s.replica(), s.addr())).collect();
        let mut config = AquaClientConfig::new(QosSpec::new(ms(500), 0.9).unwrap());
        config.id = 42;
        config.obs = Some(obs.clone());
        let client =
            AquaClient::connect(&replicas, config, Box::new(ModelBased::default())).unwrap();
        for _ in 0..4 {
            client.call(MethodId::DEFAULT, b"obs").expect("call ok");
        }
        client.finish_observability();

        let spans: Vec<String> = reader.lines_containing(r#""type":"request""#);
        assert_eq!(spans.len(), 4, "{spans:?}");
        assert!(
            spans[0].contains(r#""outcome":"delivered""#),
            "{}",
            spans[0]
        );

        let prom = obs.prometheus();
        assert!(
            prom.contains("aqua_requests_total{client=\"42\"} 4"),
            "{prom}"
        );
        assert!(prom.contains("aqua_wire_frames_sent_total{client=\"42\"}"));
        assert!(prom.contains("aqua_wire_bytes_received_total{client=\"42\"}"));
        assert!(prom.contains("aqua_server_serviced_total{replica=\"0\"}"));
        assert!(prom.contains("aqua_server_service_ns"));
        let delivered = client.with_handler(|h| h.stats().delivered);
        assert_eq!(delivered, 4);
    }

    #[test]
    fn concurrent_calls_share_the_client() {
        let servers = spawn_servers(&[10, 10, 10]);
        let qos = QosSpec::new(ms(800), 0.9).unwrap();
        let client = std::sync::Arc::new(client_for(&servers, qos));
        let mut handles = Vec::new();
        for i in 0..8 {
            let c = std::sync::Arc::clone(&client);
            handles.push(std::thread::spawn(move || {
                c.call(MethodId::DEFAULT, format!("c{i}").as_bytes())
                    .map(|o| o.timely)
            }));
        }
        for h in handles {
            assert!(h.join().unwrap().expect("call ok"), "all timely");
        }
        client.with_handler(|h| {
            assert_eq!(h.stats().delivered, 8);
            assert_eq!(h.pending_count(), 0);
        });
    }
}
