//! The socket client gateway: the same [`TimingFaultHandler`] as the
//! simulation, driven by real TCP connections and the wall clock.
//!
//! One [`AquaClient`] holds a connection to every replica of a service,
//! subscribes to their performance updates, and exposes a synchronous
//! [`AquaClient::call`] that plans the replica subset, multicasts the
//! request, and delivers the earliest reply — measuring everything exactly
//! as §5.4.1 prescribes.
//!
//! Concurrency: a dispatcher thread drains the network events (replies,
//! perf updates, disconnects) into the handler; callers only hold the
//! handler lock while planning, so multiple threads can have calls in
//! flight simultaneously and requests genuinely queue at the replicas.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Instant as StdInstant;

use aqua_core::qos::{QosSpec, ReplicaId};
use aqua_core::repository::{MethodId, PerfReport};
use aqua_core::time::{Duration, Instant};
use aqua_gateway::{ReplyOutcome, TimingFaultHandler};
use aqua_strategies::SelectionStrategy;
use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use crate::wire::Frame;

/// Configuration of a socket client.
#[derive(Debug, Clone)]
pub struct AquaClientConfig {
    /// The client's QoS specification.
    pub qos: QosSpec,
    /// Sliding-window size `l`.
    pub window: usize,
    /// Give up on a call after this long (must exceed the deadline).
    pub give_up_after: Duration,
    /// Client identifier sent in `Hello` (diagnostics only).
    pub id: u64,
    /// Optional observability sink: handler metrics/spans plus wire-level
    /// frame and byte counters.
    pub obs: Option<aqua_obs::Obs>,
}

impl AquaClientConfig {
    /// Paper defaults: window 5, give up after 5 s.
    pub fn new(qos: QosSpec) -> Self {
        AquaClientConfig {
            qos,
            window: 5,
            give_up_after: Duration::from_secs(5),
            id: 0,
            obs: None,
        }
    }
}

/// A successful call.
#[derive(Debug, Clone)]
pub struct CallOutcome {
    /// End-to-end response time `tr`.
    pub response_time: Duration,
    /// Whether the deadline was met.
    pub timely: bool,
    /// Whether the QoS-violation callback fired.
    pub callback: bool,
    /// How many replicas the request was multicast to.
    pub redundancy: usize,
    /// The replying replica.
    pub replica: ReplicaId,
    /// The reply payload.
    pub payload: Bytes,
}

/// A failed call.
#[derive(Debug)]
pub enum CallError {
    /// No replicas are connected.
    NoReplicas,
    /// No reply arrived within the give-up window (counted as a timing
    /// failure).
    GaveUp {
        /// How many replicas had been selected.
        redundancy: usize,
    },
    /// Transport-level failure.
    Io(io::Error),
}

impl std::fmt::Display for CallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CallError::NoReplicas => write!(f, "no replicas available"),
            CallError::GaveUp { redundancy } => {
                write!(f, "no reply from any of {redundancy} selected replicas")
            }
            CallError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for CallError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CallError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CallError {
    fn from(e: io::Error) -> Self {
        CallError::Io(e)
    }
}

enum NetEvent {
    Frame(ReplicaId, Frame),
    Disconnected(ReplicaId),
}

/// Cached wire-level counters (frames/bytes in each direction), so the
/// hot path never touches the registry lock.
struct WireMetrics {
    frames_sent: Arc<aqua_obs::metrics::Counter>,
    bytes_sent: Arc<aqua_obs::metrics::Counter>,
    frames_received: Arc<aqua_obs::metrics::Counter>,
    bytes_received: Arc<aqua_obs::metrics::Counter>,
}

impl WireMetrics {
    fn new(obs: &aqua_obs::Obs, client: u64) -> Self {
        let client = client.to_string();
        let labels = [("client", client.as_str())];
        let registry = obs.registry();
        WireMetrics {
            frames_sent: registry.counter("aqua_wire_frames_sent_total", &labels),
            bytes_sent: registry.counter("aqua_wire_bytes_sent_total", &labels),
            frames_received: registry.counter("aqua_wire_frames_received_total", &labels),
            bytes_received: registry.counter("aqua_wire_bytes_received_total", &labels),
        }
    }

    fn on_sent(&self, frame: &Frame) {
        self.frames_sent.inc();
        self.bytes_sent.add(frame.encoded_len() as u64);
    }

    fn on_received(&self, frame: &Frame) {
        self.frames_received.inc();
        self.bytes_received.add(frame.encoded_len() as u64);
    }
}

struct State {
    handler: TimingFaultHandler,
    writers: HashMap<ReplicaId, TcpStream>,
    /// In-flight calls awaiting their first reply: seq → (waiter,
    /// redundancy).
    waiters: HashMap<u64, (Sender<CallOutcome>, usize)>,
}

struct Inner {
    state: Mutex<State>,
    event_tx: Sender<NetEvent>,
    epoch: StdInstant,
    wire: Option<WireMetrics>,
}

impl Inner {
    fn now(&self) -> Instant {
        Instant::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }

    /// Applies one network event to the handler; completed calls are
    /// resolved through their waiter channel.
    fn apply_event(&self, event: NetEvent) {
        let mut state = self.state.lock();
        match event {
            NetEvent::Frame(id, frame) => {
                if let Some(wire) = &self.wire {
                    wire.on_received(&frame);
                }
                match frame {
                    Frame::Reply {
                        seq,
                        replica,
                        service_ns,
                        queue_ns,
                        queue_len,
                        method,
                        payload,
                    } => {
                        let perf = PerfReport {
                            service_time: Duration::from_nanos(service_ns),
                            queuing_delay: Duration::from_nanos(queue_ns),
                            queue_len,
                            method: MethodId::new(method),
                        };
                        let replica = ReplicaId::new(replica);
                        debug_assert_eq!(replica, id, "replies come from their own connection");
                        let outcome = state.handler.on_reply(self.now(), seq, replica, perf);
                        if let ReplyOutcome::Deliver {
                            response_time,
                            verdict,
                        } = outcome
                        {
                            if let Some((waiter, redundancy)) = state.waiters.remove(&seq) {
                                let _ = waiter.send(CallOutcome {
                                    response_time,
                                    timely: verdict.is_timely(),
                                    callback: verdict.should_notify(),
                                    redundancy,
                                    replica,
                                    payload,
                                });
                            }
                        }
                    }
                    Frame::PerfUpdate {
                        replica,
                        service_ns,
                        queue_ns,
                        queue_len,
                        method,
                    } => {
                        let perf = PerfReport {
                            service_time: Duration::from_nanos(service_ns),
                            queuing_delay: Duration::from_nanos(queue_ns),
                            queue_len,
                            method: MethodId::new(method),
                        };
                        state
                            .handler
                            .on_perf_update(self.now(), ReplicaId::new(replica), perf);
                    }
                    _ => {}
                }
            }
            NetEvent::Disconnected(id) => {
                // TCP teardown is our crash detector: the replica leaves
                // the "view".
                state.writers.remove(&id);
                let remaining: Vec<ReplicaId> = state.writers.keys().copied().collect();
                state.handler.on_view(remaining);
            }
        }
    }
}

/// The socket client gateway. See the module docs.
///
/// Safe to share behind an `Arc`; concurrent [`AquaClient::call`]s proceed
/// in parallel (their requests genuinely queue at the replicas).
pub struct AquaClient {
    inner: Arc<Inner>,
    give_up_after: Duration,
}

impl std::fmt::Debug for AquaClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AquaClient")
            .field("replicas", &self.inner.state.lock().writers.len())
            .finish()
    }
}

impl AquaClient {
    /// Connects to every replica, subscribes to performance updates, and
    /// initializes the handler with the given strategy.
    ///
    /// # Errors
    ///
    /// Fails if any initial connection cannot be established.
    pub fn connect(
        replicas: &[(ReplicaId, SocketAddr)],
        config: AquaClientConfig,
        strategy: Box<dyn SelectionStrategy>,
    ) -> io::Result<AquaClient> {
        let mut handler = TimingFaultHandler::new(config.qos, config.window, strategy);
        if let Some(obs) = &config.obs {
            handler.attach_obs(obs, Some(config.id));
        }
        let wire = config
            .obs
            .as_ref()
            .map(|obs| WireMetrics::new(obs, config.id));
        let (event_tx, event_rx) = unbounded();
        let mut writers = HashMap::new();
        for (id, addr) in replicas {
            let stream = TcpStream::connect(addr)?;
            stream.set_nodelay(true).ok();
            let mut writer = stream.try_clone()?;
            let hello = Frame::Hello { client: config.id };
            hello.write_to(&mut writer)?;
            if let Some(wire) = &wire {
                wire.on_sent(&hello);
            }
            handler.repository_mut().insert_replica(*id);
            writers.insert(*id, writer);
            let tx = event_tx.clone();
            let id = *id;
            std::thread::spawn(move || reader_loop(stream, id, tx));
        }
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                handler,
                writers,
                waiters: HashMap::new(),
            }),
            event_tx,
            epoch: StdInstant::now(),
            wire,
        });
        {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || dispatcher_loop(inner, event_rx));
        }
        Ok(AquaClient {
            inner,
            give_up_after: config.give_up_after,
        })
    }

    /// Runs `f` against the handler (repository inspection, stats, …).
    pub fn with_handler<R>(&self, f: impl FnOnce(&TimingFaultHandler) -> R) -> R {
        f(&self.inner.state.lock().handler)
    }

    /// Emits any request spans still buffered by the handler's observer
    /// and flushes the journal. Call once at the end of an observed run.
    pub fn finish_observability(&self) {
        self.inner.state.lock().handler.flush_observability();
    }

    /// Renegotiates the QoS specification.
    pub fn renegotiate(&self, qos: QosSpec) {
        self.inner.state.lock().handler.renegotiate(qos);
    }

    /// Connects to an additional replica at runtime (a new member joining
    /// the service group). The replica starts cold, so the next request is
    /// a full multicast that warms it up (§5.4.1's bootstrap rule).
    ///
    /// # Errors
    ///
    /// Propagates connection errors; the client is unchanged on failure.
    pub fn add_replica(&self, id: ReplicaId, addr: SocketAddr) -> io::Result<()> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut writer = stream.try_clone()?;
        let hello = Frame::Hello { client: 0 };
        hello.write_to(&mut writer)?;
        if let Some(wire) = &self.inner.wire {
            wire.on_sent(&hello);
        }
        {
            let mut state = self.inner.state.lock();
            state.handler.repository_mut().insert_replica(id);
            state.writers.insert(id, writer);
        }
        let tx = self.inner.event_tx.clone();
        std::thread::spawn(move || reader_loop(stream, id, tx));
        Ok(())
    }

    /// Invokes the replicated service: selects replicas per the QoS spec,
    /// multicasts the request, and returns the earliest reply.
    ///
    /// # Errors
    ///
    /// [`CallError::NoReplicas`] when every replica is gone,
    /// [`CallError::GaveUp`] when no selected replica answered within the
    /// give-up window, [`CallError::Io`] on transport failures during send.
    pub fn call(&self, method: MethodId, payload: &[u8]) -> Result<CallOutcome, CallError> {
        let (seq, redundancy, outcome_rx) = {
            let mut state = self.inner.state.lock();
            let plan = state
                .handler
                .plan_request_for(self.inner.now(), Some(method));
            if plan.replicas.is_empty() {
                state.handler.on_give_up(plan.seq);
                return Err(CallError::NoReplicas);
            }
            let frame = Frame::Request {
                seq: plan.seq,
                method: method.index(),
                payload: Bytes::copy_from_slice(payload),
            };
            let mut sent = 0usize;
            for id in &plan.replicas {
                if let Some(writer) = state.writers.get_mut(id) {
                    if frame.write_to(writer).is_ok() {
                        sent += 1;
                        if let Some(wire) = &self.inner.wire {
                            wire.on_sent(&frame);
                        }
                    }
                }
            }
            let redundancy = plan.replicas.len();
            if sent == 0 {
                state.handler.on_give_up(plan.seq);
                return Err(CallError::GaveUp { redundancy });
            }
            let (tx, rx) = bounded(1);
            state.waiters.insert(plan.seq, (tx, redundancy));
            (plan.seq, redundancy, rx)
        };

        match outcome_rx.recv_timeout(std::time::Duration::from(self.give_up_after)) {
            Ok(outcome) => Ok(outcome),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                // Race window: the dispatcher may have resolved the call
                // between the timeout and us taking the lock.
                let mut state = self.inner.state.lock();
                if let Ok(outcome) = outcome_rx.try_recv() {
                    return Ok(outcome);
                }
                state.waiters.remove(&seq);
                state.handler.on_give_up(seq);
                Err(CallError::GaveUp { redundancy })
            }
        }
    }
}

fn dispatcher_loop(inner: Arc<Inner>, events: Receiver<NetEvent>) {
    while let Ok(ev) = events.recv() {
        inner.apply_event(ev);
    }
}

fn reader_loop(mut stream: TcpStream, id: ReplicaId, tx: Sender<NetEvent>) {
    loop {
        match Frame::read_from(&mut stream) {
            Ok(frame) => {
                if tx.send(NetEvent::Frame(id, frame)).is_err() {
                    return;
                }
            }
            Err(_) => {
                let _ = tx.send(NetEvent::Disconnected(id));
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ReplicaServer, ReplicaServerConfig};
    use aqua_strategies::ModelBased;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn spawn_servers(service_ms: &[u64]) -> Vec<ReplicaServer> {
        service_ms
            .iter()
            .enumerate()
            .map(|(i, s)| {
                ReplicaServer::spawn(ReplicaServerConfig::quick(ReplicaId::new(i as u64), *s))
                    .expect("spawn")
            })
            .collect()
    }

    fn client_for(servers: &[ReplicaServer], qos: QosSpec) -> AquaClient {
        let replicas: Vec<(ReplicaId, SocketAddr)> =
            servers.iter().map(|s| (s.replica(), s.addr())).collect();
        AquaClient::connect(
            &replicas,
            AquaClientConfig::new(qos),
            Box::new(ModelBased::default()),
        )
        .expect("connect")
    }

    #[test]
    fn end_to_end_calls_over_sockets() {
        let servers = spawn_servers(&[5, 10, 15]);
        let qos = QosSpec::new(ms(500), 0.9).unwrap();
        let client = client_for(&servers, qos);
        let mut redundancies = Vec::new();
        for _ in 0..6 {
            let out = client
                .call(MethodId::DEFAULT, b"hello")
                .expect("call succeeds");
            assert!(out.timely, "500 ms deadline vs ≤15 ms service");
            assert_eq!(out.payload, Bytes::from_static(b"hello"), "echoed");
            redundancies.push(out.redundancy);
        }
        assert_eq!(redundancies[0], 3, "cold start selects all");
        assert_eq!(
            *redundancies.last().unwrap(),
            2,
            "warm Pc=0.9 needs only 2: {redundancies:?}"
        );
    }

    #[test]
    fn crash_is_detected_and_masked() {
        let servers = spawn_servers(&[5, 5, 5]);
        let qos = QosSpec::new(ms(500), 0.9).unwrap();
        let client = client_for(&servers, qos);
        for _ in 0..3 {
            client.call(MethodId::DEFAULT, b"x").expect("warm up");
        }
        servers[0].crash();
        // The very next calls still succeed via the other replicas.
        let mut successes = 0;
        for _ in 0..5 {
            if client.call(MethodId::DEFAULT, b"x").is_ok() {
                successes += 1;
            }
        }
        assert!(successes >= 4, "only the in-flight call may be lost");
        client.with_handler(|h| {
            assert!(
                !h.repository().contains(ReplicaId::new(0)),
                "disconnect evicted the crashed replica"
            );
        });
    }

    #[test]
    fn all_crashed_yields_no_replicas() {
        let servers = spawn_servers(&[5]);
        let qos = QosSpec::new(ms(200), 0.0).unwrap();
        let mut config = AquaClientConfig::new(qos);
        config.give_up_after = ms(400);
        let replicas: Vec<(ReplicaId, SocketAddr)> =
            servers.iter().map(|s| (s.replica(), s.addr())).collect();
        let client =
            AquaClient::connect(&replicas, config, Box::new(ModelBased::default())).unwrap();
        client.call(MethodId::DEFAULT, b"x").expect("first ok");
        servers[0].crash();
        std::thread::sleep(std::time::Duration::from_millis(100));
        let err = client.call(MethodId::DEFAULT, b"x").unwrap_err();
        assert!(
            matches!(err, CallError::NoReplicas | CallError::GaveUp { .. }),
            "{err}"
        );
        // Once the disconnect is processed, further calls fail fast.
        let err = client.call(MethodId::DEFAULT, b"x").unwrap_err();
        assert!(matches!(err, CallError::NoReplicas), "{err}");
    }

    #[test]
    fn measurements_fill_the_repository() {
        let servers = spawn_servers(&[20, 20]);
        let qos = QosSpec::new(ms(500), 0.5).unwrap();
        let client = client_for(&servers, qos);
        for _ in 0..4 {
            client.call(MethodId::DEFAULT, b"y").expect("ok");
        }
        client.with_handler(|h| {
            let repo = h.repository();
            assert!(repo.all_warm(), "both replicas have measurements");
            for (_, stats) in repo.iter() {
                let hist = stats.history(MethodId::DEFAULT).unwrap();
                let latest = *hist.service_times().latest().unwrap();
                assert!(
                    latest >= ms(20) && latest < ms(200),
                    "measured ts ≈ slept 20 ms, got {latest}"
                );
            }
        });
    }

    #[test]
    fn timing_failures_are_detected_on_the_wall_clock() {
        let servers = spawn_servers(&[80]);
        // 30 ms deadline vs 80 ms service: every reply is late.
        let qos = QosSpec::new(ms(30), 0.0).unwrap();
        let client = client_for(&servers, qos);
        let out = client.call(MethodId::DEFAULT, b"z").expect("reply arrives");
        assert!(!out.timely);
        assert!(out.response_time >= ms(80));
        client.with_handler(|h| {
            assert_eq!(h.detector().failures(), 1);
        });
    }

    #[test]
    fn observed_calls_emit_metrics_and_spans() {
        let (obs, reader) = aqua_obs::Obs::in_memory();
        let mut servers = Vec::new();
        for i in 0..2u64 {
            let mut cfg = ReplicaServerConfig::quick(ReplicaId::new(i), 5);
            cfg.obs = Some(obs.clone());
            servers.push(ReplicaServer::spawn(cfg).expect("spawn"));
        }
        let replicas: Vec<(ReplicaId, SocketAddr)> =
            servers.iter().map(|s| (s.replica(), s.addr())).collect();
        let mut config = AquaClientConfig::new(QosSpec::new(ms(500), 0.9).unwrap());
        config.id = 42;
        config.obs = Some(obs.clone());
        let client =
            AquaClient::connect(&replicas, config, Box::new(ModelBased::default())).unwrap();
        for _ in 0..4 {
            client.call(MethodId::DEFAULT, b"obs").expect("call ok");
        }
        client.finish_observability();

        let spans: Vec<String> = reader.lines_containing(r#""type":"request""#);
        assert_eq!(spans.len(), 4, "{spans:?}");
        assert!(
            spans[0].contains(r#""outcome":"delivered""#),
            "{}",
            spans[0]
        );

        let prom = obs.prometheus();
        assert!(
            prom.contains("aqua_requests_total{client=\"42\"} 4"),
            "{prom}"
        );
        assert!(prom.contains("aqua_wire_frames_sent_total{client=\"42\"}"));
        assert!(prom.contains("aqua_wire_bytes_received_total{client=\"42\"}"));
        assert!(prom.contains("aqua_server_serviced_total{replica=\"0\"}"));
        assert!(prom.contains("aqua_server_service_ns"));
        let delivered = client.with_handler(|h| h.stats().delivered);
        assert_eq!(delivered, 4);
    }

    #[test]
    fn concurrent_calls_share_the_client() {
        let servers = spawn_servers(&[10, 10, 10]);
        let qos = QosSpec::new(ms(800), 0.9).unwrap();
        let client = std::sync::Arc::new(client_for(&servers, qos));
        let mut handles = Vec::new();
        for i in 0..8 {
            let c = std::sync::Arc::clone(&client);
            handles.push(std::thread::spawn(move || {
                c.call(MethodId::DEFAULT, format!("c{i}").as_bytes())
                    .map(|o| o.timely)
            }));
        }
        for h in handles {
            assert!(h.join().unwrap().expect("call ok"), "all timely");
        }
        client.with_handler(|h| {
            assert_eq!(h.stats().delivered, 8);
            assert_eq!(h.pending_count(), 0);
        });
    }
}
