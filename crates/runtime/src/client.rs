//! The socket client gateway: the concurrent timing fault handler driven
//! by real TCP connections and the wall clock.
//!
//! One [`AquaClient`] holds a connection to every replica of a service,
//! subscribes to their performance updates, and exposes a synchronous
//! [`AquaClient::call`] that plans the replica subset, multicasts the
//! request, and delivers the earliest reply — measuring everything exactly
//! as §5.4.1 prescribes.
//!
//! Concurrency: there is **no global client lock**. Planning runs
//! lock-free on the caller's thread against the handler's published
//! snapshot ([`ConcurrentHandler`]); all sockets belong to one
//! [`Reactor`] event-loop thread that owns them in nonblocking mode —
//! a multicast encodes its request frame once, queues the shared bytes on
//! each selected replica's outbound ring, and the reactor coalesces every
//! ring into vectored writes (one syscall per connection per readiness
//! round). Inbound bytes reassemble per connection and decoded frames are
//! applied straight into the handler's sharded write path — no reader
//! threads, no dispatcher hop, no cross-request contention. In-flight
//! calls wait on a sharded waiter table keyed by sequence number. The
//! previous implementations are preserved byte-compatibly behind feature
//! flags as A/B baselines: [`crate::serialized::SerializedClient`]
//! (feature `serialized-baseline`, single global lock) and
//! [`crate::threaded::ThreadedClient`] (feature `threaded-baseline`,
//! thread-per-connection writer/reader pairs).

use std::collections::{HashMap, HashSet};
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Condvar, Mutex as StdMutex, RwLock, Weak};
use std::thread::JoinHandle;
use std::time::Instant as StdInstant;

use aqua_core::qos::{QosSpec, ReplicaId};
use aqua_core::repository::{MethodId, PerfReport};
use aqua_core::time::{Duration, Instant};
use aqua_gateway::{ConcurrentHandler, ReplyOutcome};
use aqua_strategies::SelectionStrategy;
use bytes::Bytes;
use crossbeam::channel::{bounded, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use crate::reactor::{NetMetrics, Reactor, ReactorSink};
use crate::wire::Frame;

/// Number of waiter-table shards (sequence numbers hash across them).
const WAITER_SHARDS: usize = 16;

/// Configuration of a socket client.
#[derive(Debug, Clone)]
pub struct AquaClientConfig {
    /// The client's QoS specification.
    pub qos: QosSpec,
    /// Sliding-window size `l`.
    pub window: usize,
    /// Give up on a call after this long (must exceed the deadline).
    pub give_up_after: Duration,
    /// Client identifier sent in `Hello` (diagnostics only).
    pub id: u64,
    /// Optional observability sink: handler metrics/spans plus wire-level
    /// frame and byte counters.
    pub obs: Option<aqua_obs::Obs>,
    /// Optional deadline-driven retry: when the first selection has not
    /// produced a reply after this long, Algorithm 1 re-runs over the
    /// *remaining* replicas and the request is re-multicast as a sibling
    /// attempt (the original stays live; the earliest reply of either
    /// wins). `None` disables retries.
    pub retry_after: Option<Duration>,
    /// Reconnect policy for replicas lost to TCP teardown. With the
    /// default policy a recovered replica rejoins the connection set and
    /// the repository **on probation**; `None` keeps the historical
    /// evict-forever behavior.
    pub reconnect: Option<ReconnectPolicy>,
}

impl AquaClientConfig {
    /// Paper defaults: window 5, give up after 5 s.
    pub fn new(qos: QosSpec) -> Self {
        AquaClientConfig {
            qos,
            window: 5,
            give_up_after: Duration::from_secs(5),
            id: 0,
            obs: None,
            retry_after: None,
            reconnect: Some(ReconnectPolicy::default()),
        }
    }
}

/// Exponential-backoff reconnect policy for replicas lost to TCP teardown.
///
/// Backoff state is kept per replica and only resets once a **frame**
/// arrives from the recovered replica — a refusing server that accepts and
/// immediately drops connections therefore keeps escalating the delay
/// instead of ping-ponging at the initial backoff.
#[derive(Debug, Clone)]
pub struct ReconnectPolicy {
    /// Delay before the first reconnect attempt.
    pub initial_backoff: Duration,
    /// Ceiling for the doubled backoff delay.
    pub max_backoff: Duration,
    /// Give up on the replica after this many consecutive attempts
    /// without receiving a frame from it.
    pub max_attempts: u32,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy {
            initial_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(1),
            max_attempts: 20,
        }
    }
}

/// A successful call.
#[derive(Debug, Clone)]
pub struct CallOutcome {
    /// End-to-end response time `tr`.
    pub response_time: Duration,
    /// Whether the deadline was met.
    pub timely: bool,
    /// Whether the QoS-violation callback fired.
    pub callback: bool,
    /// How many replicas the request was multicast to.
    pub redundancy: usize,
    /// The replying replica.
    pub replica: ReplicaId,
    /// The reply payload.
    pub payload: Bytes,
}

/// A failed call.
#[derive(Debug)]
pub enum CallError {
    /// No replicas are connected.
    NoReplicas,
    /// No reply arrived within the give-up window (counted as a timing
    /// failure).
    GaveUp {
        /// How many replicas had been selected.
        redundancy: usize,
    },
    /// Transport-level failure.
    Io(io::Error),
}

impl std::fmt::Display for CallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CallError::NoReplicas => write!(f, "no replicas available"),
            CallError::GaveUp { redundancy } => {
                write!(f, "no reply from any of {redundancy} selected replicas")
            }
            CallError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for CallError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CallError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CallError {
    fn from(e: io::Error) -> Self {
        CallError::Io(e)
    }
}

/// Cached wire-level counters (frames/bytes in each direction), so the
/// hot path never touches the registry lock.
#[derive(Clone)]
pub(crate) struct WireMetrics {
    pub(crate) frames_sent: Arc<aqua_obs::metrics::Counter>,
    pub(crate) bytes_sent: Arc<aqua_obs::metrics::Counter>,
    pub(crate) frames_received: Arc<aqua_obs::metrics::Counter>,
    pub(crate) bytes_received: Arc<aqua_obs::metrics::Counter>,
    pub(crate) reconnects: Arc<aqua_obs::metrics::Counter>,
}

impl WireMetrics {
    pub(crate) fn new(obs: &aqua_obs::Obs, client: u64) -> Self {
        let client = client.to_string();
        let labels = [("client", client.as_str())];
        let registry = obs.registry();
        WireMetrics {
            frames_sent: registry.counter("aqua_wire_frames_sent_total", &labels),
            bytes_sent: registry.counter("aqua_wire_bytes_sent_total", &labels),
            frames_received: registry.counter("aqua_wire_frames_received_total", &labels),
            bytes_received: registry.counter("aqua_wire_bytes_received_total", &labels),
            reconnects: registry.counter("aqua_client_reconnects_total", &labels),
        }
    }

    pub(crate) fn on_sent(&self, frame: &Frame) {
        self.frames_sent.inc();
        self.bytes_sent.add(frame.encoded_len() as u64);
    }

    pub(crate) fn on_received(&self, frame: &Frame) {
        self.frames_received.inc();
        self.bytes_received.add(frame.encoded_len() as u64);
    }
}

/// A latch that background reconnect threads wait on instead of plain
/// sleeping, so teardown can interrupt a backoff wait and join promptly.
pub(crate) struct StopSignal {
    state: StdMutex<bool>,
    cv: Condvar,
}

impl StopSignal {
    pub(crate) fn new() -> StopSignal {
        StopSignal {
            state: StdMutex::new(false),
            cv: Condvar::new(),
        }
    }

    /// Raises the signal and wakes every waiter. Idempotent.
    pub(crate) fn raise(&self) {
        {
            let mut raised = self.state.lock().unwrap_or_else(|p| p.into_inner());
            *raised = true;
        }
        self.cv.notify_all();
    }

    /// Whether the signal has been raised.
    pub(crate) fn is_raised(&self) -> bool {
        *self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Blocks up to `dur`; returns `true` if the signal was raised before
    /// the timeout elapsed.
    pub(crate) fn wait(&self, dur: std::time::Duration) -> bool {
        let deadline = StdInstant::now() + dur;
        let mut raised = self.state.lock().unwrap_or_else(|p| p.into_inner());
        while !*raised {
            let left = deadline.saturating_duration_since(StdInstant::now());
            if left.is_zero() {
                return false;
            }
            let (guard, _) = self
                .cv
                .wait_timeout(raised, left)
                .unwrap_or_else(|p| p.into_inner());
            raised = guard;
        }
        true
    }
}

/// One resolved call message on a waiter channel.
enum WaitMsg {
    Outcome(CallOutcome),
    /// Every replica disconnected while the call was in flight.
    NoReplicas,
}

/// An in-flight call attempt awaiting its first reply.
struct Waiter {
    tx: Sender<WaitMsg>,
    /// Total replicas multicast to across all sibling attempts.
    redundancy: usize,
    /// All attempt seqs of the same logical request (including this one);
    /// resolving any attempt retires the rest.
    group: Vec<u64>,
}

struct Inner {
    handler: ConcurrentHandler,
    /// Per-replica reactor connection ids; the reactor owns the sockets.
    conns: RwLock<HashMap<ReplicaId, u64>>,
    /// In-flight call attempts, sharded by seq: shard → seq → waiter.
    waiters: Vec<Mutex<HashMap<u64, Waiter>>>,
    /// Last known address of every replica, for reconnects.
    addrs: Mutex<HashMap<ReplicaId, SocketAddr>>,
    /// Consecutive reconnect attempts per replica since its last frame.
    backoff: Mutex<HashMap<ReplicaId, u32>>,
    epoch: StdInstant,
    wire: Option<WireMetrics>,
    reconnect: Option<ReconnectPolicy>,
    client_id: u64,
    /// The event-loop thread owning every socket.
    reactor: Reactor,
    /// Self-reference handed to background reconnect threads.
    weak: Weak<Inner>,
    /// Interrupts reconnect backoff waits on teardown.
    stop: Arc<StopSignal>,
    /// Live reconnect threads, joined on drop (finished handles are
    /// reaped opportunistically).
    reconnect_threads: Mutex<Vec<JoinHandle<()>>>,
}

impl ReactorSink for Inner {
    fn on_frame(&self, tag: u64, _conn: u64, frame: Frame) {
        self.handle_frame(ReplicaId::new(tag), frame);
    }

    fn on_disconnect(&self, tag: u64, conn: u64) {
        self.handle_disconnect(ReplicaId::new(tag), conn);
    }
}

impl Inner {
    fn now(&self) -> Instant {
        Instant::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }

    fn waiter_shard(&self, seq: u64) -> &Mutex<HashMap<u64, Waiter>> {
        &self.waiters[(seq as usize) % WAITER_SHARDS]
    }

    /// Opens (or re-opens) the connection to one replica: the socket is
    /// handed to the reactor, which does all I/O from then on.
    fn open_connection(&self, id: ReplicaId, addr: SocketAddr) -> io::Result<()> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let conn = self.reactor.register(stream, id.index())?;
        // The subscription handshake goes into the outbound ring before
        // the connection id is published, so it precedes any request.
        let hello = Frame::Hello {
            client: self.client_id,
        };
        if self.reactor.send(conn, &hello) {
            if let Some(wire) = &self.wire {
                wire.on_sent(&hello);
            }
        }
        {
            let mut conns = self.conns.write().unwrap_or_else(|p| p.into_inner());
            conns.insert(id, conn);
        }
        {
            let mut addrs = self.addrs.lock();
            addrs.insert(id, addr);
        }
        Ok(())
    }

    /// Multicasts one request: the frame is encoded once by the reactor
    /// and its bytes queued on every listed replica's outbound ring;
    /// returns how many connections accepted it. Wire counters account
    /// at enqueue time, per accepted connection — byte-for-byte what the
    /// per-connection flush will put on the wire.
    fn multicast(
        &self,
        seq: u64,
        method: MethodId,
        payload: &Bytes,
        replicas: &[ReplicaId],
    ) -> usize {
        let mut targets: Vec<u64> = Vec::with_capacity(replicas.len());
        {
            let conns = self.conns.read().unwrap_or_else(|p| p.into_inner());
            for id in replicas {
                if let Some(&conn) = conns.get(id) {
                    targets.push(conn);
                }
            }
        }
        if targets.is_empty() {
            return 0;
        }
        let frame = Frame::Request {
            seq,
            method: method.index(),
            payload: payload.clone(),
        };
        let sent = self.reactor.multicast(&targets, &frame);
        if let Some(wire) = &self.wire {
            for _ in 0..sent {
                wire.on_sent(&frame);
            }
        }
        sent
    }

    /// Removes any leftover waiter entries for the given attempts (the
    /// delivery path retires what it can see; the caller sweeps the rest
    /// once the call resolves).
    fn clear_waiters(&self, seqs: &[u64]) {
        for s in seqs {
            let mut shard = self.waiter_shard(*s).lock();
            shard.remove(s);
        }
    }

    /// Handles one inbound frame from `id`'s connection (called on the
    /// reactor thread), applying it straight into the handler's sharded
    /// write path.
    fn handle_frame(&self, id: ReplicaId, frame: Frame) {
        if let Some(wire) = &self.wire {
            wire.on_received(&frame);
        }
        // A frame is proof of life: the replica's reconnect backoff
        // starts over.
        {
            let mut backoff = self.backoff.lock();
            backoff.remove(&id);
        }
        match frame {
            Frame::Reply {
                seq,
                replica,
                service_ns,
                queue_ns,
                queue_len,
                method,
                payload,
            } => {
                let perf = PerfReport {
                    service_time: Duration::from_nanos(service_ns),
                    queuing_delay: Duration::from_nanos(queue_ns),
                    queue_len,
                    method: MethodId::new(method),
                };
                let replica = ReplicaId::new(replica);
                debug_assert_eq!(replica, id, "replies come from their own connection");
                let now = self.now();
                let outcome = self.handler.on_reply(now, seq, replica, perf);
                if let ReplyOutcome::Deliver {
                    response_time,
                    verdict,
                } = outcome
                {
                    self.deliver(seq, replica, response_time, verdict, payload);
                }
            }
            Frame::PerfUpdate {
                replica,
                service_ns,
                queue_ns,
                queue_len,
                method,
            } => {
                let perf = PerfReport {
                    service_time: Duration::from_nanos(service_ns),
                    queuing_delay: Duration::from_nanos(queue_ns),
                    queue_len,
                    method: MethodId::new(method),
                };
                self.handler
                    .on_perf_update(self.now(), ReplicaId::new(replica), perf);
            }
            _ => {}
        }
    }

    /// Resolves the winning attempt's waiter and retires its siblings.
    /// The handler already classified the reply as first and retired the
    /// sibling pending entries; this is only waiter-table bookkeeping.
    fn deliver(
        &self,
        seq: u64,
        replica: ReplicaId,
        response_time: Duration,
        verdict: aqua_core::failure::TimingVerdict,
        payload: Bytes,
    ) {
        let waiter = {
            let mut shard = self.waiter_shard(seq).lock();
            shard.remove(&seq)
        };
        let Some(waiter) = waiter else {
            return; // resolved concurrently (give-up or disconnect sweep)
        };
        for s in &waiter.group {
            if *s != seq {
                let mut shard = self.waiter_shard(*s).lock();
                shard.remove(s);
            }
        }
        let outcome = CallOutcome {
            response_time,
            timely: verdict.is_timely(),
            callback: verdict.should_notify(),
            redundancy: waiter.redundancy,
            replica,
            payload,
        };
        let _ = waiter.tx.send(WaitMsg::Outcome(outcome));
    }

    /// TCP teardown is our crash detector: the replica leaves the "view".
    /// `conn` guards against stale events — if a reconnect already
    /// replaced this connection, the old connection's teardown is ignored.
    fn handle_disconnect(&self, id: ReplicaId, conn: u64) {
        let remaining: Option<Vec<ReplicaId>> = {
            let mut conns = self.conns.write().unwrap_or_else(|p| p.into_inner());
            match conns.get(&id) {
                Some(&current) if current == conn => {
                    conns.remove(&id);
                    Some(conns.keys().copied().collect())
                }
                _ => None,
            }
        };
        let Some(remaining) = remaining else {
            return;
        };
        let now = self.now();
        self.handler.on_view(now, remaining.iter().copied());
        if remaining.is_empty() {
            self.fail_all_waiters(now);
        }
        self.spawn_reconnect(id);
    }

    /// Nobody left who could ever answer: fail every in-flight call
    /// immediately instead of letting each caller ride out its give-up
    /// timer.
    fn fail_all_waiters(&self, now: Instant) {
        let mut drained: Vec<(u64, Waiter)> = Vec::new();
        for shard in &self.waiters {
            let mut shard = shard.lock();
            drained.extend(shard.drain());
        }
        // One timing failure per logical request: the newest attempt
        // carries it, earlier ones retire as superseded.
        let mut handled: HashSet<u64> = HashSet::new();
        for (seq, waiter) in drained {
            if handled.contains(&seq) {
                continue; // a sibling of this group was already processed
            }
            let mut group = waiter.group.clone();
            group.sort_unstable();
            let last = *group.last().unwrap_or(&seq);
            for s in &group {
                handled.insert(*s);
                if *s != last {
                    self.handler.on_abandon(now, *s);
                }
            }
            self.handler.on_give_up(now, last);
            let _ = waiter.tx.send(WaitMsg::NoReplicas);
        }
    }

    /// Starts the background reconnect loop for a lost replica (if a
    /// policy is configured). On success the replica rejoins the
    /// connection set and the repository **on probation**. The thread's
    /// handle is tracked so teardown joins it instead of leaking it; its
    /// backoff waits ride the stop latch, so the join is prompt.
    fn spawn_reconnect(&self, id: ReplicaId) {
        let Some(policy) = self.reconnect.clone() else {
            return;
        };
        let weak = self.weak.clone();
        let stop = Arc::clone(&self.stop);
        let handle = std::thread::spawn(move || loop {
            if stop.is_raised() {
                return;
            }
            let Some(inner) = weak.upgrade() else { return };
            {
                let conns = inner.conns.read().unwrap_or_else(|p| p.into_inner());
                if conns.contains_key(&id) {
                    return; // already reconnected elsewhere
                }
            }
            let addr = {
                let addrs = inner.addrs.lock();
                addrs.get(&id).copied()
            };
            let Some(addr) = addr else { return };
            let attempt = {
                let mut backoff = inner.backoff.lock();
                let counter = backoff.entry(id).or_insert(0);
                let attempt = *counter;
                *counter += 1;
                attempt
            };
            if attempt >= policy.max_attempts {
                return;
            }
            let delay = std::time::Duration::from(policy.initial_backoff)
                .saturating_mul(1u32 << attempt.min(16))
                .min(std::time::Duration::from(policy.max_backoff));
            drop(inner); // don't pin the client alive while waiting
            if stop.wait(delay) {
                return;
            }
            let Some(inner) = weak.upgrade() else { return };
            if inner.open_connection(id, addr).is_err() {
                continue;
            }
            if let Some(wire) = &inner.wire {
                wire.reconnects.inc();
            }
            inner.handler.on_rejoin(inner.now(), id);
            return;
        });
        let mut threads = self.reconnect_threads.lock();
        threads.retain(|t| !t.is_finished());
        threads.push(handle);
    }
}

fn resolve(msg: WaitMsg) -> Result<CallOutcome, CallError> {
    match msg {
        WaitMsg::Outcome(outcome) => Ok(outcome),
        WaitMsg::NoReplicas => Err(CallError::NoReplicas),
    }
}

/// The socket client gateway. See the module docs.
///
/// Safe to share behind an `Arc`; concurrent [`AquaClient::call`]s plan,
/// send, and resolve fully in parallel — there is no global client lock.
pub struct AquaClient {
    inner: Arc<Inner>,
    give_up_after: Duration,
    retry_after: Option<Duration>,
}

impl Drop for AquaClient {
    fn drop(&mut self) {
        // Interrupt backoff waits, join every reconnect thread, then stop
        // and join the reactor — no thread outlives the client.
        self.inner.stop.raise();
        let threads: Vec<JoinHandle<()>> = {
            let mut threads = self.inner.reconnect_threads.lock();
            threads.drain(..).collect()
        };
        for t in threads {
            let _ = t.join();
        }
        self.inner.reactor.shutdown();
    }
}

impl std::fmt::Debug for AquaClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let replicas = {
            let conns = self.inner.conns.read().unwrap_or_else(|p| p.into_inner());
            conns.len()
        };
        f.debug_struct("AquaClient")
            .field("replicas", &replicas)
            .finish()
    }
}

impl AquaClient {
    /// Connects to every replica, subscribes to performance updates, and
    /// initializes the handler with the given strategy.
    ///
    /// # Errors
    ///
    /// Fails if any initial connection cannot be established.
    pub fn connect(
        replicas: &[(ReplicaId, SocketAddr)],
        config: AquaClientConfig,
        strategy: Box<dyn SelectionStrategy>,
    ) -> io::Result<AquaClient> {
        let mut handler = ConcurrentHandler::new(config.qos, config.window, strategy);
        if let Some(obs) = &config.obs {
            handler.attach_obs(obs, Some(config.id));
        }
        let wire = config
            .obs
            .as_ref()
            .map(|obs| WireMetrics::new(obs, config.id));
        let net = config.obs.as_ref().map(NetMetrics::new);
        let reactor = Reactor::spawn(net)?;
        let inner = Arc::new_cyclic(|weak| Inner {
            handler,
            conns: RwLock::new(HashMap::new()),
            waiters: (0..WAITER_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            addrs: Mutex::new(HashMap::new()),
            backoff: Mutex::new(HashMap::new()),
            epoch: StdInstant::now(),
            wire,
            reconnect: config.reconnect.clone(),
            client_id: config.id,
            reactor,
            weak: weak.clone(),
            stop: Arc::new(StopSignal::new()),
            reconnect_threads: Mutex::new(Vec::new()),
        });
        let weak = Arc::downgrade(&inner);
        let sink: Weak<dyn ReactorSink> = weak;
        inner.reactor.set_sink(sink);
        for (id, addr) in replicas {
            inner.open_connection(*id, *addr)?;
            inner.handler.insert_replica(inner.now(), *id);
        }
        Ok(AquaClient {
            inner,
            give_up_after: config.give_up_after,
            retry_after: config.retry_after,
        })
    }

    /// Runs `f` against the handler (repository inspection, stats, …).
    pub fn with_handler<R>(&self, f: impl FnOnce(&ConcurrentHandler) -> R) -> R {
        f(&self.inner.handler)
    }

    /// Emits any request spans still buffered by the handler's observer
    /// and flushes the journal. Call once at the end of an observed run.
    pub fn finish_observability(&self) {
        self.inner.handler.flush_observability();
    }

    /// Installs a fault timeline (e.g. from a chaos test's
    /// [`aqua_faults::FaultSchedule`]): every journalled span is tagged
    /// with the stable ids of overlapping fault windows so offline
    /// forensics can join misses to faults exactly. No-op without
    /// observability configured.
    pub fn set_fault_windows(&self, windows: Vec<aqua_faults::FaultWindow>) {
        self.inner.handler.set_fault_windows(windows);
    }

    /// Replaces the QoS-calibration watchdog configuration (margin,
    /// window, alert cooldown). No-op without observability configured.
    pub fn configure_watchdog(&self, config: aqua_gateway::CalibrationConfig) {
        self.inner
            .handler
            .with_observer(|observer| observer.configure_watchdog(config));
    }

    /// Registers a hook invoked on every QoS-calibration alert (the
    /// dependability-manager integration point). No-op without
    /// observability configured.
    pub fn on_calibration_alert(
        &self,
        hook: impl FnMut(&aqua_gateway::CalibrationAlert) + Send + 'static,
    ) {
        self.inner
            .handler
            .with_observer(|observer| observer.watchdog_mut().add_hook(hook));
    }

    /// Renegotiates the QoS spec at runtime (§5.4.2): the failure
    /// detector restarts under the new deadline and the planning snapshot
    /// is republished, so subsequent calls plan against the new spec.
    pub fn renegotiate(&self, qos: QosSpec) {
        self.inner.handler.renegotiate(self.inner.now(), qos);
    }

    /// Connects to an additional replica at runtime (a new member joining
    /// the service group). The replica starts cold, so the next request is
    /// a full multicast that warms it up (§5.4.1's bootstrap rule).
    ///
    /// # Errors
    ///
    /// Propagates connection errors; the client is unchanged on failure.
    pub fn add_replica(&self, id: ReplicaId, addr: SocketAddr) -> io::Result<()> {
        self.inner.open_connection(id, addr)?;
        self.inner.handler.insert_replica(self.inner.now(), id);
        Ok(())
    }

    /// Invokes the replicated service: selects replicas per the QoS spec,
    /// multicasts the request, and returns the earliest reply.
    ///
    /// # Errors
    ///
    /// [`CallError::NoReplicas`] when every replica is gone,
    /// [`CallError::GaveUp`] when no selected replica answered within the
    /// give-up window, [`CallError::Io`] on transport failures during send.
    pub fn call(&self, method: MethodId, payload: &[u8]) -> Result<CallOutcome, CallError> {
        let inner = &self.inner;
        let t0 = inner.now();
        let started = StdInstant::now();
        let give_up = std::time::Duration::from(self.give_up_after);
        let payload = Bytes::copy_from_slice(payload);

        // Plan lock-free against the published snapshot, then register
        // the waiter *before* multicasting so even a lightning-fast reply
        // finds it.
        let plan = inner.handler.plan_request_for(t0, Some(method));
        if plan.replicas.is_empty() {
            inner.handler.on_give_up(inner.now(), plan.seq);
            return Err(CallError::NoReplicas);
        }
        let first_seq = plan.seq;
        let first_selection = plan.replicas;
        let mut redundancy = first_selection.len();
        let (tx, rx) = bounded(2);
        {
            let mut shard = inner.waiter_shard(first_seq).lock();
            shard.insert(
                first_seq,
                Waiter {
                    tx: tx.clone(),
                    redundancy,
                    group: vec![first_seq],
                },
            );
        }
        let sent = inner.multicast(first_seq, method, &payload, &first_selection);
        if sent == 0 {
            inner.clear_waiters(&[first_seq]);
            inner.handler.on_give_up(inner.now(), first_seq);
            return Err(CallError::GaveUp { redundancy });
        }
        let mut seqs = vec![first_seq];

        // Stage 1 (optional): wait until the intermediate retry deadline,
        // then re-run Algorithm 1 over the remaining replicas and multicast
        // a sibling attempt. The original stays live; earliest reply wins.
        if let Some(retry_after) = self.retry_after {
            let wait = std::time::Duration::from(retry_after).min(give_up);
            match rx.recv_timeout(wait) {
                Ok(msg) => {
                    inner.clear_waiters(&seqs);
                    return resolve(msg);
                }
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                    let now = inner.now();
                    // plan_retry handles the sibling-group protocol and
                    // returns None if the request resolved meanwhile.
                    let retry = inner.handler.plan_retry(
                        now,
                        Some(method),
                        t0,
                        first_seq,
                        &first_selection,
                    );
                    if let Some(plan) = retry {
                        let added = plan.replicas.len();
                        let group = vec![first_seq, plan.seq];
                        {
                            let mut shard = inner.waiter_shard(first_seq).lock();
                            if let Some(w) = shard.get_mut(&first_seq) {
                                w.group.clone_from(&group);
                                w.redundancy = redundancy + added;
                            }
                        }
                        {
                            let mut shard = inner.waiter_shard(plan.seq).lock();
                            shard.insert(
                                plan.seq,
                                Waiter {
                                    tx: tx.clone(),
                                    redundancy: redundancy + added,
                                    group,
                                },
                            );
                        }
                        let sent = inner.multicast(plan.seq, method, &payload, &plan.replicas);
                        if sent > 0 {
                            redundancy += added;
                            seqs.push(plan.seq);
                        } else {
                            // Nobody reachable for the retry: retire the
                            // attempt quietly.
                            inner.clear_waiters(&[plan.seq]);
                            {
                                let mut shard = inner.waiter_shard(first_seq).lock();
                                if let Some(w) = shard.get_mut(&first_seq) {
                                    w.group = vec![first_seq];
                                    w.redundancy = redundancy;
                                }
                            }
                            inner.handler.on_abandon(now, plan.seq);
                        }
                    }
                }
            }
        }

        // Stage 2: wait out the rest of the give-up window.
        let remaining = give_up.saturating_sub(started.elapsed());
        match rx.recv_timeout(remaining) {
            Ok(msg) => {
                inner.clear_waiters(&seqs);
                resolve(msg)
            }
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                let now = inner.now();
                // One timing failure per logical request: the newest
                // attempt carries the give-up, earlier ones retire.
                if let Some((last, earlier)) = seqs.split_last() {
                    for s in earlier {
                        inner.handler.on_abandon(now, *s);
                    }
                    if !inner.handler.on_give_up(now, *last) {
                        // A first reply (or the disconnect sweep) won the
                        // race against our timer: the resolution is on the
                        // channel, or arrives momentarily.
                        let msg = rx.recv_timeout(std::time::Duration::from_secs(1)).ok();
                        inner.clear_waiters(&seqs);
                        if let Some(msg) = msg {
                            return resolve(msg);
                        }
                        return Err(CallError::GaveUp { redundancy });
                    }
                }
                inner.clear_waiters(&seqs);
                drop(tx);
                Err(CallError::GaveUp { redundancy })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ReplicaServer, ReplicaServerConfig};
    use aqua_strategies::ModelBased;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn spawn_servers(service_ms: &[u64]) -> Vec<ReplicaServer> {
        service_ms
            .iter()
            .enumerate()
            .map(|(i, s)| {
                ReplicaServer::spawn(ReplicaServerConfig::quick(ReplicaId::new(i as u64), *s))
                    .expect("spawn")
            })
            .collect()
    }

    fn client_for(servers: &[ReplicaServer], qos: QosSpec) -> AquaClient {
        let replicas: Vec<(ReplicaId, SocketAddr)> =
            servers.iter().map(|s| (s.replica(), s.addr())).collect();
        AquaClient::connect(
            &replicas,
            AquaClientConfig::new(qos),
            Box::new(ModelBased::default()),
        )
        .expect("connect")
    }

    #[test]
    fn end_to_end_calls_over_sockets() {
        let servers = spawn_servers(&[5, 10, 15]);
        let qos = QosSpec::new(ms(500), 0.9).unwrap();
        let client = client_for(&servers, qos);
        let mut redundancies = Vec::new();
        for _ in 0..6 {
            let out = client
                .call(MethodId::DEFAULT, b"hello")
                .expect("call succeeds");
            assert!(out.timely, "500 ms deadline vs ≤15 ms service");
            assert_eq!(out.payload, Bytes::from_static(b"hello"), "echoed");
            redundancies.push(out.redundancy);
        }
        assert_eq!(redundancies[0], 3, "cold start selects all");
        assert_eq!(
            *redundancies.last().unwrap(),
            2,
            "warm Pc=0.9 needs only 2: {redundancies:?}"
        );
    }

    #[test]
    fn crash_is_detected_and_masked() {
        let servers = spawn_servers(&[5, 5, 5]);
        let qos = QosSpec::new(ms(500), 0.9).unwrap();
        let client = client_for(&servers, qos);
        for _ in 0..3 {
            client.call(MethodId::DEFAULT, b"x").expect("warm up");
        }
        servers[0].crash();
        // The very next calls still succeed via the other replicas.
        let mut successes = 0;
        for _ in 0..5 {
            if client.call(MethodId::DEFAULT, b"x").is_ok() {
                successes += 1;
            }
        }
        assert!(successes >= 4, "only the in-flight call may be lost");
        client.with_handler(|h| {
            assert!(
                !h.repository().contains(ReplicaId::new(0)),
                "disconnect evicted the crashed replica"
            );
        });
    }

    #[test]
    fn all_crashed_yields_no_replicas() {
        let servers = spawn_servers(&[5]);
        let qos = QosSpec::new(ms(200), 0.0).unwrap();
        let mut config = AquaClientConfig::new(qos);
        config.give_up_after = ms(400);
        let replicas: Vec<(ReplicaId, SocketAddr)> =
            servers.iter().map(|s| (s.replica(), s.addr())).collect();
        let client =
            AquaClient::connect(&replicas, config, Box::new(ModelBased::default())).unwrap();
        client.call(MethodId::DEFAULT, b"x").expect("first ok");
        servers[0].crash();
        std::thread::sleep(std::time::Duration::from_millis(100));
        let err = client.call(MethodId::DEFAULT, b"x").unwrap_err();
        assert!(
            matches!(err, CallError::NoReplicas | CallError::GaveUp { .. }),
            "{err}"
        );
        // Once the disconnect is processed, further calls fail fast.
        let err = client.call(MethodId::DEFAULT, b"x").unwrap_err();
        assert!(matches!(err, CallError::NoReplicas), "{err}");
    }

    #[test]
    fn measurements_fill_the_repository() {
        let servers = spawn_servers(&[20, 20]);
        let qos = QosSpec::new(ms(500), 0.5).unwrap();
        let client = client_for(&servers, qos);
        for _ in 0..4 {
            client.call(MethodId::DEFAULT, b"y").expect("ok");
        }
        client.with_handler(|h| {
            let repo = h.repository();
            assert!(repo.all_warm(), "both replicas have measurements");
            for (_, stats) in repo.iter() {
                let hist = stats.history(MethodId::DEFAULT).unwrap();
                let latest = *hist.service_times().latest().unwrap();
                assert!(
                    latest >= ms(20) && latest < ms(200),
                    "measured ts ≈ slept 20 ms, got {latest}"
                );
            }
        });
    }

    #[test]
    fn timing_failures_are_detected_on_the_wall_clock() {
        let servers = spawn_servers(&[80]);
        // 30 ms deadline vs 80 ms service: every reply is late.
        let qos = QosSpec::new(ms(30), 0.0).unwrap();
        let client = client_for(&servers, qos);
        let out = client.call(MethodId::DEFAULT, b"z").expect("reply arrives");
        assert!(!out.timely);
        assert!(out.response_time >= ms(80));
        client.with_handler(|h| {
            assert_eq!(h.detector().failures(), 1);
        });
    }

    #[test]
    fn observed_calls_emit_metrics_and_spans() {
        let (obs, reader) = aqua_obs::Obs::in_memory();
        let mut servers = Vec::new();
        for i in 0..2u64 {
            let mut cfg = ReplicaServerConfig::quick(ReplicaId::new(i), 5);
            cfg.obs = Some(obs.clone());
            servers.push(ReplicaServer::spawn(cfg).expect("spawn"));
        }
        let replicas: Vec<(ReplicaId, SocketAddr)> =
            servers.iter().map(|s| (s.replica(), s.addr())).collect();
        let mut config = AquaClientConfig::new(QosSpec::new(ms(500), 0.9).unwrap());
        config.id = 42;
        config.obs = Some(obs.clone());
        let client =
            AquaClient::connect(&replicas, config, Box::new(ModelBased::default())).unwrap();
        for _ in 0..4 {
            client.call(MethodId::DEFAULT, b"obs").expect("call ok");
        }
        client.finish_observability();

        let spans: Vec<String> = reader.lines_containing(r#""type":"request""#);
        assert_eq!(spans.len(), 4, "{spans:?}");
        assert!(
            spans[0].contains(r#""outcome":"delivered""#),
            "{}",
            spans[0]
        );

        let prom = obs.prometheus();
        assert!(
            prom.contains("aqua_requests_total{client=\"42\"} 4"),
            "{prom}"
        );
        assert!(prom.contains("aqua_wire_frames_sent_total{client=\"42\"}"));
        assert!(prom.contains("aqua_wire_bytes_received_total{client=\"42\"}"));
        assert!(prom.contains("aqua_server_serviced_total{replica=\"0\"}"));
        assert!(prom.contains("aqua_server_service_ns"));
        let delivered = client.with_handler(|h| h.stats().delivered);
        assert_eq!(delivered, 4);
    }

    #[test]
    fn wire_byte_counters_match_framing() {
        // The batching writer must account exactly the framing bytes the
        // old per-frame path would have: counters equal the sum of
        // `encoded_len` over everything sent.
        let (obs, _reader) = aqua_obs::Obs::in_memory();
        let servers = spawn_servers(&[5]);
        let replicas: Vec<(ReplicaId, SocketAddr)> =
            servers.iter().map(|s| (s.replica(), s.addr())).collect();
        let mut config = AquaClientConfig::new(QosSpec::new(ms(500), 0.9).unwrap());
        config.obs = Some(obs.clone());
        let client =
            AquaClient::connect(&replicas, config, Box::new(ModelBased::default())).unwrap();
        for _ in 0..3 {
            client.call(MethodId::DEFAULT, b"frame-check").expect("ok");
        }
        // Everything this client sends has a fixed shape: one Hello plus
        // one Request per call (single replica, no retries).
        let hello = Frame::Hello { client: 0 }.encoded_len() as u64;
        let request = Frame::Request {
            seq: 0,
            method: 0,
            payload: Bytes::from_static(b"frame-check"),
        }
        .encoded_len() as u64;
        let frames = obs
            .registry()
            .counter("aqua_wire_frames_sent_total", &[("client", "0")])
            .get();
        let bytes = obs
            .registry()
            .counter("aqua_wire_bytes_sent_total", &[("client", "0")])
            .get();
        assert_eq!(frames, 4, "one hello + three requests");
        assert_eq!(bytes, hello + 3 * request, "framing unchanged");
    }

    #[test]
    fn concurrent_calls_share_the_client() {
        let servers = spawn_servers(&[10, 10, 10]);
        let qos = QosSpec::new(ms(800), 0.9).unwrap();
        let client = std::sync::Arc::new(client_for(&servers, qos));
        let mut handles = Vec::new();
        for i in 0..8 {
            let c = std::sync::Arc::clone(&client);
            handles.push(std::thread::spawn(move || {
                c.call(MethodId::DEFAULT, format!("c{i}").as_bytes())
                    .map(|o| o.timely)
            }));
        }
        for h in handles {
            assert!(h.join().unwrap().expect("call ok"), "all timely");
        }
        client.with_handler(|h| {
            assert_eq!(h.stats().delivered, 8);
            assert_eq!(h.pending_count(), 0);
        });
    }
}
