//! Raw `epoll` syscalls for the reactor.
//!
//! The workspace's vendor-only dependency policy rules out `libc`, `mio`,
//! and `tokio`; the four symbols the reactor needs are declared here
//! directly against the C library that `std` already links. This is the
//! single module in the crate allowed to contain `unsafe` — everything
//! above it works with safe wrappers returning `io::Result`.

#![allow(unsafe_code)]

use std::io;
use std::os::unix::io::RawFd;

/// Interest/readiness: the fd is readable (or the peer closed).
pub const EPOLLIN: u32 = 0x1;
/// Interest/readiness: the fd accepts writes without blocking.
pub const EPOLLOUT: u32 = 0x4;
/// Readiness only: error condition on the fd.
pub const EPOLLERR: u32 = 0x8;
/// Readiness only: hang-up (peer closed both directions).
pub const EPOLLHUP: u32 = 0x10;
/// Interest/readiness: peer shut down its write half.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

/// Mirror of the kernel's `struct epoll_event`.
///
/// Packed to match the x86-64 syscall ABI, where the kernel declares the
/// struct `__attribute__((packed))` (12 bytes, not 16).
#[repr(C, packed)]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Readiness bit set (`EPOLLIN` | …).
    pub events: u32,
    /// Caller-chosen cookie, echoed back verbatim — the reactor stores
    /// the connection token here.
    pub data: u64,
}

impl EpollEvent {
    /// The all-zero event used to size `epoll_wait` buffers.
    pub const EMPTY: EpollEvent = EpollEvent { events: 0, data: 0 };
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn close(fd: i32) -> i32;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An owned epoll instance; the fd is closed on drop.
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_create1` failures.
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: epoll_create1 has no memory preconditions; the flag is a
        // valid constant and the returned fd is error-checked by `cvt`.
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, data };
        // SAFETY: `ev` is a live, properly initialized `#[repr(C, packed)]`
        // event for the duration of the call; `self.fd` is the owned epoll
        // fd, open until drop.
        cvt(unsafe { epoll_ctl(self.fd, op, fd, &mut ev) })?;
        Ok(())
    }

    /// Registers `fd` with the given interest set and cookie.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failures.
    pub fn add(&self, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, data)
    }

    /// Replaces `fd`'s interest set (used to arm/disarm `EPOLLOUT`).
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failures.
    pub fn modify(&self, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, data)
    }

    /// Deregisters `fd`. Failure is ignored by design: the fd may already
    /// be closed, which deregisters implicitly.
    pub fn delete(&self, fd: RawFd) {
        let _ = self.ctl(EPOLL_CTL_DEL, fd, 0, 0);
    }

    /// Blocks until at least one registered fd is ready (or `timeout_ms`
    /// elapses; `-1` waits forever) and fills `events`. Returns how many
    /// entries were written. `EINTR` surfaces as `Ok(0)` so callers just
    /// loop.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_wait` failures other than `EINTR`.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        let max = events.len().min(i32::MAX as usize) as i32;
        // SAFETY: the out-pointer and `max` come from the same live slice,
        // so the kernel writes at most `events.len()` entries; `self.fd`
        // is the owned epoll fd, open until drop.
        match cvt(unsafe { epoll_wait(self.fd, events.as_mut_ptr(), max, timeout_ms) }) {
            Ok(n) => Ok(n as usize),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(0),
            Err(e) => Err(e),
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: `self.fd` is owned exclusively by this Epoll and never
        // exposed, so this is the single close of a valid descriptor.
        let _ = unsafe { close(self.fd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn epoll_reports_readability() {
        let epoll = Epoll::new().expect("epoll_create1");
        let (mut a, b) = UnixStream::pair().expect("socketpair");
        epoll.add(b.as_raw_fd(), EPOLLIN, 42).expect("add");

        let mut events = [EpollEvent::EMPTY; 4];
        let n = epoll.wait(&mut events, 0).expect("wait");
        assert_eq!(n, 0, "nothing written yet");

        a.write_all(b"x").expect("write");
        let n = epoll.wait(&mut events, 1000).expect("wait");
        assert_eq!(n, 1);
        let data = events[0].data;
        assert_eq!(data, 42, "cookie echoed back");
        let bits = events[0].events;
        assert_ne!(bits & EPOLLIN, 0, "readable");
    }

    #[test]
    fn interest_can_be_modified_and_deleted() {
        let epoll = Epoll::new().expect("epoll_create1");
        let (_a, b) = UnixStream::pair().expect("socketpair");
        epoll.add(b.as_raw_fd(), EPOLLIN, 1).expect("add");
        epoll
            .modify(b.as_raw_fd(), EPOLLIN | EPOLLOUT, 1)
            .expect("mod");
        let mut events = [EpollEvent::EMPTY; 4];
        let n = epoll.wait(&mut events, 100).expect("wait");
        assert_eq!(n, 1, "stream sockets are writable at rest");
        epoll.delete(b.as_raw_fd());
        let n = epoll.wait(&mut events, 0).expect("wait");
        assert_eq!(n, 0, "deregistered fd no longer reports");
    }
}
