//! The retained single-lock baseline: the serialized socket client that
//! [`crate::AquaClient`] replaced.
//!
//! Every state transition — planning, sending, reply ingestion, reconnect
//! bookkeeping — funnels through one `Mutex<State>`, and all network
//! events hop through a dispatcher thread before touching the handler.
//! [`SerializedClient`] is kept (behind the `serialized-baseline` feature)
//! purely so `throughput_bench` can A/B the old path against the
//! lock-free snapshot/shard path on identical workloads. Don't use it for
//! anything else; it is the slow path by construction.
//!
//! The state mutex is instrumented with [`aqua_obs::contention::LockContention`]
//! (`lock="client-state"`) so the benchmark can report lock-wait time.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Instant as StdInstant;

use aqua_core::qos::{QosSpec, ReplicaId};
use aqua_core::repository::{MethodId, PerfReport};
use aqua_core::time::{Duration, Instant};
use aqua_gateway::{ReplyOutcome, TimingFaultHandler};
use aqua_obs::contention::LockContention;
use aqua_strategies::SelectionStrategy;
use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use crate::client::{AquaClientConfig, CallError, CallOutcome, ReconnectPolicy, WireMetrics};
use crate::wire::Frame;

enum NetEvent {
    Frame(ReplicaId, Frame),
    Disconnected(ReplicaId),
}

/// One resolved call message on a waiter channel.
enum WaitMsg {
    Outcome(CallOutcome),
    /// Every replica disconnected while the call was in flight.
    NoReplicas,
}

/// An in-flight call attempt awaiting its first reply.
struct Waiter {
    tx: Sender<WaitMsg>,
    /// Total replicas multicast to across all sibling attempts.
    redundancy: usize,
    /// All attempt seqs of the same logical request (including this one);
    /// resolving any attempt retires the rest.
    group: Vec<u64>,
}

struct State {
    handler: TimingFaultHandler,
    writers: HashMap<ReplicaId, TcpStream>,
    /// In-flight call attempts: seq → waiter.
    waiters: HashMap<u64, Waiter>,
    /// Last known address of every replica, for reconnects.
    addrs: HashMap<ReplicaId, SocketAddr>,
    /// Consecutive reconnect attempts per replica since its last frame.
    backoff: HashMap<ReplicaId, u32>,
}

struct Inner {
    state: Mutex<State>,
    /// Wait-time/acquisition counters on the global state mutex
    /// (`lock="client-state"`), the contention the concurrent client
    /// exists to eliminate.
    contention: LockContention,
    event_tx: Sender<NetEvent>,
    epoch: StdInstant,
    wire: Option<WireMetrics>,
    reconnect: Option<ReconnectPolicy>,
    client_id: u64,
}

impl Inner {
    fn now(&self) -> Instant {
        Instant::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }

    fn lock_state(&self) -> parking_lot::MutexGuard<'_, State> {
        self.contention.acquire(|| self.state.lock())
    }

    /// Applies one network event to the handler; completed calls are
    /// resolved through their waiter channel.
    fn apply_event(self: &Arc<Self>, event: NetEvent) {
        let mut state = self.lock_state();
        // Waiter notifications go out after the guard is released: a
        // channel send under the state lock would stall every other
        // connection thread behind a slow waiter (lock-order rule).
        let mut deferred: Vec<(Sender<WaitMsg>, WaitMsg)> = Vec::new();
        let mut lost: Option<ReplicaId> = None;
        match event {
            NetEvent::Frame(id, frame) => {
                if let Some(wire) = &self.wire {
                    wire.on_received(&frame);
                }
                // A frame is proof of life: the replica's reconnect
                // backoff starts over.
                state.backoff.remove(&id);
                match frame {
                    Frame::Reply {
                        seq,
                        replica,
                        service_ns,
                        queue_ns,
                        queue_len,
                        method,
                        payload,
                    } => {
                        let perf = PerfReport {
                            service_time: Duration::from_nanos(service_ns),
                            queuing_delay: Duration::from_nanos(queue_ns),
                            queue_len,
                            method: MethodId::new(method),
                        };
                        let replica = ReplicaId::new(replica);
                        debug_assert_eq!(replica, id, "replies come from their own connection");
                        let now = self.now();
                        let outcome = state.handler.on_reply(now, seq, replica, perf);
                        if let ReplyOutcome::Deliver {
                            response_time,
                            verdict,
                        } = outcome
                        {
                            if let Some(waiter) = state.waiters.remove(&seq) {
                                // The winning attempt retires its siblings:
                                // they are neither failures nor deliveries.
                                for sibling in &waiter.group {
                                    if *sibling != seq {
                                        state.waiters.remove(sibling);
                                        state.handler.on_abandon(now, *sibling);
                                    }
                                }
                                let outcome = CallOutcome {
                                    response_time,
                                    timely: verdict.is_timely(),
                                    callback: verdict.should_notify(),
                                    redundancy: waiter.redundancy,
                                    replica,
                                    payload,
                                };
                                deferred.push((waiter.tx, WaitMsg::Outcome(outcome)));
                            }
                        }
                    }
                    Frame::PerfUpdate {
                        replica,
                        service_ns,
                        queue_ns,
                        queue_len,
                        method,
                    } => {
                        let perf = PerfReport {
                            service_time: Duration::from_nanos(service_ns),
                            queuing_delay: Duration::from_nanos(queue_ns),
                            queue_len,
                            method: MethodId::new(method),
                        };
                        state
                            .handler
                            .on_perf_update(self.now(), ReplicaId::new(replica), perf);
                    }
                    _ => {}
                }
            }
            NetEvent::Disconnected(id) => {
                // TCP teardown is our crash detector: the replica leaves
                // the "view".
                state.writers.remove(&id);
                let now = self.now();
                let remaining: Vec<ReplicaId> = state.writers.keys().copied().collect();
                state.handler.on_view(now, remaining);
                if state.writers.is_empty() {
                    // Nobody left who could ever answer: fail every
                    // in-flight call immediately instead of letting each
                    // caller ride out its give-up timer.
                    let seqs: Vec<u64> = state.waiters.keys().copied().collect();
                    for seq in seqs {
                        let Some(waiter) = state.waiters.remove(&seq) else {
                            continue; // retired as a sibling already
                        };
                        let mut group = waiter.group.clone();
                        group.sort_unstable();
                        let last = *group.last().unwrap_or(&seq);
                        for s in &group {
                            if *s != seq {
                                state.waiters.remove(s);
                            }
                        }
                        // One timing failure per logical request: the
                        // newest attempt carries it, earlier ones retire.
                        for s in &group {
                            if *s != last {
                                state.handler.on_abandon(now, *s);
                            }
                        }
                        state.handler.on_give_up(now, last);
                        deferred.push((waiter.tx, WaitMsg::NoReplicas));
                    }
                }
                lost = Some(id);
            }
        }
        drop(state);
        for (tx, msg) in deferred {
            let _ = tx.send(msg);
        }
        if let Some(id) = lost {
            self.spawn_reconnect(id);
        }
    }

    /// Starts the background reconnect loop for a lost replica (if a
    /// policy is configured). On success the replica rejoins the
    /// connection set and the repository **on probation**.
    fn spawn_reconnect(self: &Arc<Self>, id: ReplicaId) {
        let Some(policy) = self.reconnect.clone() else {
            return;
        };
        let weak = Arc::downgrade(self);
        // aqua-lint: allow(spawn-join) A/B baseline; holds only a Weak and exits once the client drops or the replica rejoins
        std::thread::spawn(move || loop {
            let Some(inner) = weak.upgrade() else { return };
            let (addr, attempt) = {
                let mut state = inner.lock_state();
                if state.writers.contains_key(&id) {
                    return; // already reconnected elsewhere
                }
                let Some(addr) = state.addrs.get(&id).copied() else {
                    return;
                };
                let counter = state.backoff.entry(id).or_insert(0);
                let attempt = *counter;
                *counter += 1;
                (addr, attempt)
            };
            if attempt >= policy.max_attempts {
                return;
            }
            let delay = std::time::Duration::from(policy.initial_backoff)
                .saturating_mul(1u32 << attempt.min(16))
                .min(std::time::Duration::from(policy.max_backoff));
            drop(inner); // don't pin the client alive while sleeping
            std::thread::sleep(delay);
            let Some(inner) = weak.upgrade() else { return };
            let Ok(stream) = TcpStream::connect(addr) else {
                continue;
            };
            stream.set_nodelay(true).ok();
            let Ok(mut writer) = stream.try_clone() else {
                continue;
            };
            let hello = Frame::Hello {
                client: inner.client_id,
            };
            if hello.write_to(&mut writer).is_err() {
                continue;
            }
            if let Some(wire) = &inner.wire {
                wire.on_sent(&hello);
                wire.reconnects.inc();
            }
            let now = inner.now();
            {
                let mut state = inner.lock_state();
                state.writers.insert(id, writer);
                state.handler.on_rejoin(now, id);
            }
            let tx = inner.event_tx.clone();
            // aqua-lint: allow(spawn-join) serialized-baseline reader; exits when the replica closes the stream
            std::thread::spawn(move || reader_loop(stream, id, tx));
            return;
        });
    }
}

/// The socket client gateway. See the module docs.
///
/// Safe to share behind an `Arc`; concurrent [`SerializedClient::call`]s proceed
/// in parallel (their requests genuinely queue at the replicas).
pub struct SerializedClient {
    inner: Arc<Inner>,
    give_up_after: Duration,
    retry_after: Option<Duration>,
}

impl std::fmt::Debug for SerializedClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SerializedClient")
            .field("replicas", &self.inner.lock_state().writers.len())
            .finish()
    }
}

impl SerializedClient {
    /// Connects to every replica, subscribes to performance updates, and
    /// initializes the handler with the given strategy.
    ///
    /// # Errors
    ///
    /// Fails if any initial connection cannot be established.
    pub fn connect(
        replicas: &[(ReplicaId, SocketAddr)],
        config: AquaClientConfig,
        strategy: Box<dyn SelectionStrategy>,
    ) -> io::Result<SerializedClient> {
        let mut handler = TimingFaultHandler::new(config.qos, config.window, strategy);
        if let Some(obs) = &config.obs {
            handler.attach_obs(obs, Some(config.id));
        }
        let wire = config
            .obs
            .as_ref()
            .map(|obs| WireMetrics::new(obs, config.id));
        let (event_tx, event_rx) = unbounded();
        let mut writers = HashMap::new();
        let mut addrs = HashMap::new();
        for (id, addr) in replicas {
            let stream = TcpStream::connect(addr)?;
            stream.set_nodelay(true).ok();
            let mut writer = stream.try_clone()?;
            let hello = Frame::Hello { client: config.id };
            hello.write_to(&mut writer)?;
            if let Some(wire) = &wire {
                wire.on_sent(&hello);
            }
            handler.repository_mut().insert_replica(*id);
            writers.insert(*id, writer);
            addrs.insert(*id, *addr);
            let tx = event_tx.clone();
            let id = *id;
            // aqua-lint: allow(spawn-join) serialized-baseline reader; exits when the replica closes the stream
            std::thread::spawn(move || reader_loop(stream, id, tx));
        }
        let contention = match &config.obs {
            Some(obs) => LockContention::new(obs.registry(), "client-state"),
            None => LockContention::detached(),
        };
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                handler,
                writers,
                waiters: HashMap::new(),
                addrs,
                backoff: HashMap::new(),
            }),
            contention,
            event_tx,
            epoch: StdInstant::now(),
            wire,
            reconnect: config.reconnect.clone(),
            client_id: config.id,
        });
        {
            let inner = Arc::clone(&inner);
            // aqua-lint: allow(spawn-join) serialized-baseline dispatcher; exits when every reader drops its event_tx clone
            std::thread::spawn(move || dispatcher_loop(inner, event_rx));
        }
        Ok(SerializedClient {
            inner,
            give_up_after: config.give_up_after,
            retry_after: config.retry_after,
        })
    }

    /// Runs `f` against the handler (repository inspection, stats, …).
    pub fn with_handler<R>(&self, f: impl FnOnce(&TimingFaultHandler) -> R) -> R {
        f(&self.inner.lock_state().handler)
    }

    /// Emits any request spans still buffered by the handler's observer
    /// and flushes the journal. Call once at the end of an observed run.
    pub fn finish_observability(&self) {
        self.inner.lock_state().handler.flush_observability();
    }

    /// Renegotiates the QoS specification.
    pub fn renegotiate(&self, qos: QosSpec) {
        self.inner.lock_state().handler.renegotiate(qos);
    }

    /// Connects to an additional replica at runtime (a new member joining
    /// the service group). The replica starts cold, so the next request is
    /// a full multicast that warms it up (§5.4.1's bootstrap rule).
    ///
    /// # Errors
    ///
    /// Propagates connection errors; the client is unchanged on failure.
    pub fn add_replica(&self, id: ReplicaId, addr: SocketAddr) -> io::Result<()> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut writer = stream.try_clone()?;
        let hello = Frame::Hello { client: 0 };
        hello.write_to(&mut writer)?;
        if let Some(wire) = &self.inner.wire {
            wire.on_sent(&hello);
        }
        {
            let mut state = self.inner.lock_state();
            state.handler.repository_mut().insert_replica(id);
            state.writers.insert(id, writer);
            state.addrs.insert(id, addr);
        }
        let tx = self.inner.event_tx.clone();
        // aqua-lint: allow(spawn-join) serialized-baseline reader; exits when the replica closes the stream
        std::thread::spawn(move || reader_loop(stream, id, tx));
        Ok(())
    }

    /// Invokes the replicated service: selects replicas per the QoS spec,
    /// multicasts the request, and returns the earliest reply.
    ///
    /// # Errors
    ///
    /// [`CallError::NoReplicas`] when every replica is gone,
    /// [`CallError::GaveUp`] when no selected replica answered within the
    /// give-up window, [`CallError::Io`] on transport failures during send.
    pub fn call(&self, method: MethodId, payload: &[u8]) -> Result<CallOutcome, CallError> {
        let t0 = self.inner.now();
        let started = StdInstant::now();
        let give_up = std::time::Duration::from(self.give_up_after);
        let frame_for = |seq: u64| Frame::Request {
            seq,
            method: method.index(),
            payload: Bytes::copy_from_slice(payload),
        };

        let (first_seq, first_selection, mut redundancy, tx, rx) = {
            let mut state = self.inner.lock_state();
            let plan = state.handler.plan_request_for(t0, Some(method));
            if plan.replicas.is_empty() {
                state.handler.on_give_up(t0, plan.seq);
                return Err(CallError::NoReplicas);
            }
            let sent = self.multicast(&mut state, &frame_for(plan.seq), &plan.replicas);
            let redundancy = plan.replicas.len();
            if sent == 0 {
                state.handler.on_give_up(t0, plan.seq);
                return Err(CallError::GaveUp { redundancy });
            }
            let (tx, rx) = bounded(2);
            state.waiters.insert(
                plan.seq,
                Waiter {
                    tx: tx.clone(),
                    redundancy,
                    group: vec![plan.seq],
                },
            );
            (plan.seq, plan.replicas, redundancy, tx, rx)
        };
        let mut seqs = vec![first_seq];

        // Stage 1 (optional): wait until the intermediate retry deadline,
        // then re-run Algorithm 1 over the remaining replicas and multicast
        // a sibling attempt. The original stays live; earliest reply wins.
        if let Some(retry_after) = self.retry_after {
            let wait = std::time::Duration::from(retry_after).min(give_up);
            match rx.recv_timeout(wait) {
                Ok(msg) => return resolve(msg),
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                    let mut state = self.inner.lock_state();
                    if let Ok(msg) = rx.try_recv() {
                        return resolve(msg);
                    }
                    if state.waiters.contains_key(&first_seq) {
                        let now = self.inner.now();
                        let retry = state.handler.plan_retry(
                            now,
                            Some(method),
                            t0,
                            first_seq,
                            &first_selection,
                        );
                        if let Some(plan) = retry {
                            let sent =
                                self.multicast(&mut state, &frame_for(plan.seq), &plan.replicas);
                            if sent > 0 {
                                redundancy += plan.replicas.len();
                                let group = vec![first_seq, plan.seq];
                                if let Some(w) = state.waiters.get_mut(&first_seq) {
                                    w.group.clone_from(&group);
                                    w.redundancy = redundancy;
                                }
                                state.waiters.insert(
                                    plan.seq,
                                    Waiter {
                                        tx: tx.clone(),
                                        redundancy,
                                        group,
                                    },
                                );
                                seqs.push(plan.seq);
                            } else {
                                // Nobody reachable for the retry: retire
                                // the attempt quietly.
                                state.handler.on_abandon(now, plan.seq);
                            }
                        }
                    }
                }
            }
        }

        // Stage 2: wait out the rest of the give-up window.
        let remaining = give_up.saturating_sub(started.elapsed());
        match rx.recv_timeout(remaining) {
            Ok(msg) => resolve(msg),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                // Race window: the dispatcher may have resolved the call
                // between the timeout and us taking the lock.
                let mut state = self.inner.lock_state();
                if let Ok(msg) = rx.try_recv() {
                    return resolve(msg);
                }
                // One timing failure per logical request: the newest
                // attempt carries the give-up, earlier ones retire.
                let now = self.inner.now();
                for s in &seqs {
                    state.waiters.remove(s);
                }
                if let Some((last, earlier)) = seqs.split_last() {
                    for s in earlier {
                        state.handler.on_abandon(now, *s);
                    }
                    state.handler.on_give_up(now, *last);
                }
                drop(tx);
                Err(CallError::GaveUp { redundancy })
            }
        }
    }

    /// Writes `frame` to every listed replica that still has a live
    /// connection; returns how many writes succeeded.
    fn multicast(&self, state: &mut State, frame: &Frame, replicas: &[ReplicaId]) -> usize {
        let mut sent = 0usize;
        for id in replicas {
            if let Some(writer) = state.writers.get_mut(id) {
                if frame.write_to(writer).is_ok() {
                    sent += 1;
                    if let Some(wire) = &self.inner.wire {
                        wire.on_sent(frame);
                    }
                }
            }
        }
        sent
    }
}

fn resolve(msg: WaitMsg) -> Result<CallOutcome, CallError> {
    match msg {
        WaitMsg::Outcome(outcome) => Ok(outcome),
        WaitMsg::NoReplicas => Err(CallError::NoReplicas),
    }
}

fn dispatcher_loop(inner: Arc<Inner>, events: Receiver<NetEvent>) {
    while let Ok(ev) = events.recv() {
        inner.apply_event(ev);
    }
}

fn reader_loop(mut stream: TcpStream, id: ReplicaId, tx: Sender<NetEvent>) {
    loop {
        match Frame::read_from(&mut stream) {
            Ok(frame) => {
                if tx.send(NetEvent::Frame(id, frame)).is_err() {
                    return;
                }
            }
            Err(_) => {
                let _ = tx.send(NetEvent::Disconnected(id));
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ReplicaServer, ReplicaServerConfig};
    use aqua_strategies::ModelBased;

    /// The baseline must stay a faithful, working implementation of the
    /// old path — otherwise the A/B benchmark compares against a strawman.
    #[test]
    fn baseline_still_serves_calls() {
        let servers: Vec<ReplicaServer> = (0..3u64)
            .map(|i| {
                ReplicaServer::spawn(ReplicaServerConfig::quick(ReplicaId::new(i), 5))
                    .expect("spawn")
            })
            .collect();
        let replicas: Vec<(ReplicaId, SocketAddr)> =
            servers.iter().map(|s| (s.replica(), s.addr())).collect();
        let qos = QosSpec::new(Duration::from_millis(500), 0.9).unwrap();
        let client = SerializedClient::connect(
            &replicas,
            AquaClientConfig::new(qos),
            Box::new(ModelBased::default()),
        )
        .expect("connect");
        let mut redundancies = Vec::new();
        for _ in 0..6 {
            let out = client.call(MethodId::DEFAULT, b"hello").expect("call ok");
            assert!(out.timely);
            redundancies.push(out.redundancy);
        }
        assert_eq!(redundancies[0], 3, "cold start selects all");
        assert_eq!(
            *redundancies.last().unwrap(),
            2,
            "warm Pc=0.9 needs only 2: {redundancies:?}"
        );
    }
}
