//! # aqua-runtime — the timing fault handler over real sockets
//!
//! A deployment of the same `aqua-gateway` handler outside the simulator:
//! replica servers and client gateways as threads exchanging
//! length-prefixed frames over localhost TCP. This demonstrates that the
//! model and selection algorithm work against *wall-clock* measurements —
//! real queuing, real scheduling jitter, real connection teardown as the
//! crash detector.
//!
//! Since the reactor rework, all client sockets are owned by a single
//! epoll-driven event-loop thread ([`mod@wire`] frames, vectored batched
//! writes); [`MuxPool`] multiplexes many logical client handles over that
//! one socket set, and the old thread-per-connection transport survives
//! behind the `threaded-baseline` feature as an A/B baseline.
//!
//! ```no_run
//! use aqua_runtime::{AquaClient, AquaClientConfig, ReplicaServer, ReplicaServerConfig};
//! use aqua_core::qos::{QosSpec, ReplicaId};
//! use aqua_core::repository::MethodId;
//! use aqua_core::time::Duration;
//! use aqua_strategies::ModelBased;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Three replicas with ~10 ms service time.
//! let servers: Vec<ReplicaServer> = (0..3)
//!     .map(|i| ReplicaServer::spawn(ReplicaServerConfig::quick(ReplicaId::new(i), 10)))
//!     .collect::<Result<_, _>>()?;
//! let replicas: Vec<_> = servers.iter().map(|s| (s.replica(), s.addr())).collect();
//!
//! let qos = QosSpec::new(Duration::from_millis(100), 0.9)?;
//! let client = AquaClient::connect(
//!     &replicas,
//!     AquaClientConfig::new(qos),
//!     Box::new(ModelBased::default()),
//! )?;
//! let outcome = client.call(MethodId::DEFAULT, b"query")?;
//! assert!(outcome.timely);
//! # Ok(())
//! # }
//! ```

// `sys` is the single module allowed to contain unsafe code (raw epoll
// syscalls); everything else in the crate stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod client;
pub mod mux;
mod reactor;
#[cfg(feature = "serialized-baseline")]
pub mod serialized;
mod server;
mod supervisor;
mod sys;
#[cfg(feature = "threaded-baseline")]
pub mod threaded;
pub mod wire;

pub use client::{AquaClient, AquaClientConfig, CallError, CallOutcome, ReconnectPolicy};
pub use mux::{MuxHandle, MuxPool, MuxPoolConfig};
#[cfg(feature = "serialized-baseline")]
pub use serialized::SerializedClient;
pub use server::{ReplicaServer, ReplicaServerConfig};
pub use supervisor::SupervisorDriver;
#[cfg(feature = "threaded-baseline")]
pub use threaded::ThreadedClient;
