//! Multiplexed client handles: many logical clients, few sockets.
//!
//! The thread-per-connection design couples the number of logical clients
//! to the number of sockets: `L` clients against `R` replicas cost
//! `L × R` connections and `2 × L × R` OS threads, and every connection
//! subscribes to the server's `PerfUpdate` broadcast. A [`MuxPool`]
//! instead opens **one** reactor-managed socket per replica and carves
//! the request sequence space into per-handle namespaces: the top
//! [`HANDLE_BITS`] bits of the wire `seq` carry the handle id, the low
//! bits the handle-local sequence number. Servers echo `seq` verbatim,
//! so multiplexing is invisible on the wire — replies route back to the
//! owning handle by their high bits.
//!
//! Each [`MuxHandle`] owns a full `ConcurrentHandler` (its own sliding
//! windows, failure detector, and selection strategy), so handles make
//! independent selection decisions exactly like separate clients would.
//! Replies observed by one handle are fanned to the others as passive
//! perf updates — over a shared socket every handle sees every reply,
//! which keeps all repositories warm without extra wire traffic.
//!
//! v1 scope: no retry stage and no reconnect — a lost socket evicts the
//! replica from every handle. Benchmarks and steady-state serving paths
//! need neither; the full [`crate::AquaClient`] remains the durable
//! option.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, Weak};
use std::time::Instant as StdInstant;

use aqua_core::qos::{QosSpec, ReplicaId};
use aqua_core::repository::{MethodId, PerfReport};
use aqua_core::time::{Duration, Instant};
use aqua_gateway::{ConcurrentHandler, ReplyOutcome};
use aqua_strategies::SelectionStrategy;
use bytes::Bytes;
use crossbeam::channel::{bounded, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use crate::client::{CallError, CallOutcome, WireMetrics};
use crate::reactor::{NetMetrics, Reactor, ReactorSink};
use crate::wire::Frame;

/// Bits of the wire sequence number reserved for the handle id.
pub const HANDLE_BITS: u32 = 24;
/// Bit position where the handle id starts (low bits are handle-local).
const HANDLE_SHIFT: u32 = 64 - HANDLE_BITS;
/// Mask selecting the handle-local sequence number.
const SEQ_MASK: u64 = (1 << HANDLE_SHIFT) - 1;

/// Configuration of a [`MuxPool`].
#[derive(Debug, Clone)]
pub struct MuxPoolConfig {
    /// QoS specification every handle starts from.
    pub qos: QosSpec,
    /// Sliding-window size `l` for each handle's repository.
    pub window: usize,
    /// Handles give up on a call after this long.
    pub give_up_after: Duration,
    /// Pool identifier sent in `Hello` (diagnostics only).
    pub id: u64,
    /// Optional observability sink. Instruments are pool-level (wire and
    /// syscall counters); handles deliberately attach none, so a pool
    /// with thousands of handles does not explode label cardinality.
    pub obs: Option<aqua_obs::Obs>,
}

impl MuxPoolConfig {
    /// Paper defaults: window 5, give up after 5 s.
    pub fn new(qos: QosSpec) -> Self {
        MuxPoolConfig {
            qos,
            window: 5,
            give_up_after: Duration::from_secs(5),
            id: 0,
            obs: None,
        }
    }
}

/// One resolved call message on a waiter channel.
enum WaitMsg {
    Outcome(CallOutcome),
    NoReplicas,
}

/// An in-flight call awaiting its earliest reply.
struct Waiter {
    tx: Sender<WaitMsg>,
    redundancy: usize,
}

/// Per-handle state shared between its caller thread and the reactor.
struct HandleState {
    handler: ConcurrentHandler,
    /// Handle-local seq → waiter. One mutex per handle: the only
    /// contention is the owning caller against the reactor thread.
    waiters: Mutex<HashMap<u64, Waiter>>,
}

impl HandleState {
    fn deliver(
        &self,
        seq: u64,
        replica: ReplicaId,
        response_time: Duration,
        verdict: aqua_core::failure::TimingVerdict,
        payload: Bytes,
    ) {
        let waiter = {
            let mut waiters = self.waiters.lock();
            waiters.remove(&seq)
        };
        let Some(waiter) = waiter else { return };
        let outcome = CallOutcome {
            response_time,
            timely: verdict.is_timely(),
            callback: verdict.should_notify(),
            redundancy: waiter.redundancy,
            replica,
            payload,
        };
        let _ = waiter.tx.send(WaitMsg::Outcome(outcome));
    }

    /// Fails every in-flight call: the pool has no replicas left.
    fn fail_all(&self, now: Instant) {
        let drained: Vec<(u64, Waiter)> = {
            let mut waiters = self.waiters.lock();
            waiters.drain().collect()
        };
        for (seq, waiter) in drained {
            self.handler.on_give_up(now, seq);
            let _ = waiter.tx.send(WaitMsg::NoReplicas);
        }
    }
}

struct Inner {
    /// Handle id → state. Read-mostly: writes only on `handle()`.
    handles: RwLock<HashMap<u64, Arc<HandleState>>>,
    /// Replica → reactor connection token.
    conns: RwLock<HashMap<ReplicaId, u64>>,
    reactor: Reactor,
    wire: Option<WireMetrics>,
    epoch: StdInstant,
    next_handle: AtomicU64,
}

impl Inner {
    fn now(&self) -> Instant {
        Instant::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }

    fn handle_state(&self, hid: u64) -> Option<Arc<HandleState>> {
        let handles = self.handles.read().unwrap_or_else(|p| p.into_inner());
        handles.get(&hid).cloned()
    }

    /// Fans a perf observation to every handle except `skip` (the handle
    /// that already folded it in through `on_reply`).
    fn fan_perf(&self, skip: Option<u64>, replica: ReplicaId, perf: PerfReport, now: Instant) {
        let states: Vec<Arc<HandleState>> = {
            let handles = self.handles.read().unwrap_or_else(|p| p.into_inner());
            handles
                .iter()
                .filter(|(hid, _)| Some(**hid) != skip)
                .map(|(_, s)| Arc::clone(s))
                .collect()
        };
        for state in states {
            state.handler.on_perf_update(now, replica, perf);
        }
    }
}

impl ReactorSink for Inner {
    fn on_frame(&self, _tag: u64, _conn: u64, frame: Frame) {
        if let Some(wire) = &self.wire {
            wire.on_received(&frame);
        }
        match frame {
            Frame::Reply {
                seq,
                replica,
                service_ns,
                queue_ns,
                queue_len,
                method,
                payload,
            } => {
                let perf = PerfReport {
                    service_time: Duration::from_nanos(service_ns),
                    queuing_delay: Duration::from_nanos(queue_ns),
                    queue_len,
                    method: MethodId::new(method),
                };
                let replica = ReplicaId::new(replica);
                let hid = seq >> HANDLE_SHIFT;
                let local = seq & SEQ_MASK;
                let now = self.now();
                if let Some(state) = self.handle_state(hid) {
                    let outcome = state.handler.on_reply(now, local, replica, perf);
                    if let ReplyOutcome::Deliver {
                        response_time,
                        verdict,
                    } = outcome
                    {
                        state.deliver(local, replica, response_time, verdict, payload);
                    }
                }
                self.fan_perf(Some(hid), replica, perf, now);
            }
            Frame::PerfUpdate {
                replica,
                service_ns,
                queue_ns,
                queue_len,
                method,
            } => {
                let perf = PerfReport {
                    service_time: Duration::from_nanos(service_ns),
                    queuing_delay: Duration::from_nanos(queue_ns),
                    queue_len,
                    method: MethodId::new(method),
                };
                self.fan_perf(None, ReplicaId::new(replica), perf, self.now());
            }
            _ => {}
        }
    }

    fn on_disconnect(&self, tag: u64, conn: u64) {
        let id = ReplicaId::new(tag);
        let remaining: Vec<ReplicaId> = {
            let mut conns = self.conns.write().unwrap_or_else(|p| p.into_inner());
            match conns.get(&id) {
                Some(&current) if current == conn => {
                    conns.remove(&id);
                }
                _ => return, // stale: a different connection instance
            }
            conns.keys().copied().collect()
        };
        let now = self.now();
        let states: Vec<Arc<HandleState>> = {
            let handles = self.handles.read().unwrap_or_else(|p| p.into_inner());
            handles.values().map(Arc::clone).collect()
        };
        for state in &states {
            state.handler.on_view(now, remaining.iter().copied());
        }
        if remaining.is_empty() {
            for state in &states {
                state.fail_all(now);
            }
        }
    }
}

/// A pool of reactor-managed replica sockets shared by many logical
/// client handles. See the module docs for the multiplexing scheme.
pub struct MuxPool {
    inner: Arc<Inner>,
    config: MuxPoolConfig,
}

impl std::fmt::Debug for MuxPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let conns = {
            let conns = self.inner.conns.read().unwrap_or_else(|p| p.into_inner());
            conns.len()
        };
        let handles = {
            let handles = self.inner.handles.read().unwrap_or_else(|p| p.into_inner());
            handles.len()
        };
        f.debug_struct("MuxPool")
            .field("connections", &conns)
            .field("handles", &handles)
            .finish()
    }
}

impl MuxPool {
    /// Opens one socket per replica on a fresh reactor.
    ///
    /// # Errors
    ///
    /// Fails if any connection cannot be established.
    pub fn connect(
        replicas: &[(ReplicaId, SocketAddr)],
        config: MuxPoolConfig,
    ) -> io::Result<MuxPool> {
        let net = config.obs.as_ref().map(NetMetrics::new);
        let reactor = Reactor::spawn(net)?;
        let wire = config
            .obs
            .as_ref()
            .map(|obs| WireMetrics::new(obs, config.id));
        let inner = Arc::new(Inner {
            handles: RwLock::new(HashMap::new()),
            conns: RwLock::new(HashMap::new()),
            reactor,
            wire,
            epoch: StdInstant::now(),
            next_handle: AtomicU64::new(0),
        });
        let weak = Arc::downgrade(&inner);
        let sink: Weak<dyn ReactorSink> = weak;
        inner.reactor.set_sink(sink);
        for (id, addr) in replicas {
            let stream = TcpStream::connect(*addr)?;
            stream.set_nodelay(true).ok();
            let conn = inner.reactor.register(stream, id.index())?;
            let hello = Frame::Hello { client: config.id };
            if inner.reactor.send(conn, &hello) {
                if let Some(wire) = &inner.wire {
                    wire.on_sent(&hello);
                }
            }
            let mut conns = inner.conns.write().unwrap_or_else(|p| p.into_inner());
            conns.insert(*id, conn);
        }
        Ok(MuxPool { inner, config })
    }

    /// Creates a logical client handle with its own selection strategy
    /// and repository, initialized with the pool's current replica set.
    ///
    /// # Panics
    ///
    /// Panics once [`HANDLE_BITS`] worth of handles have been created
    /// over the pool's lifetime.
    pub fn handle(&self, strategy: Box<dyn SelectionStrategy>) -> MuxHandle {
        let hid = self.inner.next_handle.fetch_add(1, Ordering::Relaxed);
        assert!(hid < (1 << HANDLE_BITS), "handle id space exhausted");
        let handler = ConcurrentHandler::new(self.config.qos, self.config.window, strategy);
        let now = self.inner.now();
        let replicas: Vec<ReplicaId> = {
            let conns = self.inner.conns.read().unwrap_or_else(|p| p.into_inner());
            conns.keys().copied().collect()
        };
        for id in &replicas {
            handler.insert_replica(now, *id);
        }
        let state = Arc::new(HandleState {
            handler,
            waiters: Mutex::new(HashMap::new()),
        });
        {
            let mut handles = self
                .inner
                .handles
                .write()
                .unwrap_or_else(|p| p.into_inner());
            handles.insert(hid, Arc::clone(&state));
        }
        MuxHandle {
            inner: Arc::clone(&self.inner),
            state,
            hid,
            give_up_after: self.config.give_up_after,
        }
    }

    /// Number of live replica connections.
    pub fn connection_count(&self) -> usize {
        let conns = self.inner.conns.read().unwrap_or_else(|p| p.into_inner());
        conns.len()
    }
}

/// One logical client multiplexed over a [`MuxPool`]'s sockets.
///
/// Cheap to create and independent in its selection decisions; safe to
/// move to a dedicated caller thread. Dropping a handle does not close
/// any socket.
pub struct MuxHandle {
    inner: Arc<Inner>,
    state: Arc<HandleState>,
    hid: u64,
    give_up_after: Duration,
}

impl std::fmt::Debug for MuxHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MuxHandle").field("id", &self.hid).finish()
    }
}

impl MuxHandle {
    /// Runs `f` against this handle's handler (repository inspection,
    /// stats, …).
    pub fn with_handler<R>(&self, f: impl FnOnce(&ConcurrentHandler) -> R) -> R {
        f(&self.state.handler)
    }

    /// Invokes the replicated service through the shared socket pool:
    /// selects replicas per the QoS spec, multicasts the request (tagged
    /// with this handle's id), and returns the earliest reply.
    ///
    /// # Errors
    ///
    /// [`CallError::NoReplicas`] when every replica is gone,
    /// [`CallError::GaveUp`] when no selected replica answered within the
    /// give-up window.
    pub fn call(&self, method: MethodId, payload: &[u8]) -> Result<CallOutcome, CallError> {
        let inner = &self.inner;
        let t0 = inner.now();
        let plan = self.state.handler.plan_request_for(t0, Some(method));
        if plan.replicas.is_empty() {
            self.state.handler.on_give_up(inner.now(), plan.seq);
            return Err(CallError::NoReplicas);
        }
        let seq = plan.seq;
        debug_assert!(seq <= SEQ_MASK, "handle-local seq overflowed its field");
        let redundancy = plan.replicas.len();
        let (tx, rx) = bounded(2);
        {
            let mut waiters = self.state.waiters.lock();
            waiters.insert(seq, Waiter { tx, redundancy });
        }
        let targets: Vec<u64> = {
            let conns = inner.conns.read().unwrap_or_else(|p| p.into_inner());
            plan.replicas
                .iter()
                .filter_map(|id| conns.get(id).copied())
                .collect()
        };
        let frame = Frame::Request {
            seq: (self.hid << HANDLE_SHIFT) | (seq & SEQ_MASK),
            method: method.index(),
            payload: Bytes::copy_from_slice(payload),
        };
        let sent = inner.reactor.multicast(&targets, &frame);
        if let Some(wire) = &inner.wire {
            for _ in 0..sent {
                wire.on_sent(&frame);
            }
        }
        if sent == 0 {
            let mut waiters = self.state.waiters.lock();
            waiters.remove(&seq);
            drop(waiters);
            self.state.handler.on_give_up(inner.now(), seq);
            return Err(CallError::GaveUp { redundancy });
        }
        match rx.recv_timeout(std::time::Duration::from(self.give_up_after)) {
            Ok(WaitMsg::Outcome(outcome)) => Ok(outcome),
            Ok(WaitMsg::NoReplicas) => Err(CallError::NoReplicas),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                let now = inner.now();
                if !self.state.handler.on_give_up(now, seq) {
                    // A reply won the race and is being delivered; give it
                    // a moment to land.
                    let msg = rx.recv_timeout(std::time::Duration::from_secs(1)).ok();
                    let mut waiters = self.state.waiters.lock();
                    waiters.remove(&seq);
                    drop(waiters);
                    if let Some(WaitMsg::Outcome(outcome)) = msg {
                        return Ok(outcome);
                    }
                    return Err(CallError::GaveUp { redundancy });
                }
                let mut waiters = self.state.waiters.lock();
                waiters.remove(&seq);
                drop(waiters);
                Err(CallError::GaveUp { redundancy })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ReplicaServer, ReplicaServerConfig};
    use aqua_strategies::ModelBased;

    fn pool_against(n: u64, service_ms: u64) -> (Vec<ReplicaServer>, MuxPool) {
        let servers: Vec<ReplicaServer> = (0..n)
            .map(|i| {
                ReplicaServer::spawn(ReplicaServerConfig::quick(ReplicaId::new(i), service_ms))
                    .unwrap()
            })
            .collect();
        let replicas: Vec<(ReplicaId, SocketAddr)> =
            servers.iter().map(|s| (s.replica(), s.addr())).collect();
        let qos = QosSpec::new(Duration::from_millis(500), 0.9).unwrap();
        let pool = MuxPool::connect(&replicas, MuxPoolConfig::new(qos)).expect("connect");
        (servers, pool)
    }

    #[test]
    fn handles_share_sockets() {
        let (_servers, pool) = pool_against(2, 1);
        let a = pool.handle(Box::new(ModelBased::default()));
        let b = pool.handle(Box::new(ModelBased::default()));
        assert_eq!(pool.connection_count(), 2);
        let out = a.call(MethodId::DEFAULT, b"from-a").expect("call a");
        assert_eq!(out.payload, Bytes::from_static(b"from-a"));
        let out = b.call(MethodId::DEFAULT, b"from-b").expect("call b");
        assert_eq!(out.payload, Bytes::from_static(b"from-b"));
        a.with_handler(|h| assert_eq!(h.stats().delivered, 1));
        b.with_handler(|h| assert_eq!(h.stats().delivered, 1));
    }

    #[test]
    fn interleaved_replies_route_to_their_handle() {
        // Many handles calling concurrently with distinct payloads: each
        // reply must come back on the logical handle that issued it, even
        // though every frame shares the same few sockets.
        let (_servers, pool) = pool_against(2, 0);
        let pool = Arc::new(pool);
        let mut joins = Vec::new();
        for h in 0..8u64 {
            let handle = pool.handle(Box::new(ModelBased::default()));
            joins.push(std::thread::spawn(move || {
                for i in 0..16u64 {
                    let tag = format!("handle-{h}-call-{i}");
                    let out = handle
                        .call(MethodId::DEFAULT, tag.as_bytes())
                        .expect("call");
                    assert_eq!(
                        out.payload.as_slice(),
                        tag.as_bytes(),
                        "reply crossed handles"
                    );
                }
                handle.with_handler(|st| assert_eq!(st.stats().delivered, 16));
            }));
        }
        for j in joins {
            j.join().expect("caller thread");
        }
    }

    #[test]
    fn pool_reports_no_replicas_once_all_sockets_drop() {
        let (servers, pool) = pool_against(1, 1);
        let handle = pool.handle(Box::new(ModelBased::default()));
        handle.call(MethodId::DEFAULT, b"x").expect("first call");
        drop(servers);
        let deadline = StdInstant::now() + std::time::Duration::from_secs(2);
        loop {
            match handle.call(MethodId::DEFAULT, b"x") {
                Err(CallError::NoReplicas) => break,
                _ if StdInstant::now() < deadline => {
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
                other => panic!("expected NoReplicas, got {other:?}"),
            }
        }
    }
}
