//! The readiness reactor: one event-loop thread owning every client
//! socket in nonblocking mode (DESIGN.md §15).
//!
//! Replaces the thread-per-connection writer/reader pairs of the previous
//! client. Outbound frames are queued on per-connection ring buffers and
//! flushed with **vectored writes** — one Algorithm-1 multicast to `q`
//! replicas plus anything else queued behind it coalesces into a single
//! `writev`-style syscall per connection. Inbound bytes go through a
//! per-connection [`FrameAssembler`]: readiness-driven reads into a
//! growable reassembly buffer, frames decoded in place and handed to the
//! registered [`ReactorSink`] (the client's handler ingest shards) with no
//! intermediate copy.
//!
//! Locking discipline: each connection's I/O state sits behind its own
//! mutex, acquired either by the reactor thread or by a sender queueing
//! frames — never nested with the connection map or the dirty list, and
//! never held across a sink callback.

use std::collections::{HashMap, VecDeque};
use std::io::{self, IoSlice, Read as _, Write as _};
use std::net::TcpStream;
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock, Weak};
use std::thread::JoinHandle;

use aqua_core::aqua;
use bytes::Bytes;
use parking_lot::Mutex;

use crate::sys::{Epoll, EpollEvent, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use crate::wire::{Frame, FrameAssembler};

/// Reserved epoll cookie for the wake pipe.
const WAKE_TOKEN: u64 = u64::MAX;

/// Upper bound on segments handed to one vectored write.
const MAX_IOVECS: usize = 64;

/// Events pulled per `epoll_wait`.
const MAX_EVENTS: usize = 64;

/// Receives reactor events. Implemented by the client's shared state;
/// callbacks run on the reactor thread with **no reactor locks held**, so
/// they may call back into [`Reactor::multicast`] / [`Reactor::register`].
pub(crate) trait ReactorSink: Send + Sync {
    /// One decoded inbound frame from the connection registered with `tag`.
    fn on_frame(&self, tag: u64, conn: u64, frame: Frame);
    /// The connection registered with `tag` is gone (EOF, reset, or a
    /// protocol error); it has already been deregistered.
    fn on_disconnect(&self, tag: u64, conn: u64);
}

/// Cached handles for the reactor's syscall instruments
/// (`aqua_net_syscalls_total{op}`, `aqua_net_writev_batch_frames`, and the
/// per-connection `aqua_net_outbound_queue_depth` gauges).
pub(crate) struct NetMetrics {
    obs: aqua_obs::Obs,
    reads: Arc<aqua_obs::metrics::Counter>,
    writevs: Arc<aqua_obs::metrics::Counter>,
    waits: Arc<aqua_obs::metrics::Counter>,
    batch_frames: Arc<aqua_obs::metrics::Histogram>,
}

impl NetMetrics {
    pub(crate) fn new(obs: &aqua_obs::Obs) -> NetMetrics {
        let registry = obs.registry();
        NetMetrics {
            obs: obs.clone(),
            reads: registry.counter("aqua_net_syscalls_total", &[("op", "read")]),
            writevs: registry.counter("aqua_net_syscalls_total", &[("op", "writev")]),
            waits: registry.counter("aqua_net_syscalls_total", &[("op", "epoll_wait")]),
            batch_frames: registry.histogram("aqua_net_writev_batch_frames", &[]),
        }
    }

    fn queue_gauge(&self, conn: u64) -> Arc<aqua_obs::metrics::Gauge> {
        let conn = conn.to_string();
        self.obs
            .registry()
            .gauge("aqua_net_outbound_queue_depth", &[("conn", conn.as_str())])
    }
}

/// Per-connection I/O state, guarded by the connection's own mutex.
struct ConnIo {
    stream: TcpStream,
    /// Inbound reassembly.
    assembler: FrameAssembler,
    /// Outbound ring: one encoded frame per segment, flushed oldest-first.
    out: VecDeque<Bytes>,
    /// Bytes of `out[0]` already written (partial-flush cursor).
    out_head: usize,
    /// Whether `EPOLLOUT` is currently armed.
    want_write: bool,
    closed: bool,
}

struct Conn {
    id: u64,
    /// Caller-chosen routing tag (the client keys these by replica).
    tag: u64,
    fd: RawFd,
    io: Mutex<ConnIo>,
    depth: Option<Arc<aqua_obs::metrics::Gauge>>,
}

struct Shared {
    epoll: Epoll,
    /// Write half of the wake pipe; senders poke it to interrupt
    /// `epoll_wait` after queueing output.
    wake_tx: UnixStream,
    /// Coalesces wake pokes: at most one pipe byte in flight.
    wake_pending: AtomicBool,
    conns: RwLock<HashMap<u64, Arc<Conn>>>,
    /// Connection ids with freshly queued output awaiting a flush.
    dirty: Mutex<Vec<u64>>,
    sink: RwLock<Option<Weak<dyn ReactorSink>>>,
    next_conn: AtomicU64,
    shutdown: AtomicBool,
    metrics: Option<NetMetrics>,
}

impl Shared {
    fn conn(&self, id: u64) -> Option<Arc<Conn>> {
        let conns = self.conns.read().unwrap_or_else(|p| p.into_inner());
        conns.get(&id).cloned()
    }

    fn wake(&self) {
        if !self.wake_pending.swap(true, Ordering::AcqRel) {
            let mut tx = &self.wake_tx;
            let _ = tx.write(&[1u8]);
        }
    }
}

/// Handle to the event-loop thread. Dropping it (or calling
/// [`Reactor::shutdown`]) stops and **joins** the thread — the reactor
/// never leaks.
pub(crate) struct Reactor {
    shared: Arc<Shared>,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl Reactor {
    /// Starts the event-loop thread.
    pub(crate) fn spawn(metrics: Option<NetMetrics>) -> io::Result<Reactor> {
        let epoll = Epoll::new()?;
        let (wake_rx, wake_tx) = UnixStream::pair()?;
        wake_rx.set_nonblocking(true)?;
        wake_tx.set_nonblocking(true)?;
        epoll.add(wake_rx.as_raw_fd(), EPOLLIN, WAKE_TOKEN)?;
        let shared = Arc::new(Shared {
            epoll,
            wake_tx,
            wake_pending: AtomicBool::new(false),
            conns: RwLock::new(HashMap::new()),
            dirty: Mutex::new(Vec::new()),
            sink: RwLock::new(None),
            next_conn: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            metrics,
        });
        let loop_shared = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("aqua-reactor".to_string())
            .spawn(move || event_loop(loop_shared, wake_rx))?;
        Ok(Reactor {
            shared,
            thread: Mutex::new(Some(thread)),
        })
    }

    /// Installs the frame/disconnect consumer. Held weakly so the sink
    /// (which owns the reactor) doesn't cycle.
    pub(crate) fn set_sink(&self, sink: Weak<dyn ReactorSink>) {
        let mut slot = self.shared.sink.write().unwrap_or_else(|p| p.into_inner());
        *slot = Some(sink);
    }

    /// Takes ownership of `stream` (switched to nonblocking), registers it
    /// for readiness, and returns its connection id. Frames already queued
    /// via [`Reactor::send`] before the id is shared cannot be reordered
    /// with later sends — the ring is strictly FIFO.
    pub(crate) fn register(&self, stream: TcpStream, tag: u64) -> io::Result<u64> {
        if self.shared.shutdown.load(Ordering::SeqCst) {
            return Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "reactor is shut down",
            ));
        }
        stream.set_nonblocking(true)?;
        let id = self.shared.next_conn.fetch_add(1, Ordering::Relaxed);
        let fd = stream.as_raw_fd();
        let depth = self.shared.metrics.as_ref().map(|m| m.queue_gauge(id));
        let conn = Arc::new(Conn {
            id,
            tag,
            fd,
            io: Mutex::new(ConnIo {
                stream,
                assembler: FrameAssembler::new(),
                out: VecDeque::new(),
                out_head: 0,
                want_write: false,
                closed: false,
            }),
            depth,
        });
        {
            let mut conns = self.shared.conns.write().unwrap_or_else(|p| p.into_inner());
            conns.insert(id, Arc::clone(&conn));
        }
        if let Err(e) = self.shared.epoll.add(fd, EPOLLIN | EPOLLRDHUP, id) {
            let mut conns = self.shared.conns.write().unwrap_or_else(|p| p.into_inner());
            conns.remove(&id);
            return Err(e);
        }
        Ok(id)
    }

    /// Queues one frame on a single connection. Returns whether the
    /// connection accepted it.
    pub(crate) fn send(&self, conn: u64, frame: &Frame) -> bool {
        self.multicast(std::slice::from_ref(&conn), frame) == 1
    }

    /// Encodes `frame` **once** and queues the shared bytes on every
    /// listed connection's outbound ring, then wakes the reactor with a
    /// single poke. The per-connection flush later coalesces this segment
    /// with whatever else has queued into one vectored write. Returns how
    /// many connections accepted the frame.
    pub(crate) fn multicast(&self, targets: &[u64], frame: &Frame) -> usize {
        if targets.is_empty() {
            return 0;
        }
        let mut buf = Vec::with_capacity(frame.encoded_len());
        frame.encode_into(&mut buf);
        let encoded = Bytes::from(buf);
        let mut queued = 0usize;
        for &id in targets {
            let Some(conn) = self.shared.conn(id) else {
                continue;
            };
            let accepted = {
                let mut io = conn.io.lock();
                if io.closed {
                    false
                } else {
                    io.out.push_back(encoded.clone());
                    true
                }
            };
            if accepted {
                queued += 1;
                if let Some(g) = &conn.depth {
                    g.add(1);
                }
                let mut dirty = self.shared.dirty.lock();
                dirty.push(id);
            }
        }
        if queued > 0 {
            self.shared.wake();
        }
        queued
    }

    /// How many connections are currently registered.
    #[cfg(test)]
    pub(crate) fn conn_count(&self) -> usize {
        let conns = self.shared.conns.read().unwrap_or_else(|p| p.into_inner());
        conns.len()
    }

    /// Stops the event loop and joins its thread. Idempotent; also runs on
    /// drop.
    pub(crate) fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Poke unconditionally: `wake_pending` may be set with the byte
        // already drained, and a second byte merely causes one extra spin.
        let mut tx = &self.shared.wake_tx;
        let _ = tx.write(&[1u8]);
        let handle = self.thread.lock().take();
        if let Some(handle) = handle {
            if handle.thread().id() == std::thread::current().id() {
                // The sink's last Arc died on the reactor thread itself
                // (mid-dispatch): the loop is already on its way out via
                // the shutdown flag, so detach rather than self-join.
                drop(handle);
            } else {
                let _ = handle.join();
            }
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn event_loop(shared: Arc<Shared>, wake_rx: UnixStream) {
    let mut events = [EpollEvent::EMPTY; MAX_EVENTS];
    // Scratch reused across iterations: decoded frames and dead
    // connections awaiting dispatch, and the flush worklist.
    let mut inbox: Vec<(u64, u64, Frame)> = Vec::new();
    let mut gone: Vec<(u64, u64)> = Vec::new();
    let mut flush: Vec<u64> = Vec::new();
    let mut wake_buf = [0u8; 64];
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let n = match shared.epoll.wait(&mut events, 100) {
            Ok(n) => n,
            Err(_) => return,
        };
        if let Some(m) = &shared.metrics {
            m.waits.inc();
        }
        flush.clear();
        for ev in &events[..n] {
            let token = ev.data;
            let bits = ev.events;
            if token == WAKE_TOKEN {
                // Clear the coalescing flag *before* draining the dirty
                // list below: a sender queueing after this point writes a
                // fresh byte, so no wakeup is ever lost.
                shared.wake_pending.store(false, Ordering::Release);
                let mut rx = &wake_rx;
                while let Ok(n) = rx.read(&mut wake_buf) {
                    if n == 0 {
                        break;
                    }
                }
                continue;
            }
            let Some(conn) = shared.conn(token) else {
                continue;
            };
            if bits & (EPOLLIN | EPOLLRDHUP | EPOLLERR | EPOLLHUP) != 0 {
                read_ready(&shared, &conn, &mut inbox, &mut gone);
            }
            if bits & EPOLLOUT != 0 {
                flush.push(token);
            }
        }
        {
            let mut dirty = shared.dirty.lock();
            flush.append(&mut dirty);
        }
        flush.sort_unstable();
        flush.dedup();
        for &id in flush.iter() {
            if let Some(conn) = shared.conn(id) {
                flush_conn(&shared, &conn, &mut gone);
            }
        }
        dispatch(&shared, &mut inbox, &mut gone);
    }
}

/// Drains a readable connection: reads until `WouldBlock`, decoding every
/// complete frame out of the reassembly buffer into the inbox. EOF and
/// errors close the connection.
#[aqua::hot_path]
fn read_ready(
    shared: &Shared,
    conn: &Conn,
    inbox: &mut Vec<(u64, u64, Frame)>,
    gone: &mut Vec<(u64, u64)>,
) {
    let mut io = conn.io.lock();
    if io.closed {
        return;
    }
    let mut dead = false;
    {
        let ConnIo {
            stream, assembler, ..
        } = &mut *io;
        'reads: loop {
            if let Some(m) = &shared.metrics {
                m.reads.inc();
            }
            match assembler.read_from(stream) {
                Ok(0) => {
                    dead = true;
                    break;
                }
                Ok(_) => loop {
                    match assembler.next_frame() {
                        Ok(Some(frame)) => inbox.push((conn.tag, conn.id, frame)),
                        Ok(None) => break,
                        Err(_) => {
                            dead = true;
                            break 'reads;
                        }
                    }
                },
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    dead = true;
                    break;
                }
            }
        }
    }
    if dead {
        close_conn(shared, conn, &mut io, gone);
    }
}

/// Flushes a connection's outbound ring with vectored writes: up to
/// [`MAX_IOVECS`] queued frame segments per syscall. On a partial write
/// the cursor advances; on `WouldBlock`, `EPOLLOUT` is armed and the
/// remainder waits for writability.
#[aqua::hot_path]
fn flush_conn(shared: &Shared, conn: &Conn, gone: &mut Vec<(u64, u64)>) {
    let mut io = conn.io.lock();
    if io.closed {
        return;
    }
    let mut dead = false;
    let mut popped = 0u64;
    {
        let ConnIo {
            stream,
            out,
            out_head,
            want_write,
            ..
        } = &mut *io;
        loop {
            if out.is_empty() {
                if *want_write {
                    *want_write = false;
                    let _ = shared.epoll.modify(conn.fd, EPOLLIN | EPOLLRDHUP, conn.id);
                }
                break;
            }
            let written = {
                let mut slices = [IoSlice::new(&[]); MAX_IOVECS];
                let mut count = 0usize;
                for (i, seg) in out.iter().enumerate() {
                    if count == MAX_IOVECS {
                        break;
                    }
                    let bytes = seg.as_slice();
                    slices[count] = IoSlice::new(if i == 0 { &bytes[*out_head..] } else { bytes });
                    count += 1;
                }
                match stream.write_vectored(&slices[..count]) {
                    Ok(n) => {
                        if let Some(m) = &shared.metrics {
                            m.writevs.inc();
                            m.batch_frames.record(count as u64);
                        }
                        n
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        if !*want_write {
                            *want_write = true;
                            let _ = shared.epoll.modify(
                                conn.fd,
                                EPOLLIN | EPOLLRDHUP | EPOLLOUT,
                                conn.id,
                            );
                        }
                        break;
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            };
            let mut left = written;
            while left > 0 {
                let seg_left = out[0].len() - *out_head;
                if left >= seg_left {
                    left -= seg_left;
                    out.pop_front();
                    *out_head = 0;
                    popped += 1;
                } else {
                    *out_head += left;
                    left = 0;
                }
            }
        }
    }
    if popped > 0 {
        if let Some(g) = &conn.depth {
            g.sub(popped as i64);
        }
    }
    if dead {
        close_conn(shared, conn, &mut io, gone);
    }
}

/// Tears one connection down under its I/O lock: deregisters the fd,
/// shuts the socket, discards queued output, and records the loss for
/// dispatch. Idempotent.
fn close_conn(shared: &Shared, conn: &Conn, io: &mut ConnIo, gone: &mut Vec<(u64, u64)>) {
    if io.closed {
        return;
    }
    io.closed = true;
    shared.epoll.delete(conn.fd);
    let _ = io.stream.shutdown(std::net::Shutdown::Both);
    io.out.clear();
    io.out_head = 0;
    if let Some(g) = &conn.depth {
        g.set(0);
    }
    gone.push((conn.tag, conn.id));
}

/// Hands buffered frames and disconnects to the sink with no reactor
/// locks held, after pruning dead connections from the map.
fn dispatch(shared: &Shared, inbox: &mut Vec<(u64, u64, Frame)>, gone: &mut Vec<(u64, u64)>) {
    if inbox.is_empty() && gone.is_empty() {
        return;
    }
    if !gone.is_empty() {
        let mut conns = shared.conns.write().unwrap_or_else(|p| p.into_inner());
        for (_, id) in gone.iter() {
            conns.remove(id);
        }
    }
    let sink = {
        let slot = shared.sink.read().unwrap_or_else(|p| p.into_inner());
        slot.as_ref().and_then(|w| w.upgrade())
    };
    let Some(sink) = sink else {
        inbox.clear();
        gone.clear();
        return;
    };
    for (tag, id, frame) in inbox.drain(..) {
        sink.on_frame(tag, id, frame);
    }
    for (tag, id) in gone.drain(..) {
        sink.on_disconnect(tag, id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::{unbounded, Sender};
    use std::net::{TcpListener, TcpStream};
    use std::time::Duration;

    /// Test sink forwarding events over a channel.
    struct ChanSink {
        tx: Sender<(u64, u64, Option<Frame>)>,
    }

    impl ReactorSink for ChanSink {
        fn on_frame(&self, tag: u64, conn: u64, frame: Frame) {
            let _ = self.tx.send((tag, conn, Some(frame)));
        }
        fn on_disconnect(&self, tag: u64, conn: u64) {
            let _ = self.tx.send((tag, conn, None));
        }
    }

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn frames_flow_both_ways() {
        let reactor = Reactor::spawn(None).unwrap();
        let (tx, rx) = unbounded();
        let sink = Arc::new(ChanSink { tx });
        let weak = Arc::downgrade(&sink);
        let weak: Weak<dyn ReactorSink> = weak;
        reactor.set_sink(weak);

        let (ours, mut theirs) = pair();
        let conn = reactor.register(ours, 7).unwrap();

        // Outbound: queued frame reaches the peer.
        let frame = Frame::Hello { client: 3 };
        assert!(reactor.send(conn, &frame));
        theirs
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(Frame::read_from(&mut theirs).unwrap(), frame);

        // Inbound: peer's frame arrives at the sink with our tag.
        let reply = Frame::PerfUpdate {
            replica: 1,
            service_ns: 2,
            queue_ns: 3,
            queue_len: 4,
            method: 5,
        };
        reply.write_to(&mut theirs).unwrap();
        let (tag, id, got) = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!((tag, id), (7, conn));
        assert_eq!(got, Some(reply));

        // Disconnect: dropping the peer surfaces as a loss event.
        drop(theirs);
        let (tag, id, got) = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!((tag, id, got), (7, conn, None));
        assert_eq!(reactor.conn_count(), 0, "dead conn pruned");
    }

    #[test]
    fn multicast_encodes_once_and_reaches_every_target() {
        let reactor = Reactor::spawn(None).unwrap();
        let (a_ours, mut a_theirs) = pair();
        let (b_ours, mut b_theirs) = pair();
        let a = reactor.register(a_ours, 0).unwrap();
        let b = reactor.register(b_ours, 1).unwrap();
        let frame = Frame::Request {
            seq: 9,
            method: 1,
            payload: Bytes::from_static(b"fan out"),
        };
        assert_eq!(reactor.multicast(&[a, b], &frame), 2);
        for peer in [&mut a_theirs, &mut b_theirs] {
            peer.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
            assert_eq!(&Frame::read_from(peer).unwrap(), &frame);
        }
        // Unknown targets don't count.
        assert_eq!(reactor.multicast(&[a, 999], &frame), 1);
        assert_eq!(&Frame::read_from(&mut a_theirs).unwrap(), &frame);
    }

    #[test]
    fn shutdown_joins_and_register_fails_after() {
        let reactor = Reactor::spawn(None).unwrap();
        let (ours, _theirs) = pair();
        reactor.shutdown();
        reactor.shutdown(); // idempotent
        assert!(reactor.register(ours, 0).is_err());
    }

    #[test]
    fn queued_batch_survives_backpressure() {
        // Stuff far more than one socket buffer into the ring while the
        // peer reads nothing, then drain: every frame must arrive intact
        // and in order (partial writes + EPOLLOUT rearming).
        let reactor = Reactor::spawn(None).unwrap();
        let (ours, mut theirs) = pair();
        let conn = reactor.register(ours, 0).unwrap();
        let payload = Bytes::from(vec![0xABu8; 32 * 1024]);
        let total = 64usize;
        for seq in 0..total as u64 {
            let frame = Frame::Request {
                seq,
                method: 0,
                payload: payload.clone(),
            };
            assert!(reactor.send(conn, &frame));
        }
        theirs
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        for seq in 0..total as u64 {
            match Frame::read_from(&mut theirs).unwrap() {
                Frame::Request { seq: got, .. } => assert_eq!(got, seq),
                other => panic!("unexpected frame {other:?}"),
            }
        }
    }
}
