//! Nodes (simulated hosts/processes) and the context they act through.

use core::fmt;
use std::any::Any;

use aqua_core::time::{Duration, Instant};
use rand::rngs::SmallRng;

use crate::event::{Event, Scheduled, TimerToken};
use crate::network::NetworkModel;
use crate::trace::{TraceEvent, Tracer};
use crate::Payload;

/// Identifier of a node within one simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Creates a node id from a raw index.
    ///
    /// Normally ids come from [`crate::Simulation::add_node`]; this
    /// constructor exists for tests and table-driven wiring.
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// The raw index.
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Behaviour of a simulated host/process.
///
/// Implementations receive [`Event`]s one at a time and react through the
/// [`Context`]: sending messages (which traverse the simulated network) and
/// setting timers. All state lives inside the node; the simulator guarantees
/// events are delivered in deterministic timestamp order.
pub trait Node<M: Payload> {
    /// Handles one event. `ctx` carries the current virtual time, the
    /// node's own id, the RNG, and the scheduling operations.
    fn on_event(&mut self, event: Event<M>, ctx: &mut Context<'_, M>);
}

/// Object-safe companion of [`Node`] that supports downcasting, so tests
/// and harnesses can inspect node state after a run.
pub trait AnyNode<M: Payload>: Node<M> + Any {
    /// Upcast to [`Any`] for downcasting.
    fn as_any(&self) -> &dyn Any;
    /// Upcast to mutable [`Any`] for downcasting.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<M: Payload, T: Node<M> + Any> AnyNode<M> for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Internal scheduling state shared between the simulation driver and the
/// contexts it hands to nodes.
pub(crate) struct SimCore<M> {
    pub now: Instant,
    pub queue: std::collections::BinaryHeap<core::cmp::Reverse<Scheduled<M>>>,
    pub seq: u64,
    pub next_timer: u64,
    pub cancelled: std::collections::HashSet<u64>,
    pub network: Box<dyn NetworkModel>,
    pub rng: SmallRng,
    /// Nodes that have been detached (crashed at the simulator level);
    /// deliveries to them are silently dropped at pop time.
    pub detached: std::collections::HashSet<NodeId>,
    /// Trace ring + per-node counters.
    pub tracer: Tracer,
}

impl<M> SimCore<M> {
    pub(crate) fn push(&mut self, at: Instant, target: NodeId, event: Event<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(core::cmp::Reverse(Scheduled {
            at,
            seq,
            target,
            event,
        }));
    }
}

/// The interface a node uses to act on the simulated world.
pub struct Context<'a, M: Payload> {
    pub(crate) core: &'a mut SimCore<M>,
    pub(crate) self_id: NodeId,
}

impl<M: Payload> Context<'_, M> {
    /// The current virtual time.
    pub fn now(&self) -> Instant {
        self.core.now
    }

    /// This node's id.
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    /// The simulation's deterministic random number generator.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.core.rng
    }

    /// Sends `payload` to `to` over the simulated network; the network
    /// model decides the delivery latency.
    pub fn send(&mut self, to: NodeId, payload: M) {
        self.transmit(to, payload, 1);
    }

    /// Sends `payload` to every node in `to` (list-addressed multicast).
    ///
    /// The network model sees the full fan-out, matching the paper's
    /// observation that the gateway-to-gateway delay "varies … with the
    /// number of group members involved in the communication".
    pub fn multicast(&mut self, to: &[NodeId], payload: M) {
        for dest in to {
            self.transmit(*dest, payload.clone(), to.len());
        }
    }

    fn transmit(&mut self, to: NodeId, payload: M, fanout: usize) {
        let size = payload.wire_size();
        let delay = self.core.network.delay(
            self.self_id,
            to,
            size,
            fanout,
            self.core.now,
            &mut self.core.rng,
        );
        let at = self.core.now.saturating_add(delay);
        let from = self.self_id;
        self.core.tracer.record(
            self.core.now,
            TraceEvent::MessageSent {
                from,
                to,
                size,
                deliver_at: at,
            },
        );
        self.core.push(at, to, Event::Message { from, payload });
    }

    /// Delivers `payload` to this node itself after `after`, bypassing the
    /// network (used to model local asynchronous processing).
    pub fn send_self(&mut self, after: Duration, payload: M) {
        let at = self.core.now.saturating_add(after);
        let from = self.self_id;
        self.core
            .push(at, self.self_id, Event::Message { from, payload });
    }

    /// Sets a timer that fires on this node after `after`.
    pub fn set_timer(&mut self, after: Duration) -> TimerToken {
        let token = TimerToken(self.core.next_timer);
        self.core.next_timer += 1;
        let at = self.core.now.saturating_add(after);
        self.core.push(at, self.self_id, Event::Timer { token });
        token
    }

    /// Cancels a pending timer; firing events for it are dropped.
    pub fn cancel_timer(&mut self, token: TimerToken) {
        self.core.cancelled.insert(token.0);
    }

    /// Detaches this node from the simulation: all subsequent deliveries to
    /// it (messages and timers) are dropped. Models a host crash.
    pub fn detach_self(&mut self) {
        self.core.detached.insert(self.self_id);
        self.core.tracer.record(
            self.core.now,
            TraceEvent::NodeDetached { node: self.self_id },
        );
    }
}

impl<M: Payload> fmt::Debug for Context<'_, M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Context")
            .field("self_id", &self.self_id)
            .field("now", &self.core.now)
            .finish()
    }
}
